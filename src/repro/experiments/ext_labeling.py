"""Extension: dynamic contracts on binary classification tasks.

Realizes the paper's Section VII plan to "extend our model from review
tasks to ... classification".  A pool of honest and label-flipping
malicious workers labels task batches; the experiment compares the
dynamic contract against a fixed per-task payment on consensus accuracy
and requester utility, and checks that the quadratic approximation step
(the Section IV-B analogue) is faithful to the true saturating
accuracy curve.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.designer import DesignerConfig
from ..labeling import (
    AccuracyModel,
    LabelingMarket,
    LabelingWorker,
    TaskGenerator,
    quadratic_feedback_approximation,
)
from ..metrics.comparison import ComparisonTable
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]

_N_HONEST = 12
_N_MALICIOUS = 4
_BATCH_SIZE = 40
_N_ROUNDS = 6
_MAX_EFFORT = 8.0
_MEAN_DIFFICULTY = 0.3
_FIXED_PAY = 2.0


def _build_market(seed: int, mu: float) -> LabelingMarket:
    model = AccuracyModel(p_max=0.95, effort_scale=2.0)
    feedback_function = quadratic_feedback_approximation(
        model, _BATCH_SIZE, _MEAN_DIFFICULTY, _MAX_EFFORT
    )
    workers: List[LabelingWorker] = []
    weights: Dict[str, float] = {}
    for index in range(_N_HONEST):
        worker_id = f"labeler{index:02d}"
        workers.append(
            LabelingWorker(
                worker_id, model, feedback_function, beta=1.0, omega=0.0
            )
        )
        weights[worker_id] = 1.0
    for index in range(_N_MALICIOUS):
        worker_id = f"shill{index:02d}"
        workers.append(
            LabelingWorker(
                worker_id,
                model,
                feedback_function,
                beta=1.0,
                omega=0.3,
                target_label=True,
                flip_rate=0.6,
            )
        )
        weights[worker_id] = 0.2  # penalized a la Eq. (5)
    return LabelingMarket(
        workers=workers,
        weights=weights,
        mu=mu,
        value_per_correct=2.0,
        designer_config=DesignerConfig(n_intervals=16),
        max_effort=_MAX_EFFORT,
        seed=seed,
    )


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Run the classification-extension experiment.

    Transfers the Section IV-C contract design to binary labeling tasks:
    efforts map to label accuracy instead of review feedback, and the
    Eq. (4) benefit becomes weighted-vote accuracy.
    """
    context = context if context is not None else build_context(ExperimentConfig())
    config = context.config
    generator_seed = config.seed

    market = _build_market(seed=config.seed, mu=config.mu_default)
    dynamic_rounds = market.run(
        TaskGenerator(mean_difficulty=_MEAN_DIFFICULTY, seed=generator_seed),
        batch_size=_BATCH_SIZE,
        n_rounds=_N_ROUNDS,
    )
    market_fixed = _build_market(seed=config.seed, mu=config.mu_default)
    fixed_rounds = market_fixed.run(
        TaskGenerator(mean_difficulty=_MEAN_DIFFICULTY, seed=generator_seed),
        batch_size=_BATCH_SIZE,
        n_rounds=_N_ROUNDS,
        contracts=market_fixed.flat_contracts(pay=_FIXED_PAY),
    )

    dynamic_accuracy = float(
        np.mean([r.consensus_accuracy for r in dynamic_rounds])
    )
    fixed_accuracy = float(np.mean([r.consensus_accuracy for r in fixed_rounds]))
    dynamic_utility = float(
        np.mean([r.requester_utility for r in dynamic_rounds])
    )
    fixed_utility = float(np.mean([r.requester_utility for r in fixed_rounds]))
    honest_effort = float(
        np.mean(
            [
                effort
                for r in dynamic_rounds
                for worker_id, effort in r.worker_efforts.items()
                if worker_id.startswith("labeler")
            ]
        )
    )
    fixed_effort = float(
        np.mean(
            [
                effort
                for r in fixed_rounds
                for worker_id, effort in r.worker_efforts.items()
                if worker_id.startswith("labeler")
            ]
        )
    )

    # Approximation faithfulness: the quadratic matches the true curve
    # over the effort region to within a few percent.
    model = AccuracyModel(p_max=0.95, effort_scale=2.0)
    approximation = quadratic_feedback_approximation(
        model, _BATCH_SIZE, _MEAN_DIFFICULTY, _MAX_EFFORT
    )
    efforts = np.linspace(0.0, _MAX_EFFORT, 50)
    truth = np.array(
        [_BATCH_SIZE * model.accuracy(float(y), _MEAN_DIFFICULTY) for y in efforts]
    )
    fitted = np.array([float(approximation(float(y))) for y in efforts])
    approximation_error = float(
        np.max(np.abs(fitted - truth)) / np.max(np.abs(truth))
    )

    table = ComparisonTable(
        title=(
            f"EXT labeling: {_N_HONEST} honest + {_N_MALICIOUS} shills, "
            f"{_BATCH_SIZE}-task batches, {_N_ROUNDS} rounds"
        ),
        rows=[],
    )
    table.add("consensus accuracy (dynamic)", measured=dynamic_accuracy)
    table.add("consensus accuracy (fixed pay)", measured=fixed_accuracy)
    table.add("requester utility (dynamic)", measured=dynamic_utility)
    table.add("requester utility (fixed pay)", measured=fixed_utility)
    table.add("honest effort (dynamic)", measured=honest_effort)
    table.add("honest effort (fixed pay)", measured=fixed_effort)
    table.add("quadratic approx. max rel. error", measured=approximation_error)

    checks = {
        "dynamic_is_profitable": dynamic_utility > 0.0,
        "dynamic_contract_induces_effort": honest_effort > fixed_effort + 0.5,
        "dynamic_accuracy_higher": dynamic_accuracy > fixed_accuracy,
        "dynamic_utility_higher": dynamic_utility > fixed_utility,
        "consensus_beats_coin_flip": dynamic_accuracy > 0.8,
        "quadratic_approximation_faithful": approximation_error < 0.05,
    }
    data: Dict[str, object] = {
        "dynamic_accuracy": dynamic_accuracy,
        "fixed_accuracy": fixed_accuracy,
        "dynamic_utility": dynamic_utility,
        "fixed_utility": fixed_utility,
        "honest_effort_dynamic": honest_effort,
        "honest_effort_fixed": fixed_effort,
        "approximation_error": approximation_error,
    }
    return ExperimentResult(
        experiment_id="ext_labeling",
        tables=[table.format()],
        data=data,
        checks=checks,
    )
