"""Table III: norm of residual across polynomial orders, per class.

Fits polynomial orders 1..6 to one (mean effort, mean feedback) point
per worker — honest, non-collusive malicious, collusive malicious —
mirroring Section IV-B's fit over 18,176 / 1,312 / 212 data points, and
reproduces the selection argument: NoR is nearly flat across orders, so
the quadratic wins on simplicity.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..fitting.selection import TABLE_III_LABELS, TABLE_III_ORDERS, sweep_orders
from ..metrics.comparison import ComparisonTable
from ..types import WorkerType
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]

#: The NoR rows Table III prints.
PAPER_TABLE_III = {
    "Honest": {1: 13.8, 2: 13.7, 3: 13.7, 4: 13.7, 5: 13.7, 6: 13.7},
    "NC-Mal": {1: 2.60, 2: 2.60, 3: 2.60, 4: 2.59, 5: 2.59, 6: 2.59},
    "C-Mal": {1: 11.3, 2: 11.3, 3: 11.3, 4: 11.3, 5: 11.3, 6: 11.3},
}

#: The relative NoR flatness the selection argument needs: from order 2
#: on, no higher order improves the (dof-adjusted) residual by more than
#: this factor.  The paper's real trace is noise-dominated (sub-1%
#: differences); our synthetic trace carries the effort proxy's
#: multiplicative distortion undiluted, leaving higher orders ~5-7%
#: headroom — still far below a complexity-justifying gain.
_FLATNESS_TOLERANCE = 0.10


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Table III."""
    context = context if context is not None else build_context(ExperimentConfig())
    trace, proxy, clusters = context.trace, context.proxy, context.clusters

    class_ids = {
        "Honest": trace.worker_ids(WorkerType.HONEST),
        "NC-Mal": sorted(clusters.noncollusive),
        "C-Mal": sorted(
            worker for community in clusters.communities for worker in community
        ),
    }

    tables = []
    data: Dict[str, object] = {}
    checks: Dict[str, bool] = {}
    for class_label, worker_ids in class_ids.items():
        efforts, feedbacks = proxy.class_points(trace, worker_ids)
        sweep = sweep_orders(efforts, feedbacks, orders=TABLE_III_ORDERS)
        nors = sweep.nor_row()
        data[f"nor_{class_label}"] = nors
        data[f"n_points_{class_label}"] = len(efforts)

        table = ComparisonTable(
            title=f"Table III ({class_label}, {len(efforts)} points): NoR by order",
            rows=[],
        )
        for order, measured in zip(TABLE_III_ORDERS, nors):
            table.add(
                label=TABLE_III_LABELS[order],
                measured=measured,
                paper=PAPER_TABLE_III[class_label][order],
                note="absolute NoR depends on trace scale; flatness is the claim",
            )
        tables.append(table.format())

        # The selection argument Table III supports: from order 2 on the
        # residual norm is flat — higher orders buy (almost) nothing —
        # so the quadratic is the complexity knee.  Residuals are
        # degrees-of-freedom adjusted: with n points an order-k fit
        # shrinks the raw norm by ~sqrt((n-k-1)/n) on pure noise, which
        # at small n masquerades as an improvement.  (Our synthetic
        # trace has a cleaner effort->feedback signal than the noise-
        # dominated real trace, so the *linear* column is visibly worse
        # than the paper's; the quadratic-selection conclusion is
        # unchanged — see EXPERIMENTS.md.)
        n_points = len(efforts)
        adjusted = [
            nor / np.sqrt(max(n_points - order - 1, 1))
            for order, nor in zip(TABLE_III_ORDERS, nors)
        ]
        quad_and_up = adjusted[1:]
        checks[f"{class_label}_nor_flat_from_quadratic_on"] = max(
            quad_and_up
        ) <= min(quad_and_up) * (1.0 + _FLATNESS_TOLERANCE)
        checks[f"{class_label}_quadratic_selected"] = adjusted[1] <= min(
            adjusted
        ) * (1.0 + _FLATNESS_TOLERANCE)
        checks[f"{class_label}_linear_never_better_than_quadratic"] = (
            adjusted[0] >= adjusted[1] * (1.0 - 1e-9)
        )
    checks["ordering_matches_paper_honest_gt_cmal_gt_ncmal"] = (
        data["nor_Honest"][1] > data["nor_C-Mal"][1] > data["nor_NC-Mal"][1]
    )
    return ExperimentResult(
        experiment_id="table3",
        tables=tables,
        data=data,
        checks=checks,
    )
