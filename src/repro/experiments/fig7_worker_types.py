"""Fig. 7: mean effort and mean feedback across the three worker classes.

The paper's observation: the classes exert similar effort, but collusive
malicious workers collect far more feedback — the signature of intra-
community upvoting.
"""

from __future__ import annotations

from typing import Optional

from ..metrics.comparison import ComparisonTable
from ..types import WorkerType
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]

#: "Similar effort" tolerance: class mean efforts within this factor of
#: one another.
_EFFORT_SIMILARITY = 1.35

#: "Much higher feedback": the collusive mean must exceed the others by
#: at least this factor.
_FEEDBACK_DOMINANCE = 1.5


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate the Fig. 7 bars."""
    context = context if context is not None else build_context(ExperimentConfig())
    aggregates = context.trace.class_aggregates()

    table = ComparisonTable(title="Fig. 7: per-class means", rows=[])
    for worker_type in WorkerType:
        stats = aggregates[worker_type]
        table.add(
            label=f"{worker_type.short_label} mean effort",
            measured=stats["mean_effort"],
            note=f"{int(stats['n_workers'])} workers",
        )
    for worker_type in WorkerType:
        stats = aggregates[worker_type]
        table.add(
            label=f"{worker_type.short_label} mean feedback",
            measured=stats["mean_feedback"],
        )

    efforts = [aggregates[wt]["mean_effort"] for wt in WorkerType]
    honest_fb = aggregates[WorkerType.HONEST]["mean_feedback"]
    ncm_fb = aggregates[WorkerType.NONCOLLUSIVE_MALICIOUS]["mean_feedback"]
    cm_fb = aggregates[WorkerType.COLLUSIVE_MALICIOUS]["mean_feedback"]
    checks = {
        "efforts_similar_across_classes": max(efforts) <= _EFFORT_SIMILARITY * min(efforts),
        "collusive_feedback_dominates": cm_fb
        >= _FEEDBACK_DOMINANCE * max(honest_fb, ncm_fb),
        "all_classes_populated": all(
            aggregates[wt]["n_workers"] > 0 for wt in WorkerType
        ),
    }
    return ExperimentResult(
        experiment_id="fig7",
        tables=[table.format()],
        data={wt.value: aggregates[wt] for wt in WorkerType},
        checks=checks,
    )
