"""Fig. 8c: dynamic contract vs exclude-all-malicious baseline.

Runs the marketplace simulation twice over the same population and noise
seed: once with the paper's dynamic contract for everyone, once with the
baseline that bars every malicious subject from the system.  The paper's
claim: the dynamic contract wins because it still harvests feedback from
malicious workers that are "biased but still accurate within a certain
acceptable range", while heavily down-weighting the rest.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..baselines.comparison import compare_policies
from ..metrics.comparison import ComparisonTable
from ..simulation.policies import DynamicContractPolicy, ExclusionPolicy
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Fig. 8c's policy comparison."""
    context = context if context is not None else build_context(ExperimentConfig())
    config = context.config
    population = context.population(honest_sample=config.fig8c_honest_sample)
    objective = context.objective()

    dynamic = DynamicContractPolicy(mu=config.mu_default, parallel=config.parallel)
    exclusion = ExclusionPolicy(
        inner=DynamicContractPolicy(mu=config.mu_default, parallel=config.parallel)
    )
    try:
        comparison = compare_policies(
            population=population,
            objective=objective,
            policies={"dynamic": dynamic, "exclusion": exclusion},
            n_rounds=config.fig8c_rounds,
            seed=config.seed,
        )
    finally:
        dynamic.close()
        exclusion.inner.close()

    dynamic_series = comparison.utility_series["dynamic"]
    exclusion_series = comparison.utility_series["exclusion"]
    table = ComparisonTable(
        title=f"Fig. 8c: requester utility over {config.fig8c_rounds} rounds",
        rows=[],
    )
    table.add(label="dynamic total", measured=comparison.total("dynamic"))
    table.add(label="exclusion total", measured=comparison.total("exclusion"))
    table.add(
        label="margin (dynamic - exclusion)",
        measured=comparison.margin("dynamic", "exclusion"),
        note="paper: dynamic strictly better",
    )
    table.add(
        label="dynamic mean/round", measured=float(dynamic_series.mean())
    )
    table.add(
        label="exclusion mean/round", measured=float(exclusion_series.mean())
    )

    checks = {
        "dynamic_beats_exclusion_total": comparison.total("dynamic")
        > comparison.total("exclusion"),
        "dynamic_wins_every_round": bool(
            np.all(dynamic_series >= exclusion_series)
        ),
        "both_policies_profitable": comparison.total("dynamic") > 0.0
        and comparison.total("exclusion") > 0.0,
    }
    data: Dict[str, object] = {
        "dynamic_series": dynamic_series.tolist(),
        "exclusion_series": exclusion_series.tolist(),
        "dynamic_total": comparison.total("dynamic"),
        "exclusion_total": comparison.total("exclusion"),
        "margin": comparison.margin("dynamic", "exclusion"),
    }
    return ExperimentResult(
        experiment_id="fig8c", tables=[table.format()], data=data, checks=checks
    )
