"""Extension: worker retention under different payment policies.

The paper's abstract targets "quality and retention", but the model
keeps the pool fixed — and the contract itself is deliberately
*surplus-extracting*: Lemma 4.3 pay sits at ``~beta*y``, leaving workers
with near-zero utility.  Once workers have a positive outside option
(reservation utility) and quit after sustained bad rounds, that
optimality bites back: **the paper's own contract drains the honest
workforce just like a stingy flat payment does** — it is optimal for a
captive pool only.

The repair is already inside the design space: the contract's zero-
effort intercept ``x_0`` (``DesignerConfig.base_pay``) acts as a
participation floor.  Setting it at the reservation level retains the
pool at a per-worker cost of exactly the floor.  This experiment runs
all three policies and verifies the full story.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.designer import DesignerConfig
from ..metrics.comparison import ComparisonTable
from ..simulation.policies import DynamicContractPolicy, FixedPaymentPolicy
from ..simulation.retention import RetentionModel, RetentionSimulation
from ..types import WorkerType
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]

_N_ROUNDS = 10
_HONEST_SAMPLE = 150
_RESERVATION = 0.5
_PATIENCE = 2
_STINGY_PAY = 0.2
#: Participation floor: the reservation level plus headroom for
#: feedback-noise-induced bad luck.
_FLOOR = 1.3 * _RESERVATION


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Run the retention experiment.

    Extension of the Section V simulation: workers whose Eq. (11)/(14)
    utility stays non-positive leave the platform, and the requester
    trades current-round utility against the retained pool.
    """
    context = context if context is not None else build_context(ExperimentConfig())
    config = context.config
    objective = context.objective()
    retention = RetentionModel(
        reservation_utility=_RESERVATION, patience=_PATIENCE
    )

    policies = {
        "paper-dynamic": DynamicContractPolicy(mu=config.mu_default),
        "floored-dynamic": DynamicContractPolicy(
            mu=config.mu_default,
            config=DesignerConfig(base_pay=_FLOOR),
        ),
        "stingy-fixed": FixedPaymentPolicy(pay_per_member=_STINGY_PAY),
    }
    retention_rates: Dict[str, float] = {}
    totals: Dict[str, float] = {}
    series: Dict[str, np.ndarray] = {}
    departed: Dict[str, int] = {}
    for name, policy in policies.items():
        population = context.population(honest_sample=_HONEST_SAMPLE)
        simulation = RetentionSimulation(
            population=population,
            objective=objective,
            policy=policy,
            retention=retention,
            seed=config.seed,
        )
        ledger = simulation.run(_N_ROUNDS)
        retention_rates[name] = simulation.retention_rate(WorkerType.HONEST)
        series[name] = ledger.utility_series()
        totals[name] = float(series[name].sum())
        departed[name] = len(simulation.departed)
        context.invalidate_populations()

    table = ComparisonTable(
        title=(
            f"EXT retention: reservation {_RESERVATION}/round, patience "
            f"{_PATIENCE}, {_N_ROUNDS} rounds"
        ),
        rows=[],
    )
    for name in policies:
        table.add(
            f"honest retention ({name})",
            measured=retention_rates[name],
            note=f"{departed[name]} subjects departed",
        )
    for name in policies:
        table.add(f"total utility ({name})", measured=totals[name])

    checks = {
        # The headline finding: the surplus-extracting paper contract
        # fails retention once workers have outside options.
        "paper_contract_drains_pool_with_outside_options": retention_rates[
            "paper-dynamic"
        ]
        <= 0.3,
        "participation_floor_retains_workforce": retention_rates[
            "floored-dynamic"
        ]
        >= 0.9,
        "stingy_pay_bleeds_workforce": retention_rates["stingy-fixed"] <= 0.3,
        "floored_dynamic_wins_on_total_utility": totals["floored-dynamic"]
        > max(totals["paper-dynamic"], totals["stingy-fixed"]),
        "floored_dynamic_utility_sustained": float(
            series["floored-dynamic"][-1]
        )
        >= 0.8 * float(series["floored-dynamic"][0]),
    }
    data: Dict[str, object] = {
        "retention_rates": retention_rates,
        "totals": totals,
        "series": {name: values.tolist() for name, values in series.items()},
        "departed": departed,
        "reservation": _RESERVATION,
        "floor": _FLOOR,
    }
    return ExperimentResult(
        experiment_id="ext_retention",
        tables=[table.format()],
        data=data,
        checks=checks,
    )
