"""Shared experiment configuration.

One :class:`ExperimentConfig` drives every table/figure driver so that
all experiments run against the same trace, the same estimators and the
paper's parameter choices: the paper sets ``beta = 1`` and
``kappa = gamma = 0.1`` throughout, ``mu = 10`` in the Fig. 6 numeric
study and ``mu in {1.0, 0.9, 0.8}`` in Fig. 8b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..data.synthetic import TraceConfig
from ..errors import ExperimentError
from ..types import FeedbackWeightParameters
from ..workers.population import BehaviorConfig

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration shared by all experiment drivers.

    Attributes:
        scale: ``"paper"`` for the full 118k-review trace, ``"small"``
            for a structurally identical test-sized trace.
        seed: seed for trace generation and simulation noise.
        weight_params: Eq. (5) coefficients (paper: kappa = gamma = 0.1).
        behavior: assumed per-class behavioural parameters.
        mu_default: requester compensation weight outside sweeps.
        mu_sweep: the Fig. 8b sweep values.
        fig6_mu: the Fig. 6 numeric-study mu (paper: 10).
        fig6_interval_counts: the m values Fig. 6 sweeps.
        fig8a_interval_counts: the m values Fig. 8a compares (10/20/40).
        fig8a_n_workers: honest workers selected (paper: 200).
        fig8a_min_reviews: review floor for selection (paper: 20).
        fig8c_rounds: simulated rounds for the policy comparison.
        fig8c_honest_sample: honest workers included in the Fig. 8c
            simulation (the full 18k population would dominate runtime
            without changing the comparison).
        parallel: serving-layer process fan-out for the per-subject
            design solves; ``0`` (the default) keeps the serial
            in-process path.  Excluded from equality/hashing so cached
            experiment contexts are shared across execution strategies —
            the results are identical by construction.
    """

    scale: str = "paper"
    seed: int = 7
    weight_params: FeedbackWeightParameters = field(
        default_factory=lambda: FeedbackWeightParameters(
            rho=1.0, kappa=0.1, gamma=0.1, min_deviation=0.1
        )
    )
    behavior: BehaviorConfig = field(default_factory=BehaviorConfig)
    mu_default: float = 1.0
    mu_sweep: Tuple[float, ...] = (1.0, 0.9, 0.8)
    fig6_mu: float = 10.0
    fig6_interval_counts: Tuple[int, ...] = (2, 4, 6, 8, 10, 15, 20, 30, 40)
    fig8a_interval_counts: Tuple[int, ...] = (10, 20, 40)
    fig8a_n_workers: int = 200
    fig8a_min_reviews: int = 20
    fig8c_rounds: int = 20
    fig8c_honest_sample: int = 800
    parallel: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.parallel < 0:
            raise ExperimentError(
                f"parallel must be >= 0, got {self.parallel!r}"
            )
        if self.scale not in ("paper", "small"):
            raise ExperimentError(
                f"scale must be 'paper' or 'small', got {self.scale!r}"
            )
        if self.mu_default <= 0.0 or self.fig6_mu <= 0.0:
            raise ExperimentError("mu values must be positive")
        if not self.mu_sweep or any(mu <= 0.0 for mu in self.mu_sweep):
            raise ExperimentError("mu_sweep must be non-empty and positive")
        if self.fig8a_n_workers < 1 or self.fig8a_min_reviews < 1:
            raise ExperimentError("fig8a selection parameters must be positive")
        if self.fig8c_rounds < 1 or self.fig8c_honest_sample < 1:
            raise ExperimentError("fig8c parameters must be positive")

    def trace_config(self) -> TraceConfig:
        """The trace calibration implied by ``scale``."""
        if self.scale == "paper":
            return TraceConfig.paper()
        return TraceConfig.small()

    @staticmethod
    def small(seed: int = 7) -> "ExperimentConfig":
        """Test-sized configuration with proportionally scaled knobs."""
        return ExperimentConfig(
            scale="small",
            seed=seed,
            fig8a_n_workers=25,
            fig8a_min_reviews=15,
            fig8c_rounds=8,
            fig8c_honest_sample=150,
        )
