"""Fig. 8a: per-worker compensation vs its Lemma 4.3 lower bound.

Selects honest workers with a long review history (paper: 200 workers
with at least 20 reviews), fits a per-worker concave quadratic to their
(estimated effort, feedback) scatter, designs their contract at
``m in {10, 20, 40}``, and compares the pay each worker collects with
the Lemma 4.3 floor ``beta * (k_opt - 1) * delta``.  The paper's claim:
the gap shrinks as the grid refines, so the pay converges to the minimum
needed — the contract wastes less and less money.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.bounds import compensation_lower_bound
from ..core.designer import ContractDesigner, DesignerConfig
from ..errors import FitError
from ..fitting.quadratic import fit_concave_quadratic
from ..metrics.comparison import ComparisonTable
from ..types import WorkerParameters, WorkerType
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Fig. 8a's compensation-vs-bound comparison."""
    context = context if context is not None else build_context(ExperimentConfig())
    config = context.config
    trace, proxy = context.trace, context.proxy
    beta = config.behavior.beta
    params = WorkerParameters.honest(beta=beta)

    eligible = trace.workers_with_min_reviews(
        config.fig8a_min_reviews, WorkerType.HONEST
    )
    selected = eligible[: config.fig8a_n_workers]

    per_m: Dict[int, Dict[str, List[float]]] = {}
    skipped = 0
    for n_intervals in config.fig8a_interval_counts:
        designer = ContractDesigner(
            mu=config.mu_default, config=DesignerConfig(n_intervals=n_intervals)
        )
        compensations: List[float] = []
        floors: List[float] = []
        for worker_id in selected:
            efforts, upvotes = proxy.worker_points(trace, worker_id)
            try:
                psi = fit_concave_quadratic(efforts, upvotes)
            except FitError:
                skipped += 1
                continue
            cap = 1.25 * float(np.percentile(efforts, 99))
            result = designer.design(
                psi, params, feedback_weight=1.0, max_effort=cap
            )
            if not result.hired:
                continue
            grid = result.contract.grid
            compensations.append(result.compensation)
            floors.append(
                compensation_lower_bound(grid, beta, result.k_opt)
            )
        per_m[n_intervals] = {
            "compensation": compensations,
            "lower_bound": floors,
        }

    table = ComparisonTable(
        title=(
            f"Fig. 8a: honest-worker pay vs Lemma 4.3 floor "
            f"({len(selected)} workers, >= {config.fig8a_min_reviews} reviews)"
        ),
        rows=[],
    )
    mean_gaps: Dict[int, float] = {}
    for n_intervals, payload in per_m.items():
        comp = np.array(payload["compensation"])
        floor = np.array(payload["lower_bound"])
        gaps = comp - floor
        mean_gaps[n_intervals] = float(gaps.mean()) if gaps.size else float("nan")
        table.add(
            label=f"m={n_intervals} mean pay",
            measured=float(comp.mean()) if comp.size else float("nan"),
            note=f"mean floor={floor.mean():.4f} mean gap={gaps.mean():.4f}",
        )

    counts = list(config.fig8a_interval_counts)
    gaps_in_order = [mean_gaps[m] for m in counts]
    valid = all(np.isfinite(gaps_in_order))
    checks = {
        "enough_workers_selected": len(selected)
        >= min(config.fig8a_n_workers, len(eligible)),
        "pay_never_below_floor": all(
            all(
                c >= f - 1e-9
                for c, f in zip(p["compensation"], p["lower_bound"])
            )
            for p in per_m.values()
        ),
        "gap_shrinks_as_grid_refines": valid
        and gaps_in_order[-1] < gaps_in_order[0],
        "gap_monotone_over_sweep": valid
        and all(
            later <= earlier * 1.05
            for earlier, later in zip(gaps_in_order, gaps_in_order[1:])
        ),
    }
    return ExperimentResult(
        experiment_id="fig8a",
        tables=[table.format()],
        data={
            "per_m": per_m,
            "mean_gaps": mean_gaps,
            "n_selected": len(selected),
            "n_skipped_fits": skipped,
        },
        checks=checks,
    )
