"""Shared experiment context: trace, clustering, estimators, population.

Building the full-scale trace takes a few seconds, so the context is
cached per ``(scale, seed)`` — every experiment driver (and the
benchmarks) then reuses the same materialized world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..collusion.clustering import CollusionClusters, cluster_collusive_workers
from ..core.utility import RequesterObjective
from ..data.dataset import ReviewTrace
from ..data.synthetic import AmazonTraceGenerator
from ..estimation.expertise import EffortProxy
from ..estimation.malice import DeviationMaliceEstimator
from ..types import RequesterParameters, WorkerType
from ..workers.population import PopulationModel, build_population
from .config import ExperimentConfig

__all__ = ["ExperimentContext", "ExperimentResult", "build_context", "clear_context_cache"]


@dataclass
class ExperimentContext:
    """Everything the experiment drivers consume.

    Attributes:
        config: the experiment configuration.
        trace: the generated review trace.
        clusters: Section IV-A clustering of the malicious workers.
        proxy: the effort-proxy estimator fitted on the trace.
        malice: per-worker ``e_mal`` estimates.
    """

    config: ExperimentConfig
    trace: ReviewTrace
    clusters: CollusionClusters
    proxy: EffortProxy
    malice: Dict[str, float]
    _population_cache: Dict[Tuple[float, Optional[int]], PopulationModel] = field(
        default_factory=dict, repr=False
    )

    def objective(self, mu: Optional[float] = None) -> RequesterObjective:
        """A requester objective at ``mu`` (default: the config's)."""
        return RequesterObjective(
            RequesterParameters(
                mu=mu if mu is not None else self.config.mu_default,
                weight_params=self.config.weight_params,
            )
        )

    def invalidate_populations(self) -> None:
        """Drop cached populations (needed after mutating their agents,
        e.g. when an experiment plants strategic workers)."""
        self._population_cache.clear()

    def population(
        self,
        mu: Optional[float] = None,
        honest_sample: Optional[int] = None,
    ) -> PopulationModel:
        """The assembled population (cached per ``(mu, honest_sample)``).

        Args:
            mu: requester compensation weight (weights themselves do not
                depend on mu, but the objective carried downstream does).
            honest_sample: cap on the number of honest workers included;
                sampling is deterministic given the config seed.
        """
        key = (mu if mu is not None else self.config.mu_default, honest_sample)
        if key not in self._population_cache:
            honest_subset = None
            if honest_sample is not None:
                honest_ids = self.trace.worker_ids(WorkerType.HONEST)
                if honest_sample < len(honest_ids):
                    rng = np.random.default_rng(self.config.seed)
                    chosen = rng.choice(
                        len(honest_ids), size=honest_sample, replace=False
                    )
                    honest_subset = [honest_ids[i] for i in sorted(chosen)]
                else:
                    honest_subset = honest_ids
            self._population_cache[key] = build_population(
                trace=self.trace,
                clusters=self.clusters,
                proxy=self.proxy,
                malice_estimates=self.malice,
                objective=self.objective(mu),
                behavior=self.config.behavior,
                honest_subset=honest_subset,
            )
        return self._population_cache[key]


@dataclass
class ExperimentResult:
    """Uniform result record every driver returns.

    Attributes:
        experiment_id: the DESIGN.md experiment id (e.g. ``"fig8b"``).
        tables: formatted paper-vs-measured tables.
        data: raw numeric payload for programmatic consumers.
        checks: named boolean shape checks — the properties the paper's
            narrative claims, verified on this run.
    """

    experiment_id: str
    tables: List[str]
    data: Dict[str, object]
    checks: Dict[str, bool]

    @property
    def all_checks_pass(self) -> bool:
        """Whether every claimed shape property held."""
        return all(self.checks.values())

    def format(self) -> str:
        """Console rendering: tables followed by the check list."""
        lines = list(self.tables)
        lines.append("-- shape checks --")
        for name, passed in sorted(self.checks.items()):
            lines.append(f"[{'PASS' if passed else 'FAIL'}] {name}")
        return "\n".join(lines)


_CONTEXT_CACHE: Dict[Tuple[str, int], ExperimentContext] = {}


def build_context(config: Optional[ExperimentConfig] = None) -> ExperimentContext:
    """Materialize (or fetch the cached) experiment world.

    Builds the Section V evaluation substrate shared by every driver:
    the calibrated synthetic trace, the Section IV-A collusion clusters,
    the effort proxy and the Eq. (5) malice estimates.
    """
    config = config if config is not None else ExperimentConfig()
    key = (config.scale, config.seed)
    cached = _CONTEXT_CACHE.get(key)
    if cached is not None and cached.config == config:
        return cached
    trace = AmazonTraceGenerator(config.trace_config(), seed=config.seed).generate()
    clusters = cluster_collusive_workers(trace.malicious_targets())
    proxy = EffortProxy.from_trace(trace)
    malice = DeviationMaliceEstimator().estimate(trace)
    context = ExperimentContext(
        config=config,
        trace=trace,
        clusters=clusters,
        proxy=proxy,
        malice=malice,
    )
    _CONTEXT_CACHE[key] = context
    return context


def clear_context_cache() -> None:
    """Drop all cached Section V contexts (tests use this for isolation)."""
    _CONTEXT_CACHE.clear()
