"""Run-all driver: every table and figure in one call."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ExperimentError
from . import (
    ext_adaptive,
    ext_budget,
    ext_camouflage,
    ext_labeling,
    ext_retention,
    fig6_bounds,
    fig7_worker_types,
    fig8a_compensation,
    fig8b_mu_sweep,
    fig8c_baseline,
    table2_communities,
    table3_fitting,
)
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["EXPERIMENTS", "EXTENSIONS", "run_experiment", "run_all"]

#: Experiment id -> driver, in the order the paper presents them.
EXPERIMENTS: Dict[str, Callable[[Optional[ExperimentContext]], ExperimentResult]] = {
    "table2": table2_communities.run,
    "table3": table3_fitting.run,
    "fig6": fig6_bounds.run,
    "fig7": fig7_worker_types.run,
    "fig8a": fig8a_compensation.run,
    "fig8b": fig8b_mu_sweep.run,
    "fig8c": fig8c_baseline.run,
}

#: Extension experiments realizing the paper's Section VII future work.
EXTENSIONS: Dict[str, Callable[[Optional[ExperimentContext]], ExperimentResult]] = {
    "ext_adaptive": ext_adaptive.run,
    "ext_budget": ext_budget.run,
    "ext_camouflage": ext_camouflage.run,
    "ext_labeling": ext_labeling.run,
    "ext_retention": ext_retention.run,
}


def run_experiment(
    experiment_id: str, config: Optional[ExperimentConfig] = None
) -> ExperimentResult:
    """Run one experiment by id (a Fig. 6-8/Table II-III artifact or ext_*)."""
    registry = {**EXPERIMENTS, **EXTENSIONS}
    if experiment_id not in registry:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(registry)}"
        )
    context = build_context(config)
    return registry[experiment_id](context)


def run_all(
    config: Optional[ExperimentConfig] = None,
    include_extensions: bool = False,
) -> List[ExperimentResult]:
    """Run every paper artifact (Figs. 6-8, Tables II-III; optionally ext_*)."""
    context = build_context(config)
    drivers = list(EXPERIMENTS.values())
    if include_extensions:
        drivers.extend(EXTENSIONS.values())
    return [driver(context) for driver in drivers]
