"""Extension: contract design under a hard payment budget.

The paper's requester trades pay against benefit through the soft weight
``mu``; the budget-feasibility literature it cites (Singer et al.)
imposes a hard cap instead.  This experiment sweeps the budget over the
assembled population and traces the utility-vs-budget frontier of the
multiple-choice-knapsack selection built on the designer's candidate
sweep, verifying the frontier's expected shape: monotone, concave-ish
(diminishing returns), and saturating at the unconstrained optimum.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.budget import budgeted_selection
from ..core.decomposition import solve_subproblems
from ..metrics.comparison import ComparisonTable
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]

_HONEST_SAMPLE = 300
#: Budget sweep as fractions of the unconstrained total pay.
_BUDGET_FRACTIONS = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5)


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Run the budget-frontier experiment.

    Extension of the Eqs. (8)-(10) requester problem with a hard budget:
    sweeps the cap and traces the utility/pay frontier of the
    multiple-choice-knapsack selection (core.budget).
    """
    context = context if context is not None else build_context(ExperimentConfig())
    config = context.config
    population = context.population(honest_sample=_HONEST_SAMPLE)
    solutions = solve_subproblems(
        population.subproblems, mu=config.mu_default, parallel=config.parallel
    )

    unconstrained_pay = sum(
        solution.result.response.compensation for solution in solutions.values()
    )
    unconstrained_utility = sum(
        max(solution.result.requester_utility, 0.0)
        for solution in solutions.values()
    )

    budgets: List[float] = [f * unconstrained_pay for f in _BUDGET_FRACTIONS]
    utilities: List[float] = []
    costs: List[float] = []
    hired: List[int] = []
    for budget in budgets:
        design = budgeted_selection(solutions, budget=budget)
        utilities.append(design.total_utility)
        costs.append(design.total_cost)
        hired.append(design.n_hired)

    table = ComparisonTable(
        title=(
            f"EXT budget: utility vs hard pay budget "
            f"({len(solutions)} subjects, unconstrained pay "
            f"{unconstrained_pay:.1f})"
        ),
        rows=[],
    )
    for fraction, budget, utility, cost, n in zip(
        _BUDGET_FRACTIONS, budgets, utilities, costs, hired
    ):
        table.add(
            label=f"B = {fraction:.2f} x pay*",
            measured=utility,
            note=f"spent {cost:.1f}, hired {n}",
        )
    table.add("unconstrained utility", measured=unconstrained_utility)

    gains = np.diff(utilities)
    checks = {
        "budget_always_respected": all(
            cost <= budget + 1e-6 for cost, budget in zip(costs, budgets)
        ),
        "utility_monotone_in_budget": bool(np.all(gains >= -1e-6)),
        "diminishing_returns": bool(
            gains.size < 2 or gains[0] >= gains[-1] - 1e-6
        ),
        "saturates_at_unconstrained": utilities[-1]
        >= 0.999 * unconstrained_utility,
        "half_budget_recovers_most_utility": utilities[
            _BUDGET_FRACTIONS.index(0.5)
        ]
        >= 0.6 * unconstrained_utility,
    }
    data: Dict[str, object] = {
        "budgets": budgets,
        "utilities": utilities,
        "costs": costs,
        "hired": hired,
        "unconstrained_pay": unconstrained_pay,
        "unconstrained_utility": unconstrained_utility,
    }
    return ExperimentResult(
        experiment_id="ext_budget",
        tables=[table.format()],
        data=data,
        checks=checks,
    )
