"""Table II: distribution of collusive-community sizes.

Runs Section IV-A clustering over the trace's malicious workers and
reports the community-size histogram in the paper's bucketing, alongside
the paper's published percentages.
"""

from __future__ import annotations

from typing import Optional

from ..collusion.communities import community_size_table
from ..metrics.comparison import ComparisonTable
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]

#: The percentages Table II prints (size bucket -> % of communities).
PAPER_TABLE_II = {"2": 51.2, "3": 22.0, "4": 7.3, "5": 2.4, "6": 9.8, ">=10": 4.9}

#: Headline counts quoted in Section V's prose.
PAPER_N_COMMUNITIES = 47
PAPER_N_COLLUSIVE = 212


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Table II.

    Args:
        context: a prebuilt experiment context (a fresh paper-scale one
            is built when omitted).
    """
    context = context if context is not None else build_context(ExperimentConfig())
    clusters = context.clusters
    size_table = community_size_table(clusters)

    table = ComparisonTable(title="Table II: collusive community sizes (%)", rows=[])
    for label, measured in size_table.as_rows():
        table.add(label=f"size {label}", measured=measured, paper=PAPER_TABLE_II[label])
    table.add(
        label="n_communities",
        measured=float(clusters.n_communities),
        paper=float(PAPER_N_COMMUNITIES),
    )
    table.add(
        label="n_collusive_workers",
        measured=float(clusters.n_collusive_workers),
        paper=float(PAPER_N_COLLUSIVE),
    )

    planted = {
        frozenset(members)
        for members in context.trace.planted_communities().values()
    }
    found = set(clusters.communities)
    checks = {
        "pairs_are_the_most_common_size": size_table.percentage(2)
        == max(pct for _, pct in size_table.as_rows()),
        "clustering_recovers_planted_communities": planted == found,
        "all_collusive_workers_assigned": clusters.n_collusive_workers
        == sum(len(c) for c in planted),
    }
    return ExperimentResult(
        experiment_id="table2",
        tables=[table.format(), size_table.format()],
        data={
            "histogram": clusters.size_histogram(),
            "n_communities": clusters.n_communities,
            "n_collusive_workers": clusters.n_collusive_workers,
        },
        checks=checks,
    )
