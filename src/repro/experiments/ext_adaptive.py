"""Extension: online-adaptive weights vs offline-estimated weights.

Not a paper figure — this realizes the paper's "adaptive to changes in
workers' behavior" claim end-to-end.  On a *stationary* population, a
requester that starts with uninformative priors and re-estimates
Eq. (5) weights online (EWMA over observed rating deviations) should
converge to the offline-estimated dynamic policy within a few rounds;
the experiment measures that convergence and its warm-up cost.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..metrics.comparison import ComparisonTable
from ..simulation.adaptive import AdaptiveDynamicPolicy
from ..simulation.engine import MarketplaceSimulation
from ..simulation.policies import DynamicContractPolicy
from ..types import WorkerType
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]

_N_ROUNDS = 12
_HONEST_SAMPLE = 200
#: Rounds considered "converged" (the last third of the run).
_TAIL = 4


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Run the adaptive-vs-offline convergence experiment.

    Extension beyond the paper's Fig. 8: the requester estimates worker
    parameters online and re-designs Eq. (6) contracts each round,
    converging to the offline (full-information) design.
    """
    context = context if context is not None else build_context(ExperimentConfig())
    config = context.config
    population = context.population(honest_sample=_HONEST_SAMPLE)
    objective = context.objective()

    offline = MarketplaceSimulation(
        population,
        objective,
        DynamicContractPolicy(mu=config.mu_default),
        seed=config.seed,
    ).run(_N_ROUNDS)
    adaptive_policy = AdaptiveDynamicPolicy(
        mu=config.mu_default, weight_params=config.weight_params
    )
    adaptive = MarketplaceSimulation(
        population, objective, adaptive_policy, seed=config.seed
    ).run(_N_ROUNDS)

    offline_series = offline.utility_series()
    adaptive_series = adaptive.utility_series()
    tail_offline = float(offline_series[-_TAIL:].mean())
    tail_adaptive = float(adaptive_series[-_TAIL:].mean())

    # Weight convergence: adaptive weights for honest workers approach
    # the offline (trace-estimated) ones.
    final_weights = adaptive_policy.current_weights(population)
    honest_ids = population.subjects_of_type(WorkerType.HONEST)
    offline_honest = np.array([population.weights[s] for s in honest_ids])
    adaptive_honest = np.array([final_weights[s] for s in honest_ids])
    relative_gap = float(
        np.mean(np.abs(adaptive_honest - offline_honest))
        / max(float(np.mean(np.abs(offline_honest))), 1e-9)
    )

    table = ComparisonTable(
        title=f"EXT adaptive: online vs offline weights over {_N_ROUNDS} rounds",
        rows=[],
    )
    table.add("offline total", measured=float(offline_series.sum()))
    table.add("adaptive total", measured=float(adaptive_series.sum()))
    table.add(
        "tail mean (offline)",
        measured=tail_offline,
        note=f"last {_TAIL} rounds",
    )
    table.add(
        "tail mean (adaptive)",
        measured=tail_adaptive,
        note=f"last {_TAIL} rounds",
    )
    table.add(
        "honest weight gap",
        measured=relative_gap,
        note="mean |online - offline| / mean offline",
    )

    checks = {
        "adaptive_converges_to_offline_tail": tail_adaptive
        >= 0.85 * tail_offline,
        "adaptive_total_within_warmup_cost": float(adaptive_series.sum())
        >= 0.7 * float(offline_series.sum()),
        "honest_weights_converge": relative_gap <= 0.5,
        "adaptive_improves_over_run": float(adaptive_series[-_TAIL:].mean())
        >= float(adaptive_series[:_TAIL].mean()) * 0.95,
    }
    data: Dict[str, object] = {
        "offline_series": offline_series.tolist(),
        "adaptive_series": adaptive_series.tolist(),
        "honest_weight_gap": relative_gap,
    }
    return ExperimentResult(
        experiment_id="ext_adaptive",
        tables=[table.format()],
        data=data,
        checks=checks,
    )
