"""Experiment drivers: one module per table/figure of the paper."""

from .common import ExperimentContext, ExperimentResult, build_context, clear_context_cache
from .config import ExperimentConfig

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "build_context",
    "clear_context_cache",
    "ExperimentConfig",
]
