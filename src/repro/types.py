"""Shared value types used across the repro library.

This module deliberately holds only small, dependency-free records so
that every subsystem (core algorithm, data substrate, simulation engine)
can exchange data without import cycles.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .errors import ModelError
from .numerics import is_zero

__all__ = [
    "WorkerType",
    "WorkerParameters",
    "RequesterParameters",
    "FeedbackWeightParameters",
    "DiscretizationGrid",
]


class WorkerType(enum.Enum):
    """The three worker classes of the paper (Section II).

    * ``HONEST`` — maximizes compensation minus effort cost (Eq. 11).
    * ``NONCOLLUSIVE_MALICIOUS`` — additionally values the influence
      (feedback) of its biased reviews (Eq. 14).
    * ``COLLUSIVE_MALICIOUS`` — malicious and a member of a collusive
      community; the community acts as a single meta-worker (Eq. 17).
    """

    HONEST = "honest"
    NONCOLLUSIVE_MALICIOUS = "noncollusive_malicious"
    COLLUSIVE_MALICIOUS = "collusive_malicious"

    @property
    def is_malicious(self) -> bool:
        """Whether workers of this type pursue a hidden agenda."""
        return self is not WorkerType.HONEST

    @property
    def short_label(self) -> str:
        """Compact label used in printed tables (matches the paper)."""
        return _SHORT_LABELS[self]


_SHORT_LABELS = {
    WorkerType.HONEST: "Honest",
    WorkerType.NONCOLLUSIVE_MALICIOUS: "NC-Mal",
    WorkerType.COLLUSIVE_MALICIOUS: "C-Mal",
}


@dataclass(frozen=True)
class WorkerParameters:
    """Behavioural parameters of a single worker (or meta-worker).

    Attributes:
        beta: weight of the effort cost in the worker utility
            (``beta > 0``; Eq. 11/14).
        omega: weight of the feedback (influence) term in a malicious
            worker's utility (Eq. 14).  Honest workers are the special
            case ``omega == 0`` (Section IV-C).
        worker_type: the behavioural class of the worker.
    """

    beta: float = 1.0
    omega: float = 0.0
    worker_type: WorkerType = WorkerType.HONEST

    def __post_init__(self) -> None:
        if not math.isfinite(self.beta) or self.beta <= 0.0:
            raise ModelError(f"beta must be finite and positive, got {self.beta!r}")
        if not math.isfinite(self.omega) or self.omega < 0.0:
            raise ModelError(f"omega must be finite and >= 0, got {self.omega!r}")
        if self.worker_type is WorkerType.HONEST and not is_zero(self.omega):
            raise ModelError(
                "honest workers must have omega == 0 "
                f"(got omega={self.omega!r}); use a malicious worker type"
            )

    @staticmethod
    def honest(beta: float = 1.0) -> "WorkerParameters":
        """Parameters for an honest worker (``omega = 0``)."""
        return WorkerParameters(beta=beta, omega=0.0, worker_type=WorkerType.HONEST)

    @staticmethod
    def malicious(
        beta: float = 1.0,
        omega: float = 0.5,
        collusive: bool = False,
    ) -> "WorkerParameters":
        """Parameters for a malicious worker or collusive community."""
        worker_type = (
            WorkerType.COLLUSIVE_MALICIOUS if collusive else WorkerType.NONCOLLUSIVE_MALICIOUS
        )
        return WorkerParameters(beta=beta, omega=omega, worker_type=worker_type)


@dataclass(frozen=True)
class FeedbackWeightParameters:
    """Coefficients of the requester's feedback weight (Eq. 5).

    ``w_i = rho / |l_i - l_bar| - kappa * e_mal - gamma * n_partners``

    Attributes:
        rho: coefficient of review accuracy.
        kappa: penalty coefficient for the malice probability.
        gamma: penalty coefficient per collusive partner.
        min_deviation: floor applied to ``|l_i - l_bar|`` so that a
            review exactly matching the expert consensus yields a large
            but finite weight (the paper leaves the singular point
            unspecified).
        max_weight: optional hard cap on the resulting weight.
    """

    rho: float = 1.0
    kappa: float = 0.1
    gamma: float = 0.1
    min_deviation: float = 0.1
    max_weight: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rho <= 0.0:
            raise ModelError(f"rho must be positive, got {self.rho!r}")
        if self.kappa < 0.0 or self.gamma < 0.0:
            raise ModelError("kappa and gamma must be non-negative")
        if self.min_deviation <= 0.0:
            raise ModelError(
                f"min_deviation must be positive, got {self.min_deviation!r}"
            )
        if self.max_weight is not None and self.max_weight <= 0.0:
            raise ModelError("max_weight, when set, must be positive")

    def weight(
        self,
        review_score: float,
        expert_score: float,
        malice_probability: float = 0.0,
        n_partners: int = 0,
    ) -> float:
        """Compute the feedback weight ``w_i`` of Eq. (5).

        Args:
            review_score: the worker's review score ``l_i``.
            expert_score: the expert consensus ``l_bar`` ("ground truth").
            malice_probability: estimated probability ``e_mal`` that the
                worker is malicious, in ``[0, 1]``.
            n_partners: number of collusive partners ``A_i``.

        Returns:
            The (possibly negative) weight the requester assigns to this
            worker's feedback.
        """
        return self.weight_from_deviation(
            deviation=abs(review_score - expert_score),
            malice_probability=malice_probability,
            n_partners=n_partners,
        )

    def weight_from_deviation(
        self,
        deviation: float,
        malice_probability: float = 0.0,
        n_partners: int = 0,
    ) -> float:
        """Eq. (5) weight from an already-computed ``|l_i - l_bar|``.

        Useful when the deviation is an aggregate (e.g. a worker's mean
        deviation over its review history).
        """
        if deviation < 0.0 or not math.isfinite(deviation):
            # An infinite deviation models "no usable reviews": the
            # accuracy term vanishes and only penalties remain.
            if math.isinf(deviation) and deviation > 0.0:
                return -self.kappa * malice_probability - self.gamma * n_partners
            raise ModelError(f"deviation must be finite and >= 0, got {deviation!r}")
        if not 0.0 <= malice_probability <= 1.0:
            raise ModelError(
                f"malice_probability must lie in [0, 1], got {malice_probability!r}"
            )
        if n_partners < 0:
            raise ModelError(f"n_partners must be >= 0, got {n_partners!r}")
        weight = self.rho / max(deviation, self.min_deviation)
        if self.max_weight is not None:
            weight = min(weight, self.max_weight)
        return weight - self.kappa * malice_probability - self.gamma * n_partners


@dataclass(frozen=True)
class RequesterParameters:
    """Parameters of the requester's utility (Eq. 7).

    Attributes:
        mu: weight of the total compensation in the requester utility.
        weight_params: coefficients used to score worker feedback.
    """

    mu: float = 1.0
    weight_params: FeedbackWeightParameters = field(
        default_factory=FeedbackWeightParameters
    )

    def __post_init__(self) -> None:
        if not math.isfinite(self.mu) or self.mu <= 0.0:
            raise ModelError(f"mu must be finite and positive, got {self.mu!r}")

    def utility(self, benefit: float, total_compensation: float) -> float:
        """Requester utility ``p^t - mu * sum(c_i^t)`` for one round."""
        return benefit - self.mu * total_compensation


@dataclass(frozen=True)
class DiscretizationGrid:
    """Uniform partition of the effort region (Section III-A).

    The effort region ``[0, m * delta)`` is split into ``m`` intervals
    ``[0, delta), [delta, 2*delta), ..., [(m-1)*delta, m*delta)``.

    Attributes:
        n_intervals: the number of intervals ``m``.
        delta: the width of each interval.
    """

    n_intervals: int
    delta: float

    def __post_init__(self) -> None:
        if self.n_intervals < 1:
            raise ModelError(
                f"n_intervals must be >= 1, got {self.n_intervals!r}"
            )
        if not math.isfinite(self.delta) or self.delta <= 0.0:
            raise ModelError(f"delta must be finite and positive, got {self.delta!r}")

    @property
    def max_effort(self) -> float:
        """The right edge ``m * delta`` of the effort region."""
        return self.n_intervals * self.delta

    def edge(self, index: int) -> float:
        """The effort value ``index * delta`` (``index`` in ``0..m``)."""
        if not 0 <= index <= self.n_intervals:
            raise ModelError(
                f"edge index must be in [0, {self.n_intervals}], got {index!r}"
            )
        return index * self.delta

    def edges(self) -> Tuple[float, ...]:
        """All interval edges ``(0, delta, ..., m * delta)``."""
        return tuple(i * self.delta for i in range(self.n_intervals + 1))

    def interval(self, index: int) -> Tuple[float, float]:
        """The half-open effort interval ``[(index-1)*delta, index*delta)``.

        Intervals are numbered ``1..m`` following the paper.
        """
        if not 1 <= index <= self.n_intervals:
            raise ModelError(
                f"interval index must be in [1, {self.n_intervals}], got {index!r}"
            )
        return ((index - 1) * self.delta, index * self.delta)

    def locate(self, effort: float) -> int:
        """Return the 1-based index of the interval containing ``effort``.

        Efforts at or beyond ``m * delta`` are clamped to interval ``m``.
        """
        if effort < 0.0:
            raise ModelError(f"effort must be >= 0, got {effort!r}")
        index = int(effort // self.delta) + 1
        return min(index, self.n_intervals)

    @staticmethod
    def for_max_effort(max_effort: float, n_intervals: int) -> "DiscretizationGrid":
        """Build a grid covering ``[0, max_effort)`` with ``n_intervals``."""
        if max_effort <= 0.0:
            raise ModelError(f"max_effort must be positive, got {max_effort!r}")
        return DiscretizationGrid(
            n_intervals=n_intervals, delta=max_effort / n_intervals
        )


def worker_type_counts(types: Dict[str, WorkerType]) -> Dict[WorkerType, int]:
    """Count workers per type from a ``worker_id -> WorkerType`` mapping."""
    counts = {worker_type: 0 for worker_type in WorkerType}
    for worker_type in types.values():
        counts[worker_type] += 1
    return counts
