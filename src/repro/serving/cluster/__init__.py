"""Sharded multi-process contract serving (`repro.serving.cluster`).

The single-process :class:`~repro.serving.server.ContractServer` tops
out at one GIL-bound process and one cache's worth of warm contracts.
This package scales the serving layer out:

* :mod:`~repro.serving.cluster.ring` — a stable consistent-hash ring
  over shard ids; design fingerprints map to shards with cache affinity
  that survives resizes (adding/removing a shard moves ~1/N of keys).
* :mod:`~repro.serving.cluster.shard` — one worker *process* per shard,
  each running its own :class:`~repro.serving.pool.SolverPool` +
  :class:`~repro.serving.cache.ContractCache`, spoken to over a pipe.
* :mod:`~repro.serving.cluster.router` — fingerprint routing, bounded
  retry/backoff failover, a supervisor that restarts crashed shards
  with warm-cache handoff, and a local last-resort solver so no request
  is ever lost.
* :mod:`~repro.serving.cluster.http` — a minimal stdlib HTTP/JSON front
  end (``/solve``, ``/solve_batch``, ``/healthz``, ``/stats``).
* :mod:`~repro.serving.cluster.codec` — the JSON wire format for
  subproblems and solved designs.

The closed-loop load harness lives one level up in
:mod:`repro.serving.loadgen` (``repro bench-serve`` on the CLI).
"""

from __future__ import annotations

from .codec import (
    design_to_json,
    subproblem_from_json,
    subproblem_to_json,
)
from .http import ClusterHTTPServer, HTTPServerThread, run_http_in_thread
from .ring import HashRing
from .router import ClusterStats, ShardRouter
from .shard import ShardProcess, ShardSpec

__all__ = [
    "ClusterHTTPServer",
    "ClusterStats",
    "HTTPServerThread",
    "HashRing",
    "ShardProcess",
    "ShardRouter",
    "ShardSpec",
    "design_to_json",
    "run_http_in_thread",
    "subproblem_from_json",
    "subproblem_to_json",
]
