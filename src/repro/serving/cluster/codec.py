"""JSON wire format for subproblems and solved designs.

The HTTP front end (:mod:`repro.serving.cluster.http`) speaks plain
JSON.  A subproblem serializes to exactly the fields the Section IV-C
designer consumes (the same tuple the design fingerprint hashes); a
solved design serializes to the quantities downstream consumers read
off a :class:`~repro.core.designer.DesignResult` — the posted
compensation vector, the selected piece, the best response and the
requester utility.

Python's :mod:`json` emits ``repr``-style floats, which round-trip
every finite double exactly, so a compensation vector survives the HTTP
hop bit-identically — the cluster benchmarks assert that against serial
solving.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from ...core.decomposition import Subproblem
from ...core.designer import DesignResult
from ...core.effort import QuadraticEffort
from ...errors import ServingError
from ...types import WorkerParameters, WorkerType

__all__ = [
    "design_to_json",
    "subproblem_from_json",
    "subproblem_to_json",
]


def subproblem_to_json(subproblem: Subproblem) -> Dict[str, Any]:
    """Encode one subproblem as a JSON-serializable dict."""
    r2, r1, r0 = subproblem.effort_function.coefficients()
    return {
        "subject_id": subproblem.subject_id,
        "r2": r2,
        "r1": r1,
        "r0": r0,
        "beta": subproblem.params.beta,
        "omega": subproblem.params.omega,
        "worker_type": subproblem.params.worker_type.value,
        "feedback_weight": subproblem.feedback_weight,
        "member_ids": list(subproblem.member_ids),
        "max_effort": subproblem.max_effort,
    }


def subproblem_from_json(payload: Mapping[str, Any]) -> Subproblem:
    """Decode one subproblem from its JSON dict.

    Raises:
        ServingError: on missing fields or invalid values (the model
            layer's own validation errors are re-raised as such, so the
            HTTP front end can map them to a 400).
    """
    try:
        effort_function = QuadraticEffort(
            r2=float(payload["r2"]),
            r1=float(payload["r1"]),
            r0=float(payload.get("r0", 0.0)),
        )
        params = WorkerParameters(
            beta=float(payload.get("beta", 1.0)),
            omega=float(payload.get("omega", 0.0)),
            worker_type=WorkerType(payload.get("worker_type", "honest")),
        )
        max_effort = payload.get("max_effort")
        return Subproblem(
            subject_id=str(payload["subject_id"]),
            effort_function=effort_function,
            params=params,
            feedback_weight=float(payload.get("feedback_weight", 1.0)),
            member_ids=tuple(payload.get("member_ids") or ()),
            max_effort=None if max_effort is None else float(max_effort),
        )
    except ServingError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ServingError(f"malformed subproblem payload: {error}") from error
    except Exception as error:  # noqa: BLE001 - model validation -> 400
        raise ServingError(f"invalid subproblem: {error}") from error


def design_to_json(
    subject_id: str,
    result: DesignResult,
    fingerprint: Optional[str] = None,
    cache_hit: Optional[bool] = None,
) -> Dict[str, Any]:
    """Encode one solved design as a JSON-serializable dict."""
    payload: Dict[str, Any] = {
        "subject_id": subject_id,
        "hired": result.hired,
        "k_opt": result.k_opt,
        "compensations": list(result.contract.compensations),
        "requester_utility": result.requester_utility,
        "effort": result.effort,
        "compensation": result.compensation,
    }
    if fingerprint is not None:
        payload["fingerprint"] = fingerprint
    if cache_hit is not None:
        payload["cache_hit"] = cache_hit
    return payload
