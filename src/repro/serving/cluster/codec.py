"""JSON wire format for subproblems and solved designs.

The HTTP front end (:mod:`repro.serving.cluster.http`) speaks plain
JSON.  A subproblem serializes to exactly the fields the Section IV-C
designer consumes (the same tuple the design fingerprint hashes); a
solved design serializes to the quantities downstream consumers read
off a :class:`~repro.core.designer.DesignResult` — the posted
compensation vector, the selected piece, the best response and the
requester utility.

Python's :mod:`json` emits ``repr``-style floats, which round-trip
every finite double exactly, so a compensation vector survives the HTTP
hop bit-identically — the cluster benchmarks assert that against serial
solving.

This module also defines the **columnar batch frame**: the zero-pickle
wire format for whole solve batches.  A population batch holds at most
a few dozen *design archetypes* (unique fingerprints) among millions of
subjects, so instead of shipping O(population) pickled
:class:`Subproblem` objects, a frame packs one ``(K, 7)`` float64
archetype table + per-archetype worker types / representative ids /
fingerprints, plus an ``(n,)`` int64 code vector mapping each request
to its archetype row.  A shard solves the K representatives (fed with
the frame's own fingerprints, so its cache keys and hit semantics are
identical to the object path) and replies with K designs; the caller
fans the results back out through the codes.  Fingerprints deliberately
exclude ``subject_id``/``member_ids``, which is what makes the
rebuilt ``member_ids=()`` representatives solve and cache exactly as
the originals.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...core.decomposition import Subproblem
from ...core.designer import DesignResult
from ...core.effort import QuadraticEffort
from ...errors import ServingError
from ...types import WorkerParameters, WorkerType

__all__ = [
    "columnar_frame",
    "design_to_json",
    "expand_frame_results",
    "frame_from_json",
    "frame_to_json",
    "subproblem_from_json",
    "subproblem_to_json",
    "subproblems_from_frame",
]

#: Wire sentinel for "no effort cap" in the archetype table.  Caps are
#: strictly positive, and a float sentinel keeps the table NaN-free so
#: it survives JSON (which cannot carry NaN) and byte comparisons.
_NO_MAX_EFFORT_WIRE = -1.0

#: Worker types in wire-code order (index == code).
_WIRE_WORKER_TYPES: Tuple[WorkerType, ...] = tuple(WorkerType)
_WIRE_WORKER_CODES: Dict[WorkerType, int] = {
    worker_type: code for code, worker_type in enumerate(_WIRE_WORKER_TYPES)
}


def subproblem_to_json(subproblem: Subproblem) -> Dict[str, Any]:
    """Encode one subproblem as a JSON-serializable dict."""
    r2, r1, r0 = subproblem.effort_function.coefficients()
    return {
        "subject_id": subproblem.subject_id,
        "r2": r2,
        "r1": r1,
        "r0": r0,
        "beta": subproblem.params.beta,
        "omega": subproblem.params.omega,
        "worker_type": subproblem.params.worker_type.value,
        "feedback_weight": subproblem.feedback_weight,
        "member_ids": list(subproblem.member_ids),
        "max_effort": subproblem.max_effort,
    }


def subproblem_from_json(payload: Mapping[str, Any]) -> Subproblem:
    """Decode one subproblem from its JSON dict.

    Raises:
        ServingError: on missing fields or invalid values (the model
            layer's own validation errors are re-raised as such, so the
            HTTP front end can map them to a 400).
    """
    try:
        effort_function = QuadraticEffort(
            r2=float(payload["r2"]),
            r1=float(payload["r1"]),
            r0=float(payload.get("r0", 0.0)),
        )
        params = WorkerParameters(
            beta=float(payload.get("beta", 1.0)),
            omega=float(payload.get("omega", 0.0)),
            worker_type=WorkerType(payload.get("worker_type", "honest")),
        )
        max_effort = payload.get("max_effort")
        return Subproblem(
            subject_id=str(payload["subject_id"]),
            effort_function=effort_function,
            params=params,
            feedback_weight=float(payload.get("feedback_weight", 1.0)),
            member_ids=tuple(payload.get("member_ids") or ()),
            max_effort=None if max_effort is None else float(max_effort),
        )
    except ServingError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ServingError(f"malformed subproblem payload: {error}") from error
    except Exception as error:  # noqa: BLE001 - model validation -> 400
        raise ServingError(f"invalid subproblem: {error}") from error


def design_to_json(
    subject_id: str,
    result: DesignResult,
    fingerprint: Optional[str] = None,
    cache_hit: Optional[bool] = None,
) -> Dict[str, Any]:
    """Encode one solved design as a JSON-serializable dict."""
    payload: Dict[str, Any] = {
        "subject_id": subject_id,
        "hired": result.hired,
        "k_opt": result.k_opt,
        "compensations": list(result.contract.compensations),
        "requester_utility": result.requester_utility,
        "effort": result.effort,
        "compensation": result.compensation,
    }
    if fingerprint is not None:
        payload["fingerprint"] = fingerprint
    if cache_hit is not None:
        payload["cache_hit"] = cache_hit
    return payload


def columnar_frame(
    subproblems: Sequence[Subproblem], fingerprints: Sequence[str]
) -> Dict[str, Any]:
    """Pack a solve batch into the archetype-table + codes wire frame.

    Groups requests by fingerprint: row ``k`` of the table holds the
    k-th distinct archetype (in first-appearance order) and
    ``codes[i]`` maps request ``i`` to its row.  The frame carries the
    *given* fingerprints so the receiving side never recomputes them —
    cache keys stay bit-identical to the object wire format.
    """
    if len(subproblems) != len(fingerprints):
        raise ServingError(
            f"frame needs one fingerprint per subproblem, got "
            f"{len(subproblems)} subproblems and {len(fingerprints)} "
            "fingerprints"
        )
    slots: Dict[str, int] = {}
    codes = np.empty(len(subproblems), dtype=np.int64)
    representatives: List[Subproblem] = []
    rep_fingerprints: List[str] = []
    for index, (subproblem, fingerprint) in enumerate(
        zip(subproblems, fingerprints)
    ):
        slot = slots.get(fingerprint)
        if slot is None:
            slot = len(representatives)
            slots[fingerprint] = slot
            representatives.append(subproblem)
            rep_fingerprints.append(fingerprint)
        codes[index] = slot
    table = np.empty((len(representatives), 7), dtype=np.float64)
    worker_types = np.empty(len(representatives), dtype=np.int64)
    for slot, subproblem in enumerate(representatives):
        r2, r1, r0 = subproblem.effort_function.coefficients()
        table[slot] = (
            r2,
            r1,
            r0,
            subproblem.params.beta,
            subproblem.params.omega,
            subproblem.feedback_weight,
            _NO_MAX_EFFORT_WIRE
            if subproblem.max_effort is None
            else subproblem.max_effort,
        )
        worker_types[slot] = _WIRE_WORKER_CODES[subproblem.params.worker_type]
    return {
        "table": table,
        "worker_types": worker_types,
        "subject_ids": tuple(
            subproblem.subject_id for subproblem in representatives
        ),
        "fingerprints": tuple(rep_fingerprints),
        "codes": codes,
    }


def subproblems_from_frame(
    frame: Mapping[str, Any],
) -> Tuple[List[Subproblem], List[str]]:
    """Rebuild one representative :class:`Subproblem` per archetype row.

    ``member_ids`` are dropped (``()``): the design fingerprint — and
    therefore the designed contract and every cache key — deliberately
    excludes them, so the rebuilt representative solves identically to
    the original batch's subproblems.

    Returns:
        ``(subproblems, fingerprints)`` of length K, aligned by row.

    Raises:
        ServingError: on malformed frames (shape/code-range/field
            errors), so transports can map them to a 400.
    """
    try:
        table = np.asarray(frame["table"], dtype=np.float64)
        worker_types = np.asarray(frame["worker_types"], dtype=np.int64)
        subject_ids = tuple(frame["subject_ids"])
        fingerprints = [str(value) for value in frame["fingerprints"]]
        codes = np.asarray(frame["codes"], dtype=np.int64)
    except (KeyError, TypeError, ValueError) as error:
        raise ServingError(f"malformed columnar frame: {error}") from error
    if table.ndim != 2 or table.shape[1] != 7:
        raise ServingError(
            f"frame table must have shape (K, 7), got {table.shape!r}"
        )
    n_archetypes = table.shape[0]
    if not (
        len(subject_ids) == len(fingerprints) == worker_types.shape[0]
        == n_archetypes
    ):
        raise ServingError(
            "frame archetype fields disagree on K: "
            f"table {n_archetypes}, worker_types {worker_types.shape[0]}, "
            f"subject_ids {len(subject_ids)}, "
            f"fingerprints {len(fingerprints)}"
        )
    if codes.ndim != 1:
        raise ServingError(
            f"frame codes must be one-dimensional, got {codes.shape!r}"
        )
    if codes.size and not (
        0 <= int(codes.min()) and int(codes.max()) < n_archetypes
    ):
        raise ServingError(
            f"frame codes reference archetypes outside [0, {n_archetypes})"
        )
    if worker_types.size and not (
        0 <= int(worker_types.min())
        and int(worker_types.max()) < len(_WIRE_WORKER_TYPES)
    ):
        raise ServingError("frame worker_types outside the wire-code range")
    subproblems: List[Subproblem] = []
    try:
        for slot in range(n_archetypes):
            r2, r1, r0, beta, omega, weight, cap = (
                float(value) for value in table[slot]
            )
            subproblems.append(
                Subproblem(
                    subject_id=str(subject_ids[slot]),
                    effort_function=QuadraticEffort(r2=r2, r1=r1, r0=r0),
                    params=WorkerParameters(
                        beta=beta,
                        omega=omega,
                        worker_type=_WIRE_WORKER_TYPES[
                            int(worker_types[slot])
                        ],
                    ),
                    feedback_weight=weight,
                    member_ids=(),
                    max_effort=(
                        None
                        if cap == _NO_MAX_EFFORT_WIRE  # noqa: REPRO001 - exact wire sentinel
                        else cap
                    ),
                )
            )
    except ServingError:
        raise
    except Exception as error:  # noqa: BLE001 - model validation -> 400
        raise ServingError(f"invalid frame archetype: {error}") from error
    return subproblems, fingerprints


def expand_frame_results(
    frame: Mapping[str, Any],
    designs: Sequence[Any],
    cache_hits: Sequence[bool],
) -> Tuple[List[Any], List[bool]]:
    """Fan K per-archetype results back out to the frame's n requests.

    Exactly the object path's dedupe semantics: every request in a
    fingerprint group shares its group's design object and hit flag.
    """
    codes = np.asarray(frame["codes"], dtype=np.int64)
    if len(designs) != len(cache_hits):
        raise ServingError(
            f"got {len(designs)} designs but {len(cache_hits)} hit flags"
        )
    n_archetypes = len(designs)
    if codes.size and not (
        0 <= int(codes.min()) and int(codes.max()) < n_archetypes
    ):
        raise ServingError(
            f"frame codes reference archetypes outside [0, {n_archetypes})"
        )
    code_list = codes.tolist()
    return (
        [designs[code] for code in code_list],
        [bool(cache_hits[code]) for code in code_list],
    )


def frame_to_json(frame: Mapping[str, Any]) -> Dict[str, Any]:
    """Encode a columnar frame as a JSON-serializable dict."""
    return {
        "table": np.asarray(frame["table"], dtype=np.float64).tolist(),
        "worker_types": np.asarray(
            frame["worker_types"], dtype=np.int64
        ).tolist(),
        "subject_ids": list(frame["subject_ids"]),
        "fingerprints": list(frame["fingerprints"]),
        "codes": np.asarray(frame["codes"], dtype=np.int64).tolist(),
    }


def frame_from_json(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Decode a columnar frame from JSON (packs lists back to arrays)."""
    try:
        table = np.asarray(payload["table"], dtype=np.float64)
        if table.size == 0:
            table = table.reshape(0, 7)
        return {
            "table": table,
            "worker_types": np.asarray(
                payload["worker_types"], dtype=np.int64
            ),
            "subject_ids": tuple(payload["subject_ids"]),
            "fingerprints": tuple(payload["fingerprints"]),
            "codes": np.asarray(payload["codes"], dtype=np.int64),
        }
    except (KeyError, TypeError, ValueError) as error:
        raise ServingError(f"malformed columnar frame: {error}") from error
