"""Fingerprint routing, failover and supervision over shard processes.

The :class:`ShardRouter` is the cluster's brain: it owns the consistent
hash ring (:class:`~repro.serving.cluster.ring.HashRing`), one
:class:`~repro.serving.cluster.shard.ShardProcess` per shard, and the
request path that ties them together:

1. **route** — each request's design fingerprint maps through the ring
   to its owner shard, so repeats of the same subproblem always hit the
   same warm cache;
2. **retry / failover** — a shard that stops answering (transport
   failure, not an application error) is retried with linear backoff on
   the ring successors, bounded by ``max_retries``;
3. **degrade, never drop** — when every shard attempt is exhausted the
   router solves locally in-process (its own small
   :class:`~repro.serving.pool.SolverPool`), so a request can slow down
   but never be lost;
4. **supervise** — a daemon thread restarts dead shards and re-warms
   them from the surviving peers' caches (the peers served the dead
   shard's keys during the outage, so the handoff restores affinity
   without re-solving anything).

Routing, retries and lifecycle transitions are all visible through
:mod:`repro.obs`: counters/histograms on :class:`ClusterStats` and
spans (``cluster.solve_batch``, ``cluster.solve_group``) when tracing
is enabled.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...core.decomposition import Subproblem, SubproblemSolution
from ...core.designer import DesignerConfig, DesignResult
from ...errors import ServingError
from ...obs.aggregate import ClusterScrape, ShardExport, federate, local_export
from ...obs.metrics import Counter, Histogram, MetricsRegistry
from ...obs.trace import NULL_SPAN, SpanContext, Tracer, get_tracer
from ..cache import ContractCache
from ..fingerprint import subproblem_fingerprint
from ..pool import SolverPool
from .codec import (
    columnar_frame,
    expand_frame_results,
    subproblems_from_frame,
)
from .ring import DEFAULT_REPLICAS, HashRing
from .shard import ShardProcess, ShardSpec, ShardTransportError

__all__ = ["ClusterStats", "ShardRouter"]


class ClusterStats:
    """Obs-backed counters of the cluster router.

    A lock-free facade: every instrument below is an
    :mod:`repro.obs.metrics` primitive with its own internal lock, so
    the router can bump counters from any thread without coordination.

    Attributes:
        registry: the backing :class:`MetricsRegistry` (private unless
            one is injected — pass :func:`repro.obs.metrics.get_registry`
            to publish next to the rest of the process).
        requests: requests routed through the cluster.
        batches: solve batches the router has served.
        routed: per-shard group dispatches (one per owner per batch).
        failovers: dispatches that landed on a non-owner shard.
        retries: shard attempts after the first, across all requests.
        transport_errors: shard attempts that died in transport.
        local_fallbacks: groups solved by the router's in-process pool.
        restarts: shard processes revived by the supervisor.
        handoff_entries: cached designs shipped in warm handoffs.
        request_latency: end-to-end seconds per routed group dispatch.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        namespace: str = "cluster",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.namespace = namespace
        prefix = f"{namespace}." if namespace else ""
        self.requests: Counter = self.registry.counter(
            prefix + "requests", "requests routed through the cluster"
        )
        self.batches: Counter = self.registry.counter(
            prefix + "batches", "solve batches served by the router"
        )
        self.routed: Counter = self.registry.counter(
            prefix + "routed", "per-shard group dispatches"
        )
        self.failovers: Counter = self.registry.counter(
            prefix + "failovers", "dispatches served by a non-owner shard"
        )
        self.retries: Counter = self.registry.counter(
            prefix + "retries", "shard attempts after the first"
        )
        self.transport_errors: Counter = self.registry.counter(
            prefix + "transport_errors", "shard attempts that died in transport"
        )
        self.local_fallbacks: Counter = self.registry.counter(
            prefix + "local_fallbacks", "groups solved by the local fallback pool"
        )
        self.restarts: Counter = self.registry.counter(
            prefix + "restarts", "shards revived by the supervisor"
        )
        self.handoff_entries: Counter = self.registry.counter(
            prefix + "handoff_entries", "cached designs shipped in warm handoffs"
        )
        self.request_latency: Histogram = self.registry.histogram(
            prefix + "group_latency_s", "seconds per routed group dispatch"
        )

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Every cluster metric as ``{name: {field: value}}``."""
        return self.registry.snapshot()


class ShardRouter:
    """Consistent-hash request router over shard processes.

    Args:
        n_shards: shards to boot (ids ``shard-0`` ... ``shard-{n-1}``).
        mu: the requester's compensation weight (shared by all shards).
        config: designer configuration shared by all shards.
        cache_capacity: per-shard contract-cache bound.
        replicas: ring virtual nodes per shard.
        request_timeout: seconds one shard attempt may take.
        max_retries: shard attempts after the first before the local
            fallback pool takes the group.
        backoff: base seconds of the linear inter-attempt backoff.
        supervise_interval: seconds between supervisor liveness sweeps
            (``0`` disables the supervisor thread).
        start_method: :mod:`multiprocessing` start method for shards.
        stats: cluster counters; a private one is created when ``None``.
    """

    def __init__(
        self,
        n_shards: int = 2,
        mu: float = 1.0,
        config: Optional[DesignerConfig] = None,
        cache_capacity: int = 4096,
        replicas: int = DEFAULT_REPLICAS,
        request_timeout: Optional[float] = 30.0,
        max_retries: int = 2,
        backoff: float = 0.05,
        supervise_interval: float = 0.5,
        start_method: Optional[str] = None,
        stats: Optional[ClusterStats] = None,
    ) -> None:
        if n_shards < 1:
            raise ServingError(f"n_shards must be >= 1, got {n_shards!r}")
        if max_retries < 0:
            raise ServingError(f"max_retries must be >= 0, got {max_retries!r}")
        if backoff < 0.0:
            raise ServingError(f"backoff must be >= 0, got {backoff!r}")
        if supervise_interval < 0.0:
            raise ServingError(
                f"supervise_interval must be >= 0, got {supervise_interval!r}"
            )
        self.mu = mu
        self.config = config
        self.cache_capacity = cache_capacity
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.supervise_interval = supervise_interval
        self.stats = stats if stats is not None else ClusterStats()
        self._start_method = start_method
        self._initial_shards = n_shards
        self._lock = threading.RLock()
        self._ring = HashRing(replicas=replicas)
        self._shards: Dict[str, ShardProcess] = {}
        self._next_index = 0
        self._started = False
        self._stop_event = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        # Last-resort solver: small private cache, in-process solving.
        self._fallback_pool = SolverPool(
            n_workers=0,
            mu=mu,
            config=config,
            cache=ContractCache(capacity=max(64, cache_capacity // 4)),
        )

    # -- lifecycle ----------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the router has been started and not yet closed."""
        with self._lock:
            return self._started

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        """Current shard ids, sorted."""
        with self._lock:
            return self._ring.shard_ids

    def start(self) -> None:
        """Boot the initial shards and the supervisor (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            self._executor = ThreadPoolExecutor(
                max_workers=max(2, self._initial_shards),
                thread_name_prefix="repro-cluster",
            )
            for _ in range(self._initial_shards):
                self.add_shard()
            if self.supervise_interval > 0.0:
                supervisor = threading.Thread(
                    target=self._supervise_loop,
                    name="repro-cluster-supervisor",
                    daemon=True,
                )
                supervisor.start()
                self._supervisor = supervisor

    def close(self) -> None:
        """Stop the supervisor, every shard and the fallback pool."""
        with self._lock:
            if not self._started:
                return
            self._started = False
            self._stop_event.set()
            supervisor = self._supervisor
            self._supervisor = None
        if supervisor is not None:
            supervisor.join(timeout=10.0)
        with self._lock:
            processes = list(self._shards.values())
            self._shards.clear()
            self._ring = HashRing(replicas=self._ring.replicas)
            executor = self._executor
            self._executor = None
        for process in processes:
            process.stop()
        if executor is not None:
            executor.shutdown(wait=True)
        self._fallback_pool.close()

    def __enter__(self) -> "ShardRouter":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- membership ---------------------------------------------------

    def add_shard(self, shard_id: Optional[str] = None) -> str:
        """Join one shard, warming its cache from the surviving peers.

        The handoff ships only the entries the *new* ring assigns to the
        joining shard — the ~1/N sliver that just moved — so affinity is
        restored without re-solving anything.

        Returns:
            The joined shard's id.
        """
        with self._lock:
            if shard_id is None:
                shard_id = f"shard-{self._next_index}"
                self._next_index += 1
            if shard_id in self._ring:
                raise ServingError(f"shard {shard_id!r} already in the cluster")
            spec = ShardSpec(
                shard_id=shard_id,
                mu=self.mu,
                config=self.config,
                cache_capacity=self.cache_capacity,
                obs=get_tracer().enabled,
            )
            process = ShardProcess(spec, start_method=self._start_method)
            process.start()
            exported = self._export_peer_caches(exclude=shard_id)
            self._ring.add(shard_id)
            self._shards[shard_id] = process
            owned = [
                (fingerprint, design)
                for fingerprint, design in exported
                if self._ring.assign(fingerprint) == shard_id
            ]
            self._import_entries(process, owned)
            return shard_id

    def remove_shard(self, shard_id: str) -> None:
        """Gracefully leave one shard, handing its cache to successors."""
        with self._lock:
            process = self._shards.get(shard_id)
            if process is None:
                raise ServingError(f"shard {shard_id!r} not in the cluster")
            if len(self._shards) <= 1:
                raise ServingError("cannot remove the last shard")
            exported: List[Tuple[str, DesignResult]] = []
            if process.alive:
                try:
                    exported = process.cache_export(timeout=self.request_timeout)
                except ServingError:
                    exported = []
            self._ring.remove(shard_id)
            del self._shards[shard_id]
            by_owner: Dict[str, List[Tuple[str, DesignResult]]] = {}
            for fingerprint, design in exported:
                owner = self._ring.assign(fingerprint)
                by_owner.setdefault(owner, []).append((fingerprint, design))
            for owner, entries in by_owner.items():
                peer = self._shards.get(owner)
                if peer is not None:
                    self._import_entries(peer, entries)
        process.stop()

    def kill_shard(self, shard_id: str) -> None:
        """SIGKILL one shard without touching the ring (fault injection).

        In-flight requests fail over to ring successors; the supervisor
        revives the shard on its next sweep.
        """
        with self._lock:
            process = self._shards.get(shard_id)
        if process is None:
            raise ServingError(f"shard {shard_id!r} not in the cluster")
        process.kill()

    def _export_peer_caches(
        self, exclude: Optional[str] = None
    ) -> List[Tuple[str, DesignResult]]:
        """Every live peer's cached entries (best-effort, under lock)."""
        exported: List[Tuple[str, DesignResult]] = []
        for peer_id, peer in self._shards.items():
            if peer_id == exclude or not peer.alive:
                continue
            try:
                exported.extend(peer.cache_export(timeout=self.request_timeout))
            except ServingError:
                continue
        return exported

    def _import_entries(
        self, process: ShardProcess, entries: List[Tuple[str, DesignResult]]
    ) -> None:
        """Best-effort warm-cache import into one shard."""
        if not entries:
            return
        try:
            imported = process.cache_import(entries, timeout=self.request_timeout)
        except ServingError:
            return
        self.stats.handoff_entries.inc(imported)

    # -- supervision --------------------------------------------------

    def _supervise_loop(self) -> None:
        """Daemon body: revive dead shards until the router closes."""
        while not self._stop_event.wait(self.supervise_interval):
            try:
                self.revive_dead_shards()
            except ServingError:
                continue

    def revive_dead_shards(self) -> Tuple[str, ...]:
        """Restart every dead shard, re-warming it from live peers.

        Returns:
            Ids of the shards revived in this sweep (empty when all
            shards were healthy).  Public so tests and the CLI can force
            a sweep instead of waiting out ``supervise_interval``.
        """
        revived: List[str] = []
        with self._lock:
            if not self._started:
                return ()
            for shard_id, process in self._shards.items():
                if process.alive:
                    continue
                process.start()
                self.stats.restarts.inc()
                revived.append(shard_id)
                exported = self._export_peer_caches(exclude=shard_id)
                owned = [
                    (fingerprint, design)
                    for fingerprint, design in exported
                    if self._ring.assign(fingerprint) == shard_id
                ]
                self._import_entries(process, owned)
        return tuple(revived)

    # -- request path -------------------------------------------------

    def fingerprints(self, subproblems: Sequence[Subproblem]) -> List[str]:
        """Design fingerprints under this cluster's ``(mu, config)``."""
        return [
            subproblem_fingerprint(subproblem, mu=self.mu, config=self.config)
            for subproblem in subproblems
        ]

    def solve(
        self, subproblems: Sequence[Subproblem]
    ) -> Dict[str, SubproblemSolution]:
        """Solve every subproblem; results keyed by subject id."""
        seen = set()
        for subproblem in subproblems:
            if subproblem.subject_id in seen:
                raise ServingError(
                    f"duplicate subject_id {subproblem.subject_id!r}"
                )
            seen.add(subproblem.subject_id)
        designs, _ = self.solve_designs(subproblems)
        return {
            subproblem.subject_id: SubproblemSolution(
                subproblem=subproblem, result=design
            )
            for subproblem, design in zip(subproblems, designs)
        }

    def solve_designs(
        self,
        subproblems: Sequence[Subproblem],
        fingerprints: Optional[Sequence[str]] = None,
        trace_context: Optional[SpanContext] = None,
    ) -> Tuple[List[DesignResult], List[bool]]:
        """Route one batch through the cluster.

        Requests are grouped by owner shard (ring assignment of each
        design fingerprint) and the groups dispatched concurrently; the
        returned designs and cache-hit flags align with the input order
        regardless of which shard answered when.

        ``trace_context`` parents the ``cluster.solve_batch`` span under
        a caller's span from another thread or process (the HTTP front
        end captures its request span's context before hopping to the
        executor, since :mod:`contextvars` don't cross that boundary).
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_designs(subproblems, fingerprints)
        with tracer.attach(trace_context):
            with tracer.span(
                "cluster.solve_batch", n_requests=len(subproblems)
            ) as span:
                designs, cache_hits = self._solve_designs(
                    subproblems, fingerprints
                )
                span.set("n_shards", len(self.shard_ids))
                span.set("n_hits", sum(1 for hit in cache_hits if hit))
                return designs, cache_hits

    def _solve_designs(
        self,
        subproblems: Sequence[Subproblem],
        fingerprints: Optional[Sequence[str]] = None,
    ) -> Tuple[List[DesignResult], List[bool]]:
        if not self.running:
            raise ServingError("cluster router is not running (call start())")
        if fingerprints is None:
            fingerprints = self.fingerprints(subproblems)
        if len(fingerprints) != len(subproblems):
            raise ServingError(
                f"got {len(fingerprints)} fingerprints for "
                f"{len(subproblems)} subproblems"
            )
        if not subproblems:
            return [], []

        with self._lock:
            owners = [self._ring.assign(fp) for fp in fingerprints]
            executor = self._executor

        groups: Dict[str, List[int]] = {}
        for index, owner in enumerate(owners):
            groups.setdefault(owner, []).append(index)

        designs: List[Optional[DesignResult]] = [None] * len(subproblems)
        cache_hits: List[bool] = [False] * len(subproblems)

        # Executor threads don't inherit this thread's contextvars, so
        # the batch span's context rides along explicitly and each group
        # re-attaches it before opening its own span.
        batch_context = (
            Tracer.current_context() if get_tracer().enabled else None
        )

        def serve_group(
            owner: str, indices: List[int]
        ) -> Tuple[List[DesignResult], List[bool]]:
            return self._solve_group(
                owner,
                [subproblems[i] for i in indices],
                [fingerprints[i] for i in indices],
                trace_context=batch_context,
            )

        ordered = sorted(groups.items())
        if len(ordered) == 1 or executor is None:
            outcomes = [serve_group(owner, idx) for owner, idx in ordered]
        else:
            futures: List["Future[Tuple[List[DesignResult], List[bool]]]"] = [
                executor.submit(serve_group, owner, idx)
                for owner, idx in ordered
            ]
            outcomes = [future.result() for future in futures]

        for (owner, indices), (group_designs, group_hits) in zip(
            ordered, outcomes
        ):
            for position, index in enumerate(indices):
                designs[index] = group_designs[position]
                cache_hits[index] = group_hits[position]

        self.stats.requests.inc(len(subproblems))
        self.stats.batches.inc()
        return [design for design in designs if design is not None], cache_hits

    def _solve_group(
        self,
        owner: str,
        subproblems: List[Subproblem],
        fingerprints: List[str],
        trace_context: Optional[SpanContext] = None,
    ) -> Tuple[List[DesignResult], List[bool]]:
        """One owner group: owner shard, then ring successors, then local.

        Transport failures walk the failover chain with linear backoff;
        application errors propagate immediately (retrying a bad request
        elsewhere cannot fix it).  The local fallback pool is the
        guaranteed last resort — a group can degrade but never fail for
        lack of shards.

        When tracing, the whole chain walk runs inside one
        ``cluster.solve_group`` span (parented under ``trace_context``,
        the batch span) whose context travels to the serving shard in
        the pipe envelope.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_group_inner(owner, subproblems, fingerprints, NULL_SPAN)
        with tracer.attach(trace_context):
            with tracer.span(
                "cluster.solve_group", owner=owner, n_requests=len(subproblems)
            ) as span:
                return self._solve_group_inner(
                    owner, subproblems, fingerprints, span
                )

    def _solve_group_inner(
        self,
        owner: str,
        subproblems: List[Subproblem],
        fingerprints: List[str],
        span: Any,
    ) -> Tuple[List[DesignResult], List[bool]]:
        started = time.perf_counter()
        tracer = get_tracer()
        group_context = Tracer.current_context() if tracer.enabled else None
        # Encode once per group: every retry/failover attempt ships the
        # same packed archetype frame (O(K) floats), never O(n) pickled
        # Subproblem objects.
        frame = columnar_frame(subproblems, fingerprints)
        with self._lock:
            chain = self._ring.preference(fingerprints[0])
        if owner in chain:
            chain = [owner] + [sid for sid in chain if sid != owner]
        attempts = 0
        last_error: Optional[ShardTransportError] = None
        for shard_id in chain:
            if attempts > self.max_retries:
                break
            with self._lock:
                process = self._shards.get(shard_id)
            if process is None or not process.alive:
                continue
            if attempts > 0:
                self.stats.retries.inc()
                if self.backoff > 0.0:
                    time.sleep(self.backoff * attempts)
            attempts += 1
            try:
                rep_designs, rep_hits = process.solve_columnar(
                    frame,
                    timeout=self.request_timeout,
                    trace_context=group_context,
                )
            except ShardTransportError as error:
                self.stats.transport_errors.inc()
                last_error = error
                continue
            self.stats.routed.inc()
            if shard_id != owner:
                self.stats.failovers.inc()
            self.stats.request_latency.observe(time.perf_counter() - started)
            span.update(served_by=shard_id, attempts=attempts)
            return expand_frame_results(frame, rep_designs, rep_hits)

        # Every shard attempt exhausted: degrade to the local pool so
        # the request is slowed down, never lost.  Solving the K frame
        # representatives (with the frame's fingerprints) and fanning
        # out is exactly the pool's own dedupe semantics.
        self.stats.local_fallbacks.inc()
        representatives, rep_fingerprints = subproblems_from_frame(frame)
        rep_designs, rep_hits = self._fallback_pool.solve_designs(
            representatives, rep_fingerprints
        )
        self.stats.request_latency.observe(time.perf_counter() - started)
        span.update(served_by="local", attempts=attempts)
        if last_error is not None:
            span.set("transport_error", str(last_error))
        return expand_frame_results(frame, rep_designs, rep_hits)

    # -- introspection ------------------------------------------------

    def healthz(self, timeout: float = 2.0) -> Dict[str, Any]:
        """Liveness of every shard plus an overall status.

        ``status`` is ``"ok"`` when every shard answers its health
        probe, ``"degraded"`` otherwise (the cluster still serves — via
        failover and the local fallback — while degraded).
        """
        with self._lock:
            processes = dict(self._shards)
        shards: Dict[str, Dict[str, Any]] = {}
        healthy = 0
        for shard_id in sorted(processes):
            process = processes[shard_id]
            if not process.alive:
                shards[shard_id] = {"alive": False, "restarts": process.restarts}
                continue
            try:
                info = process.health(timeout=timeout)
            except ServingError as error:
                shards[shard_id] = {
                    "alive": False,
                    "error": str(error),
                    "restarts": process.restarts,
                }
                continue
            info["alive"] = True
            info["restarts"] = process.restarts
            shards[shard_id] = info
            healthy += 1
        return {
            "status": "ok" if healthy == len(processes) and processes else "degraded",
            "n_shards": len(processes),
            "n_healthy": healthy,
            "shards": shards,
        }

    def stats_snapshot(self, timeout: float = 2.0) -> Dict[str, Any]:
        """Router counters plus best-effort per-shard serving counters.

        Each shard entry carries the shard's own serving/cache counters
        (including ``cache_hit_rate``) plus the parent-side ``pid`` and
        ``restarts``; ``totals`` sums the shard counters so dashboards
        don't have to.
        """
        with self._lock:
            processes = dict(self._shards)
        per_shard: Dict[str, Dict[str, float]] = {}
        totals: Dict[str, float] = {}
        for shard_id in sorted(processes):
            process = processes[shard_id]
            if not process.alive:
                continue
            try:
                snapshot = process.stats_snapshot(timeout=timeout)
            except ServingError:
                continue
            pid = process.pid
            if pid is not None:
                snapshot["pid"] = float(pid)
            snapshot["restarts"] = float(process.restarts)
            per_shard[shard_id] = snapshot
            for key in (
                "requests",
                "batches",
                "unique_solves",
                "cache_hits",
                "cache_misses",
                "cache_entries",
            ):
                if key in snapshot:
                    totals[key] = totals.get(key, 0.0) + snapshot[key]
        lookups = totals.get("cache_hits", 0.0) + totals.get("cache_misses", 0.0)
        totals["cache_hit_rate"] = (
            totals.get("cache_hits", 0.0) / lookups if lookups else 0.0
        )
        return {
            "router": self.stats.snapshot(),
            "shards": per_shard,
            "totals": totals,
        }

    def obs_scrape(
        self,
        include_spans: bool = True,
        drain: bool = True,
        timeout: float = 5.0,
    ) -> ClusterScrape:
        """Federate every live shard's spans and metrics with the router's.

        Each shard answers the ``obs_export`` pipe op with its metric
        reservoirs (cumulative) and span records (drained by default so
        repeated scrapes never duplicate a span); the router contributes
        its own :class:`ClusterStats` registry under the ``"router"``
        source label.  Dead or unresponsive shards are skipped — a
        scrape degrades, it doesn't fail.
        """
        with self._lock:
            processes = dict(self._shards)
        exports: List[ShardExport] = []
        for shard_id in sorted(processes):
            process = processes[shard_id]
            if not process.alive:
                continue
            try:
                payload = process.obs_export(
                    include_spans=include_spans, drain=drain, timeout=timeout
                )
            except ServingError:
                continue
            exports.append(ShardExport.from_payload(payload))
        exports.append(
            local_export("router", self.stats.registry, pid=os.getpid())
        )
        return federate(exports)
