"""One contract-serving shard per worker process.

A shard is the smallest serving unit of the cluster: its own OS process
running the existing single-process stack — a
:class:`~repro.serving.pool.SolverPool` in front of a private
:class:`~repro.serving.cache.ContractCache` — spoken to over a
:mod:`multiprocessing` pipe with a tiny ``(op, payload, meta)``
protocol.  ``meta`` is the out-of-band envelope: today it carries the
W3C-style ``traceparent`` of the router's dispatch span, so the
shard's ``serving.solve_batch`` span joins the caller's trace across
the process boundary, and the ``obs_export`` op ships the shard's
spans and metric reservoirs back for federation
(:mod:`repro.obs.aggregate`).

The parent-side handle (:class:`ShardProcess`) draws one distinction
that the router's failover logic leans on:

* **application errors** (the shard replied ``("error", message)``, e.g.
  an infeasible design) re-raise as plain :class:`ServingError` — the
  request itself is bad, so retrying it on another shard cannot help;
* **transport failures** (pipe timeout, EOF, broken pipe — the shard
  died or wedged) raise :class:`ShardTransportError` and tear the
  connection down, because after an unanswered request the pipe framing
  is unrecoverable — the router fails the request over to a ring
  successor and lets the supervisor restart the shard.

The handle serializes pipe access behind an ``RLock``; every state
mutation happens under it (the serving-tier lock discipline, REPRO013).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass, replace
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...core.decomposition import Subproblem
from ...core.designer import DesignerConfig, DesignResult
from ...errors import ServingError
from ...obs.aggregate import metric_samples
from ...obs.trace import (
    TRACEPARENT_HEADER,
    SpanContext,
    Tracer,
    format_traceparent,
    get_tracer,
    parse_traceparent,
    set_tracer,
)
from ..cache import ContractCache
from ..pool import SolverPool
from ..stats import ServingStats
from .codec import subproblems_from_frame

__all__ = ["ShardProcess", "ShardSpec", "ShardTransportError", "shard_main"]


class ShardTransportError(ServingError):
    """The shard process is unreachable (died, wedged, or pipe broke).

    Distinct from a plain :class:`ServingError` so the router can tell
    "this request is bad" (no failover) from "this shard is bad"
    (failover to a ring successor, supervisor restarts the shard).
    """


@dataclass(frozen=True)
class ShardSpec:
    """Configuration one shard process boots with.

    Attributes:
        shard_id: stable identity on the hash ring.
        mu: the requester's compensation weight.
        config: designer configuration shared by all solves.
        cache_capacity: bound of the shard's private contract cache.
        obs: boot the shard with tracing enabled (the router sets this
            from its own tracer state, so a traced cluster records
            spans in every process from the first request).
    """

    shard_id: str
    mu: float = 1.0
    config: Optional[DesignerConfig] = None
    cache_capacity: int = 4096
    obs: bool = False

    def __post_init__(self) -> None:
        if not self.shard_id:
            raise ServingError("shard_id must be a non-empty string")
        if self.cache_capacity < 1:
            raise ServingError(
                f"cache_capacity must be >= 1, got {self.cache_capacity!r}"
            )


def shard_main(conn: Connection, spec: ShardSpec) -> None:
    """The shard process body: serve ``(op, payload, meta)`` forever.

    Ops: ``solve`` (subproblems + fingerprints in, designs + hit flags
    out), ``health``/``stats`` (snapshots), ``cache_export`` /
    ``cache_import`` (warm handoff), ``obs_export`` (spans + metric
    reservoirs for federation), ``shutdown`` (clean exit) and ``crash``
    (fault injection: die without replying).  Application errors are
    reported as ``("error", message)`` replies; the loop only exits on
    shutdown or a dead pipe.

    When ``meta`` carries a ``traceparent``, the op runs attached to
    that remote context so any spans it opens parent under the caller's
    dispatch span.
    """
    cache = ContractCache(capacity=spec.cache_capacity)
    stats = ServingStats()
    pool = SolverPool(
        n_workers=0,
        mu=spec.mu,
        config=spec.config,
        cache=cache,
        stats=stats,
    )
    # A fresh tracer, not the inherited one: under fork the parent's
    # tracer arrives with its id prefix and counter intact, so reusing
    # it would mint span ids colliding with the router's in merged
    # dumps. A new Tracer draws a new random prefix in this process.
    tracer = Tracer(enabled=True) if spec.obs else Tracer()
    set_tracer(tracer)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op, payload, meta = message
        if op == "shutdown":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        if op == "crash":
            # Fault injection: die mid-protocol, leaving the parent's
            # request unanswered so the transport path gets exercised.
            os._exit(17)
        context = None
        if meta:
            traceparent = meta.get(TRACEPARENT_HEADER)
            if traceparent:
                context = parse_traceparent(traceparent)
        try:
            with tracer.attach(context):
                reply = _dispatch(op, payload, spec, pool, cache, stats)
        except Exception as error:  # noqa: BLE001 - fan app errors to parent
            try:
                conn.send(("error", f"{type(error).__name__}: {error}"))
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            conn.send(("ok", reply))
        except (BrokenPipeError, OSError):
            break
    conn.close()


def _slim(result: DesignResult) -> DesignResult:
    """Drop the per-candidate sweep table before pickling to the pipe.

    ``DesignResult.evaluations`` holds one entry per target piece, each
    carrying its own full contract — O(m^2) floats for an m-interval
    grid, two orders of magnitude heavier than the selected contract it
    annotates.  It exists for designer introspection, not serving, so
    the wire format ships the result with ``evaluations=()`` and keeps
    the pipe cost proportional to the contracts actually served.  The
    shard's own cache keeps the full object.
    """
    if not result.evaluations:
        return result
    return replace(result, evaluations=())


def _dispatch(
    op: str,
    payload: Any,
    spec: ShardSpec,
    pool: SolverPool,
    cache: ContractCache,
    stats: ServingStats,
) -> Any:
    """Execute one shard op (inside the shard process)."""
    if op == "solve":
        subproblems, fingerprints = payload
        started = stats.now()
        designs, cache_hits = pool.solve_designs(subproblems, fingerprints)
        # Each request in a synchronously-solved pipe batch waited the
        # whole op: book that as its latency so shard snapshots carry
        # the p50/p99 the /stats consumers (repro obs top) render.
        # The pool only books counters + batch latency here, so this
        # double-counts nothing.
        elapsed = stats.now() - started
        stats.record_latencies([elapsed] * len(subproblems))
        return ([_slim(design) for design in designs], cache_hits)
    if op == "solve_columnar":
        # Zero-pickle batch path: the frame carries K archetype rows +
        # n request codes.  Solve the K representatives (with the
        # frame's own fingerprints, so cache keys match the object
        # path bit for bit) and reply O(K); the caller fans out.
        frame = payload
        representatives, fingerprints = subproblems_from_frame(frame)
        n_requests = len(frame["codes"])
        started = stats.now()
        designs, cache_hits = pool.solve_designs(
            representatives, fingerprints
        )
        elapsed = stats.now() - started
        # The pool booked the K archetype solves; top the request
        # counter up to the n subjects this batch actually served and
        # book each one's wall wait, mirroring the object "solve" op.
        stats.record_fanout(n_requests - len(representatives))
        stats.record_latencies([elapsed] * n_requests)
        return ([_slim(design) for design in designs], list(cache_hits))
    if op == "health":
        return {
            "shard_id": spec.shard_id,
            "pid": os.getpid(),
            "cache_entries": len(cache),
            "requests": stats.requests,
        }
    if op == "stats":
        snapshot = stats.snapshot()
        snapshot.update(cache.stats.snapshot())
        snapshot["cache_entries"] = float(len(cache))
        return snapshot
    if op == "cache_export":
        entries = []
        for fingerprint in cache.fingerprints():
            design = cache.get_design(fingerprint)
            if design is not None:
                design = _slim(design)
            entries.append((fingerprint, design))
        return entries
    if op == "cache_import":
        imported = 0
        for fingerprint, design in payload:
            if design is not None:
                cache.put_design(fingerprint, design)
                imported += 1
        return imported
    if op == "obs_export":
        options = payload or {}
        return _obs_export(
            spec,
            cache,
            stats,
            include_spans=bool(options.get("spans", True)),
            drain=bool(options.get("drain", True)),
        )
    raise ServingError(f"unknown shard op {op!r}")


def _obs_export(
    spec: ShardSpec,
    cache: ContractCache,
    stats: ServingStats,
    include_spans: bool,
    drain: bool,
) -> Dict[str, Any]:
    """Build one ``obs_export`` reply (inside the shard process).

    Metrics ship with their histogram reservoirs so the router can
    merge them order-independently; they are cumulative, so repeated
    scrapes stay monotonic.  Spans are *drained* by default — each
    record leaves the shard exactly once, so merging successive scrape
    outputs never duplicates a span.
    """
    tracer = get_tracer()
    spans: List[Dict[str, Any]] = []
    if include_spans and tracer.enabled:
        spans = [span.to_record() for span in tracer.spans()]
        if drain:
            tracer.clear()
    metrics = metric_samples(stats.registry)
    metrics.append(
        {
            "kind": "metric",
            "name": "cache.entries",
            "metric_kind": "gauge",
            "value": float(len(cache)),
            "agg": "sum",
        }
    )
    return {
        "shard_id": spec.shard_id,
        "pid": os.getpid(),
        "spans": spans,
        "metrics": metrics,
    }


class ShardProcess:
    """Parent-side handle of one shard process.

    Owns the pipe and serializes access to it: one request/reply cycle
    at a time, every attribute mutation under ``self._lock`` (an RLock,
    so the teardown helper can run while :meth:`request` already holds
    it).

    Args:
        spec: the shard's boot configuration.
        start_method: :mod:`multiprocessing` start method (``None``:
            platform default — ``fork`` on Linux, which boots fastest).
    """

    def __init__(
        self, spec: ShardSpec, start_method: Optional[str] = None
    ) -> None:
        self.spec = spec
        self.restarts = 0
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.RLock()
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._conn: Optional[Connection] = None

    # -- lifecycle ----------------------------------------------------

    @property
    def shard_id(self) -> str:
        """The shard's stable ring identity."""
        return self.spec.shard_id

    @property
    def alive(self) -> bool:
        """Whether the shard process is running and reachable."""
        with self._lock:
            return (
                self._process is not None
                and self._process.is_alive()
                and self._conn is not None
            )

    @property
    def pid(self) -> Optional[int]:
        """The shard process id (``None`` before start / after stop)."""
        with self._lock:
            return self._process.pid if self._process is not None else None

    def start(self) -> None:
        """Boot (or re-boot) the shard process; idempotent while alive."""
        with self._lock:
            if self.alive:
                return
            if self._process is not None:
                self.restarts += 1
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=shard_main,
                args=(child_conn, self.spec),
                name=f"repro-shard-{self.spec.shard_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._process = process
            self._conn = parent_conn

    def stop(self, timeout: float = 5.0) -> None:
        """Shut the shard down cleanly, escalating to SIGKILL on timeout."""
        with self._lock:
            conn, process = self._conn, self._process
            if conn is not None and process is not None and process.is_alive():
                try:
                    conn.send(("shutdown", None, None))
                    if conn.poll(timeout):
                        conn.recv()
                except (EOFError, BrokenPipeError, OSError):
                    pass
            if process is not None:
                process.join(timeout=timeout)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=timeout)
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
            self._conn = None
            self._process = None

    def kill(self) -> None:
        """SIGKILL the shard process (fault injection)."""
        with self._lock:
            if self._process is not None and self._process.is_alive():
                self._process.kill()
                self._process.join(timeout=5.0)
            self._teardown_conn()

    def _teardown_conn(self) -> None:
        """Drop the (desynced or dead) pipe; keeps the process handle."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except OSError:
                    pass
            self._conn = None

    # -- protocol -----------------------------------------------------

    def request(
        self,
        op: str,
        payload: Any = None,
        timeout: Optional[float] = None,
        meta: Optional[Dict[str, str]] = None,
    ) -> Any:
        """One request/reply cycle with the shard.

        Args:
            op: the shard op name.
            payload: op-specific payload.
            timeout: seconds to wait for the reply.
            meta: out-of-band envelope (e.g. the ``traceparent`` of the
                caller's span for cross-process trace propagation).

        Raises:
            ShardTransportError: the shard is down or stopped answering
                (the pipe is torn down — framing is unrecoverable after
                an unanswered request).
            ServingError: the shard replied with an application error.
        """
        with self._lock:
            conn, process = self._conn, self._process
            if conn is None or process is None or not process.is_alive():
                raise ShardTransportError(
                    f"shard {self.spec.shard_id!r} is not running"
                )
            try:
                conn.send((op, payload, meta))
                if timeout is not None and not conn.poll(timeout):
                    self._teardown_conn()
                    raise ShardTransportError(
                        f"shard {self.spec.shard_id!r} did not answer "
                        f"{op!r} within {timeout!r}s"
                    )
                status, reply = conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
                self._teardown_conn()
                raise ShardTransportError(
                    f"shard {self.spec.shard_id!r} connection failed during "
                    f"{op!r}: {error}"
                ) from error
        if status == "error":
            raise ServingError(
                f"shard {self.spec.shard_id!r} failed {op!r}: {reply}"
            )
        return reply

    # -- typed convenience wrappers -----------------------------------

    def solve(
        self,
        subproblems: Sequence[Subproblem],
        fingerprints: Sequence[str],
        timeout: Optional[float] = None,
        trace_context: Optional[SpanContext] = None,
    ) -> Tuple[List[DesignResult], List[bool]]:
        """Solve a batch on this shard; designs + cache-hit flags.

        ``trace_context`` (the caller's span context) travels in the
        pipe envelope so the shard's ``serving.solve_batch`` span
        parents under it.
        """
        meta: Optional[Dict[str, str]] = None
        if trace_context is not None:
            meta = {TRACEPARENT_HEADER: format_traceparent(trace_context)}
        designs, cache_hits = self.request(
            "solve",
            (tuple(subproblems), tuple(fingerprints)),
            timeout=timeout,
            meta=meta,
        )
        return list(designs), list(cache_hits)

    def solve_columnar(
        self,
        frame: Dict[str, Any],
        timeout: Optional[float] = None,
        trace_context: Optional[SpanContext] = None,
    ) -> Tuple[List[DesignResult], List[bool]]:
        """Solve a columnar batch frame on this shard.

        Ships the packed archetype table + codes
        (:func:`~repro.serving.cluster.codec.columnar_frame`) instead of
        O(n) pickled subproblems, and receives the K per-archetype
        designs + hit flags; fan out with
        :func:`~repro.serving.cluster.codec.expand_frame_results`.
        """
        meta: Optional[Dict[str, str]] = None
        if trace_context is not None:
            meta = {TRACEPARENT_HEADER: format_traceparent(trace_context)}
        designs, cache_hits = self.request(
            "solve_columnar", frame, timeout=timeout, meta=meta
        )
        return list(designs), list(cache_hits)

    def health(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """The shard's health snapshot (id, pid, cache size, requests)."""
        return dict(self.request("health", timeout=timeout))

    def stats_snapshot(self, timeout: Optional[float] = None) -> Dict[str, float]:
        """The shard's serving + cache counters as a flat dict."""
        return dict(self.request("stats", timeout=timeout))

    def cache_export(
        self, timeout: Optional[float] = None
    ) -> List[Tuple[str, DesignResult]]:
        """Every cached ``(fingerprint, design)`` pair, LRU order."""
        return list(self.request("cache_export", timeout=timeout))

    def cache_import(
        self,
        entries: Sequence[Tuple[str, DesignResult]],
        timeout: Optional[float] = None,
    ) -> int:
        """Warm the shard's cache with ``entries``; returns count imported."""
        return int(
            self.request("cache_import", tuple(entries), timeout=timeout)
        )

    def obs_export(
        self,
        include_spans: bool = True,
        drain: bool = True,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Scrape the shard's spans and metric reservoirs.

        Metrics are cumulative; spans are drained by default (each span
        record leaves the shard exactly once across repeated scrapes).
        """
        return dict(
            self.request(
                "obs_export",
                {"spans": include_spans, "drain": drain},
                timeout=timeout,
            )
        )
