"""Minimal stdlib HTTP/JSON front end over the shard router.

An :mod:`asyncio`-streams HTTP/1.1 server (no third-party framework)
exposing the cluster to anything that can speak JSON over a socket:

* ``POST /solve`` — one subproblem in, one solved design out;
* ``POST /solve_batch`` — ``{"subproblems": [...]}`` in,
  ``{"designs": [...]}`` out, input order preserved; or the columnar
  variant ``{"columnar": frame}`` in, ``{"columnar": true, "designs":
  [K per-archetype designs], "codes": [...]}`` out — O(K) JSON per hop
  for an n-subject batch (see
  :func:`~repro.serving.cluster.codec.columnar_frame`);
* ``GET /healthz`` — shard liveness (with per-shard restart counts) +
  overall ``ok``/``degraded``;
* ``GET /stats`` — router counters, per-shard serving counters (pid,
  cache hit-rate) and cluster totals;
* ``GET /metrics`` — live Prometheus text exposition federated across
  every shard registry (per-shard ``{shard="..."}`` samples plus
  unlabeled aggregates; see :mod:`repro.obs.aggregate`).

Solve requests honour an incoming W3C ``traceparent`` header: when
tracing is enabled the request span attaches under the remote caller
and the context keeps propagating through the router into the shard
processes, so one trace id follows the request end to end.

Solving is CPU + IPC work, so request handlers push it off the event
loop into the default executor — the loop keeps accepting connections
while the cluster solves.  Responses serialize floats via ``repr``
(:mod:`json`'s default), which round-trips every finite double exactly:
a compensation vector survives the HTTP hop bit-identically.

:class:`HTTPServerThread` hosts the server on a private event loop in a
daemon thread so synchronous callers (the CLI, the load generator,
tests) can stand a cluster endpoint up with two calls.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ...errors import ServingError
from ...obs.trace import TRACEPARENT_HEADER, Tracer, get_tracer, parse_traceparent
from .codec import (
    design_to_json,
    frame_from_json,
    subproblem_from_json,
    subproblems_from_frame,
)
from .router import ShardRouter

__all__ = ["ClusterHTTPServer", "HTTPServerThread", "run_http_in_thread"]

#: Largest accepted request body, in bytes (a defensive bound; a batch
#: of a few thousand subproblems stays well under it).
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ClusterHTTPServer:
    """Asyncio HTTP/1.1 JSON server fronting a :class:`ShardRouter`.

    Args:
        router: the (started) cluster router requests are served from.
        host: bind address.
        port: bind port (``0``: pick a free one; see :attr:`port`).
    """

    def __init__(
        self,
        router: ShardRouter,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.router = router
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ----------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the server is accepting connections."""
        return self._server is not None and self._server.is_serving()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServingError("HTTP server is not running (call start())")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the server is bound to."""
        return (self.host, self.port)

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self._requested_port
            )

    async def stop(self) -> None:
        """Stop accepting connections and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ClusterHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- connection handling ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload = await self._dispatch(method, path, headers, body)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            except asyncio.CancelledError:
                # Shutdown cancels parked keep-alive handlers; the
                # transport is being torn down with the loop anyway.
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not request_line or request_line.strip() == b"":
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, raw_path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ServingError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte bound"
            )
        body = await reader.readexactly(length) if length else b""
        path = raw_path.split("?", 1)[0]
        return method, path, headers, body

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Union[Dict[str, Any], str]]:
        """Route one request to its handler; status + payload out.

        When tracing is enabled the handler runs inside a
        ``cluster.http_request`` span, attached under the caller's
        span when the request carried a ``traceparent`` header.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return await self._dispatch_inner(method, path, body)
        remote = parse_traceparent(headers.get(TRACEPARENT_HEADER))
        with tracer.attach(remote):
            with tracer.span(
                "cluster.http_request", method=method, path=path
            ) as span:
                status, payload = await self._dispatch_inner(method, path, body)
                span.set("status", status)
                return status, payload

    async def _dispatch_inner(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Union[Dict[str, Any], str]]:
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": f"{method} not allowed on {path}"}
                report = self.router.healthz()
                status = 200 if report["status"] == "ok" else 503
                return status, report
            if path == "/stats":
                if method != "GET":
                    return 405, {"error": f"{method} not allowed on {path}"}
                return 200, self.router.stats_snapshot()
            if path == "/metrics":
                if method != "GET":
                    return 405, {"error": f"{method} not allowed on {path}"}
                # Scraping talks to every shard over the pipes — off
                # the event loop, like solving.  Metrics only: span
                # drains stay with the trace-dump path.
                loop = asyncio.get_running_loop()
                scrape = await loop.run_in_executor(
                    None,
                    functools.partial(
                        self.router.obs_scrape, include_spans=False
                    ),
                )
                return 200, scrape.prometheus_text()
            if path == "/solve":
                if method != "POST":
                    return 405, {"error": f"{method} not allowed on {path}"}
                return 200, await self._solve_payload(body, batch=False)
            if path == "/solve_batch":
                if method != "POST":
                    return 405, {"error": f"{method} not allowed on {path}"}
                return 200, await self._solve_payload(body, batch=True)
            return 404, {"error": f"no such endpoint: {path}"}
        except ServingError as error:
            return 400, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 - last-resort 500
            return 500, {"error": f"{type(error).__name__}: {error}"}

    async def _solve_payload(self, body: bytes, batch: bool) -> Dict[str, Any]:
        """Decode, solve off-loop, and encode one solve request."""
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServingError(f"request body is not valid JSON: {error}") from error
        if batch:
            if isinstance(payload, dict) and "columnar" in payload:
                return await self._solve_columnar_payload(payload["columnar"])
            if not isinstance(payload, dict) or not isinstance(
                payload.get("subproblems"), list
            ):
                raise ServingError(
                    'batch requests need a JSON object with a "subproblems" '
                    'list (or a "columnar" frame)'
                )
            raw_items = payload["subproblems"]
        else:
            if not isinstance(payload, dict):
                raise ServingError("solve requests need a JSON subproblem object")
            raw_items = [payload]
        subproblems = [subproblem_from_json(item) for item in raw_items]
        fingerprints = self.router.fingerprints(subproblems)
        loop = asyncio.get_running_loop()
        # Executor threads don't see this task's contextvars, so the
        # request span's context is captured here and handed to the
        # router explicitly — the batch span still parents under it.
        trace_context = (
            Tracer.current_context() if get_tracer().enabled else None
        )
        designs, cache_hits = await loop.run_in_executor(
            None,
            functools.partial(
                self.router.solve_designs,
                subproblems,
                fingerprints,
                trace_context=trace_context,
            ),
        )
        encoded = [
            design_to_json(
                subproblem.subject_id,
                design,
                fingerprint=fingerprint,
                cache_hit=hit,
            )
            for subproblem, design, fingerprint, hit in zip(
                subproblems, designs, fingerprints, cache_hits
            )
        ]
        if batch:
            return {"designs": encoded}
        return encoded[0]

    async def _solve_columnar_payload(self, raw_frame: Any) -> Dict[str, Any]:
        """Solve a columnar batch frame posted to ``/solve_batch``.

        The request carries ``{"columnar": frame}`` — the archetype
        table + per-request codes of
        :func:`~repro.serving.cluster.codec.columnar_frame` in JSON
        form — and the response stays columnar: K per-archetype designs
        plus the echoed codes, so an n-subject batch costs O(K) JSON on
        both hops.  The caller fans results out through the codes.
        """
        frame = frame_from_json(raw_frame)
        representatives, fingerprints = subproblems_from_frame(frame)
        loop = asyncio.get_running_loop()
        trace_context = (
            Tracer.current_context() if get_tracer().enabled else None
        )
        designs, cache_hits = await loop.run_in_executor(
            None,
            functools.partial(
                self.router.solve_designs,
                representatives,
                fingerprints,
                trace_context=trace_context,
            ),
        )
        encoded = [
            design_to_json(
                subproblem.subject_id,
                design,
                fingerprint=fingerprint,
                cache_hit=hit,
            )
            for subproblem, design, fingerprint, hit in zip(
                representatives, designs, fingerprints, cache_hits
            )
        ]
        return {
            "columnar": True,
            "designs": encoded,
            "codes": np.asarray(frame["codes"], dtype=np.int64).tolist(),
        }

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, Any], str],
        keep_alive: bool,
    ) -> None:
        if isinstance(payload, str):
            # Pre-rendered text body (the /metrics Prometheus page).
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = _STATUS_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


class HTTPServerThread:
    """A :class:`ClusterHTTPServer` on a private loop in a daemon thread.

    Synchronous callers (the CLI, the load generator, tests) start the
    thread, read :attr:`address`, and talk plain HTTP to it.

    Args:
        router: the (started) cluster router to serve from.
        host: bind address.
        port: bind port (``0``: pick a free one).
    """

    def __init__(
        self,
        router: ShardRouter,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.router = router
        self.host = host
        self._requested_port = port
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[ClusterHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the server is bound to (after :meth:`start`)."""
        if self._server is None:
            raise ServingError("HTTP server thread is not running")
        return self._server.address

    def start(self, timeout: float = 10.0) -> "HTTPServerThread":
        """Boot the loop thread and wait for the server to bind."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServingError("HTTP server thread failed to start in time")
        if self._startup_error is not None:
            raise ServingError(
                f"HTTP server failed to bind: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join the loop thread."""
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=timeout)
        self._loop = None
        self._thread = None
        self._server = None
        self._ready.clear()

    def __enter__(self) -> "HTTPServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = ClusterHTTPServer(
            self.router, host=self.host, port=self._requested_port
        )
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # noqa: BLE001 - surfaced in start()
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._server = server
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            # Keep-alive handler tasks may still be parked on a read;
            # cancel them so the loop closes without pending work.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()


def run_http_in_thread(
    router: ShardRouter, host: str = "127.0.0.1", port: int = 0
) -> HTTPServerThread:
    """Start a :class:`HTTPServerThread` and return it once bound."""
    return HTTPServerThread(router, host=host, port=port).start()
