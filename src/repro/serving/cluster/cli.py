"""Command-line front end for the sharded serving cluster.

Reused by the main ``repro`` CLI::

    repro bench-serve --shards 4 --requests 800          # closed-loop bench
    repro bench-serve --shards 2 --http --concurrency 8  # over HTTP
    repro bench-serve --shards 2 --kill-shard-at 100 --check

``repro bench-serve`` boots a shard cluster, replays synthetic-archetype
traffic through it with the closed-loop load generator, and prints the
throughput/latency report (p50/p99 via :mod:`repro.obs` histograms).
``--kill-shard-at N`` SIGKILLs one shard mid-run after N completed
requests — the run must still finish with zero failed round-trips
(failover + supervisor restart), which is also what the CI cluster-smoke
job asserts.  Exit status: 0 on success, 1 when any round-trip failed,
``--check`` finds a contract mismatch, or the cluster does not report
a clean ``/healthz`` after recovery.
"""

from __future__ import annotations

import argparse
import pickle
import time
from typing import Any, Dict, List, Optional

from ...core.decomposition import Subproblem, solve_subproblems
from ...errors import ServingError
from ...obs.cli import add_obs_out_argument, obs_session
from ...obs.metrics import MetricsRegistry, get_registry
from ..loadgen import (
    LoadGenerator,
    LoadReport,
    http_target,
    router_target,
    synthetic_request_batches,
)
from ..workload import synthetic_subproblems
from .http import HTTPServerThread
from .router import ClusterStats, ShardRouter

__all__ = ["add_bench_serve_arguments", "run_bench_serve"]


def add_bench_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro bench-serve`` flags to a (sub)parser."""
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard processes in the cluster (default: 2)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=400,
        help="total subproblem requests to replay (default: 400)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="subproblems per round-trip (default: 8)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="closed-loop requester threads (default: 4)",
    )
    parser.add_argument(
        "--n-subjects",
        type=int,
        default=200,
        help="synthetic population size (default: 200)",
    )
    parser.add_argument(
        "--archetypes",
        type=int,
        default=16,
        help="distinct worker archetypes in the population (default: 16)",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=4096,
        help="per-shard contract-cache bound (default: 4096)",
    )
    parser.add_argument(
        "--mu", type=float, default=1.0, help="requester weight (default: 1.0)"
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: 7)"
    )
    parser.add_argument(
        "--http",
        action="store_true",
        help="serve over the HTTP front end instead of in-process routing",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help=(
            "bind port for the HTTP front end (default: 0 = pick a free "
            "one; a fixed port lets CI curl /metrics mid-run)"
        ),
    )
    parser.add_argument(
        "--kill-shard-at",
        type=int,
        default=None,
        metavar="N",
        help=(
            "SIGKILL one shard after N completed requests (fault "
            "injection; the run must still finish with zero failures)"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify cluster contracts are byte-identical to serial solving",
    )
    add_obs_out_argument(parser)


def _registry_for(args: argparse.Namespace) -> MetricsRegistry:
    if getattr(args, "obs_out", None) is not None:
        return get_registry()
    return MetricsRegistry()


def _await_clean_health(router: ShardRouter, deadline_s: float = 15.0) -> bool:
    """Poll ``healthz`` until every shard answers (supervisor recovery)."""
    deadline = time.perf_counter() + deadline_s
    while time.perf_counter() < deadline:
        router.revive_dead_shards()
        if router.healthz()["status"] == "ok":
            return True
        time.sleep(0.1)
    return router.healthz()["status"] == "ok"


def _check_against_serial(
    router: ShardRouter, population: List[Subproblem], mu: float
) -> int:
    """Byte-compare cluster contracts with the serial design path."""
    serial = solve_subproblems(population, mu=mu)
    designs, _ = router.solve_designs(population)
    mismatches = 0
    for subproblem, design in zip(population, designs):
        cluster_bytes = pickle.dumps(design.contract.compensations)
        serial_bytes = pickle.dumps(
            serial[subproblem.subject_id].result.contract.compensations
        )
        if cluster_bytes != serial_bytes:
            print(
                f"CHECK FAILED: {subproblem.subject_id} differs from the "
                "serial path"
            )
            mismatches += 1
    if mismatches == 0:
        print(
            f"check passed: {len(population)} cluster contracts "
            "byte-identical to the serial path"
        )
    return mismatches


def _print_report(report: LoadReport, stats: ClusterStats) -> None:
    print(
        f"served {report.requests} requests in {report.duration_s:.3f}s "
        f"({report.throughput_rps:.1f} req/s, concurrency "
        f"{report.concurrency}, {report.errors} failed)"
    )
    print(
        f"latency p50 {report.p50_s * 1e3:.2f}ms  "
        f"p99 {report.p99_s * 1e3:.2f}ms  "
        f"mean {report.mean_s * 1e3:.2f}ms"
    )
    snapshot = stats.snapshot()
    for name in sorted(snapshot):
        fields = snapshot[name]
        if "value" in fields and fields["value"] > 0:
            print(f"{name:>28}: {int(fields['value'])}")
    for sample in report.error_samples:
        print(f"error: {sample}")


def run_bench_serve(args: argparse.Namespace) -> int:
    """Boot a cluster, replay closed-loop traffic, print the report."""
    # Shard-side records scraped over the pipes land here before the
    # cluster shuts down; obs_session merges them into the dump so
    # --obs-out yields ONE cross-process JSONL file.
    scraped: List[Dict[str, Any]] = []
    with obs_session(
        getattr(args, "obs_out", None), extra_records=lambda: scraped
    ):
        return _run_bench_serve(args, scraped)


def _scrape_into(router: ShardRouter, scraped: List[Dict[str, Any]]) -> None:
    """Collect shard span records into ``scraped`` (best effort)."""
    try:
        scrape = router.obs_scrape(include_spans=True)
    except Exception as error:  # noqa: BLE001 - dump what we have anyway
        print(f"obs scrape failed: {type(error).__name__}: {error}")
        return
    records = scrape.span_records()
    scraped.extend(records)
    print(
        f"scraped {len(records)} shard span record(s) from "
        f"{len(scrape.sources())} source(s)"
    )


def _run_bench_serve(
    args: argparse.Namespace, scraped: Optional[List[Dict[str, Any]]] = None
) -> int:
    if args.requests < 1:
        raise ServingError(f"--requests must be >= 1, got {args.requests!r}")
    population = synthetic_subproblems(
        n_subjects=args.n_subjects,
        n_archetypes=args.archetypes,
        seed=args.seed,
    )
    batches = synthetic_request_batches(
        population,
        n_requests=args.requests,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    registry = _registry_for(args)
    stats = ClusterStats(registry=registry)
    router = ShardRouter(
        n_shards=args.shards,
        mu=args.mu,
        cache_capacity=args.cache_capacity,
        supervise_interval=0.2,
        stats=stats,
    )
    http_thread: Optional[HTTPServerThread] = None
    exit_code = 0
    with router:
        try:
            if args.http:
                http_thread = HTTPServerThread(router, port=args.port).start()
                host, port = http_thread.address
                target = http_target(host, port)
                print(f"cluster HTTP front end on http://{host}:{port}")
            else:
                target = router_target(router)

            checkpoints = None
            if args.kill_shard_at is not None:
                victim = router.shard_ids[0]

                def kill_victim() -> None:
                    print(
                        f"fault injection: killing {victim} after "
                        f"{args.kill_shard_at} requests"
                    )
                    router.kill_shard(victim)

                checkpoints = {args.kill_shard_at: kill_victim}

            generator = LoadGenerator(
                target,
                concurrency=args.concurrency,
                registry=registry,
            )
            report = generator.run(batches, checkpoints=checkpoints)
            _print_report(report, stats)

            if report.errors:
                print(f"FAILED: {report.errors} round-trips failed")
                exit_code = 1
            if args.kill_shard_at is not None:
                if _await_clean_health(router):
                    print("healthz recovered: all shards answering")
                else:
                    print("FAILED: cluster did not recover a clean healthz")
                    exit_code = 1
            if args.check and _check_against_serial(
                router, population, args.mu
            ):
                exit_code = 1
        finally:
            if scraped is not None and getattr(args, "obs_out", None):
                _scrape_into(router, scraped)
            if http_thread is not None:
                http_thread.stop()
    return exit_code
