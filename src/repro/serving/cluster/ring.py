"""Stable consistent-hash ring over shard ids.

The cluster routes every design fingerprint to one shard so that repeated
requests for the same subproblem always land on the same warm
:class:`~repro.serving.cache.ContractCache`.  A plain ``hash(fp) %
n_shards`` would reshuffle *every* fingerprint whenever the shard count
changes; a consistent-hash ring moves only ~``1/N`` of them — the keys
that now belong to the joining (or leaving) shard — so cache affinity
survives resizes and the warm-cache handoff only has to ship that
sliver.

The ring is deterministic and platform-stable: both shard points and
keys hash through SHA-256 (never Python's seeded ``hash``), so two
routers built from the same shard ids agree on every assignment.  The
ring itself is a plain data structure with no locking; the
:class:`~repro.serving.cluster.router.ShardRouter` owns it and guards
mutation with its own lock.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...errors import ServingError

__all__ = ["HashRing"]

#: Virtual nodes per shard.  More replicas smooth the key distribution
#: (and the fraction moved on resize) at the cost of ring size; 64 keeps
#: the imbalance within a few percent for small shard counts.
DEFAULT_REPLICAS = 64


def _hash64(payload: str) -> int:
    """A stable 64-bit ring position for ``payload``."""
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent assignment of string keys to shard ids.

    Args:
        shard_ids: initial shards (order-independent; ids must be
            unique and non-empty).
        replicas: virtual nodes per shard (>= 1).
    """

    def __init__(
        self,
        shard_ids: Sequence[str] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ServingError(f"replicas must be >= 1, got {replicas!r}")
        self.replicas = replicas
        self._shards: List[str] = []
        self._points: List[Tuple[int, str]] = []
        for shard_id in shard_ids:
            self.add(shard_id)

    # -- membership ----------------------------------------------------

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        """Current shards, sorted by id."""
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add(self, shard_id: str) -> None:
        """Join one shard (its ~1/N slice of keys moves onto it)."""
        if not shard_id:
            raise ServingError("shard_id must be a non-empty string")
        if shard_id in self._shards:
            raise ServingError(f"shard {shard_id!r} already on the ring")
        self._shards.append(shard_id)
        for replica in range(self.replicas):
            point = _hash64(f"ring:{shard_id}#{replica}")
            bisect.insort(self._points, (point, shard_id))

    def remove(self, shard_id: str) -> None:
        """Leave one shard (its keys move to their ring successors)."""
        if shard_id not in self._shards:
            raise ServingError(f"shard {shard_id!r} not on the ring")
        self._shards.remove(shard_id)
        self._points = [
            entry for entry in self._points if entry[1] != shard_id
        ]

    # -- assignment ----------------------------------------------------

    def assign(self, key: str) -> str:
        """The shard owning ``key`` (the first point at/after its hash)."""
        return self.preference(key, 1)[0]

    def preference(self, key: str, n: Optional[int] = None) -> List[str]:
        """Distinct shards in ring order from ``key``'s position.

        The first entry is the owner; the rest are the failover order
        the router walks when the owner is down.  ``n`` bounds the list
        (default: every shard).
        """
        if not self._points:
            raise ServingError("cannot assign keys on an empty ring")
        want = len(self._shards) if n is None else max(1, min(n, len(self._shards)))
        start = bisect.bisect_right(self._points, (_hash64(f"key:{key}"), "\uffff"))
        ordered: List[str] = []
        seen: set = set()
        for offset in range(len(self._points)):
            _, shard_id = self._points[(start + offset) % len(self._points)]
            if shard_id not in seen:
                seen.add(shard_id)
                ordered.append(shard_id)
                if len(ordered) >= want:
                    break
        return ordered

    def assignments(self, keys: Iterable[str]) -> Dict[str, str]:
        """``{key: owner}`` for every key (test/inspection helper)."""
        return {key: self.assign(key) for key in keys}
