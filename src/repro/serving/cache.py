"""Bounded LRU cache of solved contract designs.

The marketplace re-posts contracts round after round, and the Section
IV-B decomposition means most rounds re-solve subproblems that are
*identical* to last round's (same class fit, same parameters, same
weight).  The cache keys solved :class:`~repro.core.designer.DesignResult`
objects by their :mod:`~repro.serving.fingerprint` and serves them back,
turning steady-state rounds into dictionary lookups.

Correctness invariant: a cached design must agree with a fresh solve of
the same fingerprint to :mod:`repro.numerics` tolerance (they are in
fact bit-identical — the designer is deterministic — but the invariant
is stated and checked at tolerance so it stays meaningful if the solver
ever gains a non-deterministic backend).  The check runs on every cache
hit when ``REPRO_CHECK_INVARIANTS=1``, mirroring the Lemma 4.2/4.3
runtime layer: tests pay for the re-solve, production paths don't.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..analysis.invariants import InvariantViolation, invariants_enabled
from ..core.designer import DesignResult
from ..errors import ServingError
from ..numerics import close
from ..obs.metrics import Counter

__all__ = [
    "CacheStats",
    "LRUCache",
    "ContractCache",
    "require_results_agree",
    "maybe_verify_cached",
]


@dataclass
class CacheStats:
    """Hit / miss / eviction counters of one :class:`ContractCache`.

    Attributes:
        hits: lookups answered from the cache.
        misses: lookups that fell through to a fresh solve.
        evictions: entries dropped to respect the capacity bound.
        verifications: cache hits re-solved and checked under
            ``REPRO_CHECK_INVARIANTS``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    verifications: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Counters as a flat dict (stats reporting / CLI)."""
        return {
            "cache_hits": float(self.hits),
            "cache_misses": float(self.misses),
            "cache_evictions": float(self.evictions),
            "cache_verifications": float(self.verifications),
            "cache_hit_rate": self.hit_rate,
        }


class LRUCache:
    """A bounded, thread-safe LRU map over hashable keys.

    The one eviction policy of the serving layer, shared by the
    fingerprint-keyed :class:`ContractCache` and the designer's
    candidate-sweep cache
    (:class:`~repro.core.designer.ContractDesigner`).

    Args:
        capacity: maximum number of cached entries; the least recently
            *used* entry is evicted first.
        eviction_counter: optional :class:`~repro.obs.metrics.Counter`
            (typically registered in the shared
            :func:`~repro.obs.metrics.get_registry`) incremented once
            per evicted entry, so eviction pressure shows up next to
            the serving hit/miss metrics in one exporter pass.
    """

    def __init__(
        self,
        capacity: int = 4096,
        eviction_counter: Optional[Counter] = None,
    ) -> None:
        if capacity < 1:
            raise ServingError(f"cache capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.stats = CacheStats()
        self.eviction_counter = eviction_counter
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's recency.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) one entry, evicting LRU overflow."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self.eviction_counter is not None:
                    self.eviction_counter.inc()

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> Tuple[Hashable, ...]:
        """Cached keys from least to most recently used."""
        with self._lock:
            return tuple(self._entries)


class ContractCache(LRUCache):
    """A bounded, thread-safe LRU map ``fingerprint -> DesignResult``.

    Args:
        capacity: maximum number of cached designs; the least recently
            *used* entry is evicted first.  A capacity of a few thousand
            covers every archetype a large marketplace round produces
            (workers share class-level fits, see
            :mod:`repro.serving.fingerprint`).
        eviction_counter: optional shared-registry eviction counter
            (see :class:`LRUCache`).
    """

    def get_design(self, fingerprint: str) -> Optional[DesignResult]:
        """The cached design for ``fingerprint``, or ``None`` on a miss.

        A hit refreshes the entry's recency.
        """
        return self.get(fingerprint)

    def put_design(self, fingerprint: str, result: DesignResult) -> None:
        """Insert (or refresh) one solved design, evicting LRU overflow."""
        self.put(fingerprint, result)

    def fingerprints(self) -> Tuple[str, ...]:
        """Cached fingerprints from least to most recently used."""
        return tuple(str(key) for key in self.keys())


def require_results_agree(
    fingerprint: str, cached: DesignResult, fresh: DesignResult
) -> None:
    """Assert the cache invariant: cached and fresh solves agree.

    Agreement is checked to :mod:`repro.numerics` tolerance on the
    selected target piece, the posted compensation vector and the
    achieved requester utility — the quantities every downstream
    consumer (simulation payout, Fig. 8 reporting, Theorem 4.1
    certificates) reads off a design.

    Raises:
        InvariantViolation: if any compared quantity disagrees.
    """
    if cached.k_opt != fresh.k_opt:
        raise InvariantViolation(
            f"cache invariant violated for {fingerprint}: cached k_opt "
            f"{cached.k_opt!r} != fresh k_opt {fresh.k_opt!r}"
        )
    cached_pay = cached.contract.compensations
    fresh_pay = fresh.contract.compensations
    if len(cached_pay) != len(fresh_pay):
        raise InvariantViolation(
            f"cache invariant violated for {fingerprint}: compensation "
            f"vectors have lengths {len(cached_pay)} != {len(fresh_pay)}"
        )
    for index, (a, b) in enumerate(zip(cached_pay, fresh_pay)):
        if not close(a, b):
            raise InvariantViolation(
                f"cache invariant violated for {fingerprint}: compensation "
                f"x_{index} differs (cached {a!r}, fresh {b!r})"
            )
    if not close(cached.requester_utility, fresh.requester_utility):
        raise InvariantViolation(
            f"cache invariant violated for {fingerprint}: requester utility "
            f"differs (cached {cached.requester_utility!r}, fresh "
            f"{fresh.requester_utility!r})"
        )


def maybe_verify_cached(
    fingerprint: str,
    cached: DesignResult,
    fresh_solver: Callable[[], DesignResult],
    stats: Optional[CacheStats] = None,
) -> None:
    """Re-solve and verify a cache hit when runtime invariants are on.

    No-op (one environment lookup) unless ``REPRO_CHECK_INVARIANTS`` is
    enabled; enabled, it pays for a fresh solve per hit and asserts
    :func:`require_results_agree` — the serving analogue of the
    ``@check_bounds`` runtime layer.
    """
    if not invariants_enabled():
        return
    fresh = fresh_solver()
    require_results_agree(fingerprint, cached, fresh)
    if stats is not None:
        stats.verifications += 1
