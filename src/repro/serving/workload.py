"""Synthetic serving workloads: large populations of design subproblems.

The trace-driven population builder (:mod:`repro.workers.population`)
materializes a full review marketplace — ideal for the paper's
experiments, heavyweight for serving benchmarks and smoke tests.  This
module generates populations of :class:`~repro.core.decomposition.Subproblem`
directly, with the structure real marketplaces exhibit: workers cluster
into a limited number of *archetypes* (the Section IV-B class-level fits
mean many workers share one effort function, parameter set and weight
bucket), so a round of N requests contains far fewer than N unique
subproblems.  That clustering is exactly what the serving layer's
fingerprint dedup and contract cache exploit.

All sampling is driven by an explicitly seeded generator, so a workload
is a pure function of its arguments — the benchmarks' byte-identical
comparisons depend on that.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.decomposition import Subproblem
from ..core.effort import QuadraticEffort
from ..errors import ServingError
from ..types import WorkerParameters

__all__ = ["synthetic_subproblems"]


def synthetic_subproblems(
    n_subjects: int,
    n_archetypes: int = 16,
    seed: int = 0,
    malicious_fraction: float = 0.25,
    rng: Optional[np.random.Generator] = None,
) -> List[Subproblem]:
    """Generate a synthetic subproblem population for serving workloads.

    Args:
        n_subjects: total subjects (workers) in the population.
        n_archetypes: distinct worker archetypes; subjects are drawn
            from these uniformly, so expect roughly
            ``n_subjects / n_archetypes`` subjects per unique
            fingerprint.  Set ``n_archetypes == n_subjects`` for a fully
            heterogeneous population (every solve unique).
        seed: seed for the archetype and assignment draws.
        malicious_fraction: probability an archetype is malicious
            (``omega > 0``).
        rng: optional pre-seeded generator (overrides ``seed``).

    Returns:
        ``n_subjects`` subproblems with unique subject ids, in a
        deterministic order.
    """
    if n_subjects < 1:
        raise ServingError(f"n_subjects must be >= 1, got {n_subjects!r}")
    if not 1 <= n_archetypes <= n_subjects:
        raise ServingError(
            f"n_archetypes must lie in [1, n_subjects], got {n_archetypes!r}"
        )
    if not 0.0 <= malicious_fraction <= 1.0:
        raise ServingError(
            f"malicious_fraction must lie in [0, 1], got {malicious_fraction!r}"
        )
    generator = rng if rng is not None else np.random.default_rng(seed)

    archetypes: List[dict] = []
    for _ in range(n_archetypes):
        r2 = -float(generator.uniform(0.3, 1.2))
        r1 = float(generator.uniform(6.0, 14.0))
        r0 = float(generator.uniform(0.0, 2.0))
        beta = float(generator.uniform(0.8, 1.5))
        malicious = bool(generator.random() < malicious_fraction)
        params = (
            WorkerParameters.malicious(
                beta=beta, omega=float(generator.uniform(0.2, 0.5))
            )
            if malicious
            else WorkerParameters.honest(beta=beta)
        )
        psi = QuadraticEffort(r2=r2, r1=r1, r0=r0)
        archetypes.append(
            {
                "effort_function": psi,
                "params": params,
                "feedback_weight": float(generator.uniform(0.5, 2.0)),
                "max_effort": 0.8 * psi.max_increasing_effort,
            }
        )

    # Every archetype appears at least once; the rest of the population
    # is assigned uniformly at random (deterministic under the seed).
    assignments = list(range(n_archetypes))
    assignments.extend(
        int(index)
        for index in generator.integers(
            0, n_archetypes, size=n_subjects - n_archetypes
        )
    )

    subproblems: List[Subproblem] = []
    for subject_index, archetype_index in enumerate(assignments):
        archetype = archetypes[archetype_index]
        subproblems.append(
            Subproblem(
                subject_id=f"w{subject_index:05d}",
                effort_function=archetype["effort_function"],
                params=archetype["params"],
                feedback_weight=archetype["feedback_weight"],
                max_effort=archetype["max_effort"],
            )
        )
    return subproblems
