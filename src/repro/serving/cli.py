"""Command-line front end for the contract-serving layer.

Reused by the main ``repro`` CLI::

    repro solve --n-subjects 200 --parallel 2       # one pooled solve
    repro solve --rounds 5 --check                  # cached rounds + audit
    repro serve --rounds 3 --n-subjects 200         # asyncio marketplace demo

``repro solve`` drives the :class:`~repro.serving.pool.SolverPool`
synchronously (this is also the CI serving smoke test); ``repro serve``
drives the :class:`~repro.serving.server.ContractServer` end to end.
Exit status: 0 on success, 1 when ``--check`` finds a mismatch.
"""

from __future__ import annotations

import argparse
import asyncio
import pickle
import time
from typing import List

from ..core.decomposition import Subproblem, decomposition_report, solve_subproblems
from ..errors import ServingError
from ..obs.cli import add_obs_out_argument, obs_session
from ..obs.metrics import get_registry
from .cache import ContractCache
from .pool import SolverPool
from .server import ContractServer
from .stats import ServingStats
from .workload import synthetic_subproblems

__all__ = ["add_solve_arguments", "add_serve_arguments", "run_solve", "run_serve"]


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n-subjects",
        type=int,
        default=200,
        help="synthetic population size (default: 200)",
    )
    parser.add_argument(
        "--archetypes",
        type=int,
        default=16,
        help="distinct worker archetypes in the population (default: 16)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="solver-pool processes; 0 = in-process solving (default: 0)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="marketplace rounds to serve (default: 1)",
    )
    parser.add_argument(
        "--mu", type=float, default=1.0, help="requester weight (default: 1.0)"
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: 7)"
    )
    add_obs_out_argument(parser)


def add_solve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro solve`` flags to a (sub)parser."""
    _add_workload_arguments(parser)
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-task wall-clock budget in seconds (default: none)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify pooled/cached designs are byte-identical to serial",
    )


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro serve`` flags to a (sub)parser."""
    _add_workload_arguments(parser)
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="largest request batch the server fulfils at once (default: 64)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="request-queue bound before backpressure (default: 1024)",
    )


def _workload(args: argparse.Namespace) -> List[Subproblem]:
    if args.rounds < 1:
        raise ServingError(f"--rounds must be >= 1, got {args.rounds!r}")
    return synthetic_subproblems(
        n_subjects=args.n_subjects,
        n_archetypes=args.archetypes,
        seed=args.seed,
    )


def _stats_for(args: argparse.Namespace) -> ServingStats:
    """Serving stats for one CLI command.

    With ``--obs-out`` the counters publish into the process-global
    :mod:`repro.obs` registry, so the dump carries serving metrics next
    to the spans; without it they stay private to the command.
    """
    if getattr(args, "obs_out", None) is not None:
        return ServingStats(registry=get_registry())
    return ServingStats()


def run_solve(args: argparse.Namespace) -> int:
    """Solve a synthetic population through the pool; print a report."""
    with obs_session(getattr(args, "obs_out", None)):
        return _run_solve(args)


def _run_solve(args: argparse.Namespace) -> int:
    subproblems = _workload(args)
    stats = _stats_for(args)
    cache = ContractCache()
    with SolverPool(
        n_workers=args.parallel,
        mu=args.mu,
        timeout=args.timeout,
        cache=cache,
        stats=stats,
    ) as pool:
        started = time.perf_counter()
        for _ in range(args.rounds):
            solutions = pool.solve(subproblems)
        elapsed = time.perf_counter() - started

    report = decomposition_report(solutions, mu=args.mu)
    print(f"solved {len(subproblems)} subjects x {args.rounds} round(s) "
          f"in {elapsed:.3f}s ({args.rounds * len(subproblems) / elapsed:.1f} designs/s)")
    for key, value in report.items():
        print(f"{key:>20}: {value:.4f}")
    print(stats.format())

    if args.check:
        serial = solve_subproblems(subproblems, mu=args.mu)
        for subject_id, solution in solutions.items():
            pooled_bytes = pickle.dumps(solution.result.contract.compensations)
            serial_bytes = pickle.dumps(
                serial[subject_id].result.contract.compensations
            )
            if pooled_bytes != serial_bytes:
                print(f"CHECK FAILED: {subject_id} differs from the serial path")
                return 1
        print(f"check passed: {len(solutions)} pooled/cached contracts "
              "byte-identical to the serial path")
    return 0


async def _serve_demo(args: argparse.Namespace) -> ServingStats:
    subproblems = _workload(args)
    async with ContractServer(
        mu=args.mu,
        n_workers=args.parallel,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        stats=_stats_for(args),
    ) as server:
        for round_index in range(args.rounds):
            solutions = await server.solve_population(subproblems)
            report = decomposition_report(solutions, mu=args.mu)
            print(
                f"round {round_index}: utility "
                f"{report['total_utility']:.4f}, hired "
                f"{int(report['n_hired'])}/{int(report['n_subjects'])}"
            )
        return server.stats


def run_serve(args: argparse.Namespace) -> int:
    """Serve synthetic rounds through the asyncio marketplace front-end."""
    with obs_session(getattr(args, "obs_out", None)):
        stats = asyncio.run(_serve_demo(args))
        print(stats.format())
    return 0
