"""Closed-loop load harness for the contract-serving tier.

A closed-loop generator models ``concurrency`` requesters that each
keep exactly one request in flight: send a batch, wait for the
contracts, send the next.  Offered load therefore adapts to what the
target sustains (the honest way to measure a serving tier — an
open-loop generator would just grow a queue and report its own
backlog), and every round-trip latency lands in a
:class:`repro.obs.metrics.Histogram`, so p50/p99 come from
:meth:`~repro.obs.metrics.Histogram.quantile` rather than eyeballs.

Targets are plain callables taking a batch of subproblems, with
adapters for the three serving stacks: a :class:`SolverPool` or
:class:`~repro.serving.cluster.router.ShardRouter` in-process, or a
cluster HTTP endpoint over the wire (one keep-alive connection per
worker thread).

Traffic replays the synthetic-archetype population of
:func:`repro.serving.workload.synthetic_subproblems`: requests re-ask
for the same subjects round after round, which is exactly the
steady-state marketplace pattern the fingerprint cache exists for.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.decomposition import Subproblem
from ..errors import ServingError
from ..obs.metrics import Counter, Histogram, MetricsRegistry
from ..obs.trace import TRACEPARENT_HEADER, Tracer, format_traceparent, get_tracer
from .cluster.codec import subproblem_to_json
from .cluster.router import ShardRouter
from .pool import SolverPool

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "http_target",
    "pool_target",
    "router_target",
    "synthetic_request_batches",
]

#: A load-generator target: takes one batch of subproblems, returns
#: anything, raises on failure.
Target = Callable[[Sequence[Subproblem]], Any]


@dataclass(frozen=True)
class LoadReport:
    """What one closed-loop run measured.

    Attributes:
        requests: subproblem requests completed successfully.
        batches: round-trips completed successfully.
        errors: round-trips that raised.
        concurrency: closed-loop worker threads used.
        duration_s: wall-clock seconds of the whole run.
        throughput_rps: successful requests per second.
        p50_s: median round-trip latency in seconds.
        p99_s: 99th-percentile round-trip latency in seconds.
        mean_s: mean round-trip latency in seconds.
        error_samples: up to ten error messages, in occurrence order.
    """

    requests: int
    batches: int
    errors: int
    concurrency: int
    duration_s: float
    throughput_rps: float
    p50_s: float
    p99_s: float
    mean_s: float
    error_samples: Tuple[str, ...] = ()

    def snapshot(self) -> Dict[str, float]:
        """The numeric fields as a flat dict (benchmark artifacts)."""
        return {
            "requests": float(self.requests),
            "batches": float(self.batches),
            "errors": float(self.errors),
            "concurrency": float(self.concurrency),
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "mean_s": self.mean_s,
        }


def synthetic_request_batches(
    population: Sequence[Subproblem],
    n_requests: int,
    batch_size: int = 8,
    seed: int = 0,
) -> List[List[Subproblem]]:
    """Replay traffic over a population: request batches with repeats.

    Subjects are drawn uniformly (with replacement) from ``population``
    and grouped into batches, so the request stream re-asks for the
    same archetypes over and over — the steady-state pattern that makes
    cache affinity matter.  Deterministic under ``seed``.
    """
    if not population:
        raise ServingError("population must be non-empty")
    if n_requests < 1:
        raise ServingError(f"n_requests must be >= 1, got {n_requests!r}")
    if batch_size < 1:
        raise ServingError(f"batch_size must be >= 1, got {batch_size!r}")
    generator = np.random.default_rng(seed)
    draws = generator.integers(0, len(population), size=n_requests)
    batches: List[List[Subproblem]] = []
    for start in range(0, n_requests, batch_size):
        batches.append(
            [population[int(index)] for index in draws[start : start + batch_size]]
        )
    return batches


class LoadGenerator:
    """Closed-loop load generator over any serving target.

    Args:
        target: callable served one batch per in-flight request.
        concurrency: closed-loop workers (each keeps one request in
            flight).
        registry: metrics registry the latency histogram and counters
            register into (private when ``None``; pass
            :func:`repro.obs.metrics.get_registry` to publish).
        namespace: metric-name prefix.
        max_samples: latency-histogram reservoir bound.
    """

    def __init__(
        self,
        target: Target,
        concurrency: int = 4,
        registry: Optional[MetricsRegistry] = None,
        namespace: str = "loadgen",
        max_samples: int = 65536,
    ) -> None:
        if concurrency < 1:
            raise ServingError(f"concurrency must be >= 1, got {concurrency!r}")
        self.target = target
        self.concurrency = concurrency
        self.registry = registry if registry is not None else MetricsRegistry()
        prefix = f"{namespace}." if namespace else ""
        self.latency: Histogram = self.registry.histogram(
            prefix + "request_latency_s",
            "closed-loop round-trip latency",
            max_samples=max_samples,
        )
        self.completed: Counter = self.registry.counter(
            prefix + "requests", "requests completed successfully"
        )
        self.failed: Counter = self.registry.counter(
            prefix + "errors", "round-trips that raised"
        )

    def run(
        self,
        batches: Sequence[Sequence[Subproblem]],
        checkpoints: Optional[Dict[int, Callable[[], None]]] = None,
    ) -> LoadReport:
        """Drive every batch through the target; block until done.

        Args:
            batches: the request stream (each entry is one round-trip).
            checkpoints: ``{completed_request_count: callback}`` fired
                once, from a worker thread, when the completed-request
                count first reaches the key — how the fault-injection
                harness kills a shard mid-run at a deterministic point.

        Returns:
            The run's :class:`LoadReport` (latency quantiles are over
            this run's successful round-trips only).
        """
        if not batches:
            raise ServingError("batches must be non-empty")
        pending_hooks = sorted((checkpoints or {}).items())
        state_lock = threading.Lock()
        state = {"next": 0, "requests": 0, "batches": 0}
        errors: List[str] = []
        latencies_before = self.latency.count

        def worker() -> None:
            while True:
                with state_lock:
                    index = state["next"]
                    if index >= len(batches):
                        return
                    state["next"] = index + 1
                batch = batches[index]
                begun = time.perf_counter()
                try:
                    # Each round-trip gets a client-side root span when
                    # tracing is on; HTTP targets forward its context in
                    # the traceparent header, making the loadgen the
                    # root of the end-to-end cross-process trace.
                    tracer = get_tracer()
                    if tracer.enabled:
                        with tracer.span(
                            "loadgen.request", batch=index, n_requests=len(batch)
                        ):
                            self.target(batch)
                    else:
                        self.target(batch)
                except Exception as error:  # noqa: BLE001 - tally and continue
                    self.failed.inc()
                    with state_lock:
                        if len(errors) < 10:
                            errors.append(
                                f"batch {index}: {type(error).__name__}: {error}"
                            )
                        else:
                            errors.append("")
                    continue
                self.latency.observe(time.perf_counter() - begun)
                self.completed.inc(len(batch))
                fired: List[Callable[[], None]] = []
                with state_lock:
                    state["requests"] += len(batch)
                    state["batches"] += 1
                    while pending_hooks and state["requests"] >= pending_hooks[0][0]:
                        fired.append(pending_hooks.pop(0)[1])
                for callback in fired:
                    callback()

        n_workers = min(self.concurrency, len(batches))
        started = time.perf_counter()
        threads = [
            threading.Thread(
                target=worker, name=f"repro-loadgen-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - started

        observed = self.latency.count > latencies_before
        return LoadReport(
            requests=state["requests"],
            batches=state["batches"],
            errors=len(errors),
            concurrency=n_workers,
            duration_s=duration,
            throughput_rps=state["requests"] / duration if duration > 0 else 0.0,
            p50_s=self.latency.quantile(0.5) if observed else 0.0,
            p99_s=self.latency.quantile(0.99) if observed else 0.0,
            mean_s=self.latency.mean if observed else 0.0,
            error_samples=tuple(message for message in errors if message),
        )


# -- target adapters ------------------------------------------------------


def pool_target(pool: SolverPool) -> Target:
    """A target solving batches on a :class:`SolverPool` in-process."""

    def send(batch: Sequence[Subproblem]) -> Any:
        return pool.solve_designs(batch)

    return send


def router_target(router: ShardRouter) -> Target:
    """A target routing batches through a :class:`ShardRouter`."""

    def send(batch: Sequence[Subproblem]) -> Any:
        return router.solve_designs(batch)

    return send


def http_target(host: str, port: int, timeout: float = 30.0) -> Target:
    """A target POSTing batches to a cluster HTTP endpoint.

    Each worker thread keeps one keep-alive connection (thread-local);
    a transport failure drops the connection so the next round-trip
    reconnects.
    """
    local = threading.local()

    def send(batch: Sequence[Subproblem]) -> Any:
        conn: Optional[http.client.HTTPConnection] = getattr(local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(host, port, timeout=timeout)
            local.conn = conn
        body = json.dumps(
            {"subproblems": [subproblem_to_json(item) for item in batch]}
        )
        headers = {"Content-Type": "application/json"}
        if get_tracer().enabled:
            context = Tracer.current_context()
            if context is not None:
                headers[TRACEPARENT_HEADER] = format_traceparent(context)
        try:
            conn.request(
                "POST",
                "/solve_batch",
                body=body,
                headers=headers,
            )
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        except (http.client.HTTPException, OSError, json.JSONDecodeError) as error:
            local.conn = None
            try:
                conn.close()
            except OSError:
                pass
            raise ServingError(f"HTTP round-trip failed: {error}") from error
        if response.status != 200:
            detail = payload.get("error", payload) if isinstance(payload, dict) else payload
            raise ServingError(f"HTTP {response.status}: {detail}")
        return payload["designs"]

    return send
