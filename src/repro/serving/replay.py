"""Replay verification: cached contracts must match recomputed ones.

Round records written by the marketplace engine carry each subject's
design fingerprint and whether its contract came from the contract
cache (:class:`~repro.simulation.ledger.SubjectRoundOutcome`).  Given
the population's subproblems, a replay can therefore recompute every
design from scratch and check that

1. the recorded fingerprint matches the recomputed one (the subproblem
   the round *says* it solved is the one the population implies), and
2. the recorded compensation equals, to :mod:`repro.numerics`
   tolerance, what the freshly designed contract pays for the recorded
   feedback — i.e. a cached contract paid exactly what a fresh solve
   would have paid.

This closes the loop on the serving layer's cache invariant at the
*ledger* level: not just "cache equals solver" in-memory, but "what the
marketplace actually disbursed is reproducible".
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

from ..core.decomposition import Subproblem
from ..core.designer import ContractDesigner, DesignerConfig, DesignResult
from ..errors import ServingError
from ..numerics import close
from ..simulation.ledger import RoundRecord, SimulationLedger
from .fingerprint import subproblem_fingerprint

__all__ = ["verify_round", "verify_ledger"]


def _design_fresh(
    designer: ContractDesigner, subproblem: Subproblem
) -> DesignResult:
    return designer.design(
        effort_function=subproblem.effort_function,
        params=subproblem.params,
        feedback_weight=subproblem.feedback_weight,
        max_effort=subproblem.max_effort,
    )


def verify_round(
    record: RoundRecord,
    subproblems: Sequence[Subproblem],
    mu: float = 1.0,
    config: Optional[DesignerConfig] = None,
) -> int:
    """Verify one round's fingerprinted outcomes against fresh solves.

    Only outcomes that carry a fingerprint (i.e. were produced through
    the serving layer) and were not excluded are checked; rounds from
    the plain serial path verify vacuously.

    Args:
        record: the round record to audit.
        subproblems: the population's subproblems (the replay's ground
            truth for what each subject's design inputs were).
        mu: the requester weight the original run used.
        config: the designer configuration the original run used.

    Returns:
        The number of outcomes verified.

    Raises:
        ServingError: on a fingerprint mismatch or a payout that a fresh
            solve cannot reproduce.
    """
    _check_round_provenance(record)
    by_id: Dict[str, Subproblem] = {
        subproblem.subject_id: subproblem for subproblem in subproblems
    }
    designer = ContractDesigner(mu=mu, config=config)
    verified = 0
    for subject_id, outcome in record.outcomes.items():
        if outcome.fingerprint is None or outcome.excluded:
            continue
        subproblem = by_id.get(subject_id)
        if subproblem is None:
            raise ServingError(
                f"round {record.round_index}: subject {subject_id!r} has a "
                "fingerprinted outcome but no subproblem in the population"
            )
        expected = subproblem_fingerprint(subproblem, mu=mu, config=config)
        if outcome.fingerprint != expected:
            raise ServingError(
                f"round {record.round_index}: subject {subject_id!r} recorded "
                f"fingerprint {outcome.fingerprint} but the population "
                f"implies {expected}"
            )
        result = _design_fresh(designer, subproblem)
        recomputed_pay = result.contract.pay_for_feedback(outcome.feedback)
        if not close(recomputed_pay, outcome.compensation):
            raise ServingError(
                f"round {record.round_index}: subject {subject_id!r} was paid "
                f"{outcome.compensation!r} but a fresh solve pays "
                f"{recomputed_pay!r} for feedback {outcome.feedback!r}"
            )
        verified += 1
    return verified


def _check_round_provenance(record: RoundRecord) -> None:
    """Assert the observability fields of a round record round-trip.

    The marketplace engine stamps each round with its redesign cost
    (``design_ms``) and, when tracing was on, the ``simulation.round``
    span id (:class:`~repro.simulation.ledger.RoundRecord`).  A replay
    audits both for well-formedness: a ledger that went through any
    serialization boundary must come back with a finite non-negative
    cost and a non-empty span id — never the disabled-tracer sentinel
    ``""`` that :class:`~repro.obs.trace.NullSpan` carries.

    Raises:
        ServingError: on a malformed ``design_ms`` or ``span_id``.
    """
    if record.design_ms is not None:
        if not math.isfinite(record.design_ms) or record.design_ms < 0.0:
            raise ServingError(
                f"round {record.round_index}: design_ms must be a finite "
                f"non-negative number, got {record.design_ms!r}"
            )
    if record.span_id is not None:
        if not isinstance(record.span_id, str) or not record.span_id:
            raise ServingError(
                f"round {record.round_index}: span_id must be a non-empty "
                f"string or None, got {record.span_id!r}"
            )


def verify_ledger(
    ledger: SimulationLedger,
    subproblems: Sequence[Subproblem],
    mu: float = 1.0,
    config: Optional[DesignerConfig] = None,
    rounds: Optional[Iterable[int]] = None,
) -> int:
    """Verify every fingerprinted outcome across a whole ledger.

    Note:
        The payout check assumes same-round settlement; ledgers produced
        with ``lagged_payment=True`` pair round ``t``'s pay with round
        ``t-1``'s feedback and cannot be audited per-outcome this way.

    Args:
        ledger: the simulation ledger to audit.
        subproblems: the population's subproblems.
        mu: the requester weight the run used.
        config: the designer configuration the run used.
        rounds: optional subset of round indices to verify.

    Returns:
        Total outcomes verified across the selected rounds.
    """
    selected = set(rounds) if rounds is not None else None
    verified = 0
    for record in ledger.records:
        if selected is not None and record.round_index not in selected:
            continue
        verified += verify_round(record, subproblems, mu=mu, config=config)
    return verified
