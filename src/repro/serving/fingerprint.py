"""Canonical, hash-stable fingerprints of contract-design subproblems.

A :class:`~repro.core.designer.DesignResult` is a pure function of the
inputs the Section IV-C algorithm consumes: the effort-function
coefficients ``(r2, r1, r0)``, the worker parameters ``(beta, omega)``
and class, the discretization ``(m, delta)``, the designer's
``base_pay`` / ``min_utility`` knobs, the requester weight ``mu`` and
the Eq. (5) feedback weight ``w_i``.  Two subproblems agreeing on all of
these produce *bit-identical* designs, no matter which worker or round
they belong to — which is what makes contract serving cacheable and
batchable.

Fingerprints are therefore computed over exactly that tuple, canonically
encoded (floats via ``float.hex()`` so the encoding is lossless and
platform-stable, enum members via their value) and hashed with SHA-256.
The subject id and community membership are deliberately *excluded*:
identity never enters the design math, and excluding it is what lets a
marketplace with thousands of workers sharing class-level fits collapse
to a handful of unique solves per round.

The fingerprint string is versioned (``cd1:``); bump the prefix whenever
the design algorithm or the encoded field set changes, so stale caches
can never serve results computed under different semantics.
"""

from __future__ import annotations

import hashlib
import math
from typing import TYPE_CHECKING, Optional, Tuple, Union

from ..core.effort import QuadraticEffort
from ..errors import ServingError
from ..types import DiscretizationGrid, WorkerParameters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..core.decomposition import Subproblem
    from ..core.designer import DesignerConfig

__all__ = [
    "FINGERPRINT_VERSION",
    "canonical_float",
    "design_fingerprint",
    "subproblem_fingerprint",
]

#: Version tag baked into every fingerprint.  Bump on any change to the
#: design algorithm or to the set/encoding of fingerprinted fields.
FINGERPRINT_VERSION = "cd1"

#: Hex digits kept from the SHA-256 digest.  64 bits of fingerprint make
#: collisions vanishingly unlikely at marketplace scale (birthday bound
#: ~2^32 distinct subproblems) while keeping ledger records compact.
_DIGEST_CHARS = 16


def canonical_float(value: Union[float, int]) -> str:
    """Lossless, platform-stable text encoding of one numeric field.

    ``float.hex()`` round-trips every finite double exactly, so two
    processes (or two machines) encoding the same value always produce
    the same fingerprint — unlike ``repr`` formatting, which has changed
    across Python versions.
    """
    number = float(value)
    if math.isnan(number):
        raise ServingError("cannot fingerprint a NaN design parameter")
    return number.hex()


def _encode_fields(fields: Tuple[str, ...]) -> str:
    payload = "|".join(fields)
    digest = hashlib.sha256(payload.encode("ascii")).hexdigest()
    return f"{FINGERPRINT_VERSION}:{digest[:_DIGEST_CHARS]}"


def design_fingerprint(
    effort_function: QuadraticEffort,
    params: WorkerParameters,
    grid: DiscretizationGrid,
    *,
    base_pay: float = 0.0,
    min_utility: float = 0.0,
    mu: float = 1.0,
    feedback_weight: float = 1.0,
) -> str:
    """Fingerprint one fully-resolved design instance.

    Args:
        effort_function: the subject's fitted ``psi``.
        params: the subject's ``(beta, omega)`` utility parameters.
        grid: the *resolved* effort discretization the designer will use
            (fingerprinting the resolved ``(m, delta)`` rather than the
            config that produced it makes equal grids reached through
            different ``coverage``/``max_effort`` combinations share an
            entry).
        base_pay: the designer's zero-effort pay ``x_0``.
        min_utility: the designer's hire threshold.
        mu: the requester's compensation weight.
        feedback_weight: the Eq. (5) weight ``w_i``.

    Returns:
        A versioned, hash-stable fingerprint string, e.g.
        ``"cd1:9f2c4e01ab37d855"``.
    """
    r2, r1, r0 = effort_function.coefficients()
    fields = (
        canonical_float(r2),
        canonical_float(r1),
        canonical_float(r0),
        canonical_float(params.beta),
        canonical_float(params.omega),
        params.worker_type.value,
        str(grid.n_intervals),
        canonical_float(grid.delta),
        canonical_float(base_pay),
        canonical_float(min_utility),
        canonical_float(mu),
        canonical_float(feedback_weight),
    )
    return _encode_fields(fields)


def subproblem_fingerprint(
    subproblem: "Subproblem",
    mu: float = 1.0,
    config: Optional["DesignerConfig"] = None,
) -> str:
    """Fingerprint a decomposed subproblem under a designer configuration.

    Resolves the effort grid exactly the way
    :meth:`~repro.core.designer.DesignerConfig.grid_for` would (including
    the subproblem's own ``max_effort`` cap) and delegates to
    :func:`design_fingerprint`, so the fingerprint keys precisely the
    design the serving layer would compute.
    """
    from ..core.designer import DesignerConfig

    resolved = config if config is not None else DesignerConfig()
    grid = resolved.grid_for(subproblem.effort_function, max_effort=subproblem.max_effort)
    return design_fingerprint(
        subproblem.effort_function,
        subproblem.params,
        grid,
        base_pay=resolved.base_pay,
        min_utility=resolved.min_utility,
        mu=mu,
        feedback_weight=subproblem.feedback_weight,
    )
