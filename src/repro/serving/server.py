"""Asyncio in-process marketplace front-end for contract requests.

The :class:`ContractServer` models the requester side of a high-traffic
marketplace: workers (or the simulation engine on their behalf) submit
contract requests concurrently; the server

1. **applies backpressure** — requests enter a bounded queue, and
   ``submit`` suspends the caller once ``max_pending`` requests are in
   flight (overload slows producers down instead of growing memory);
2. **batches** — a batcher task drains the queue up to ``max_batch``
   requests or ``batch_window`` seconds, whichever comes first;
3. **dedups and solves** — each batch is grouped by subproblem
   fingerprint and resolved through the shared
   :class:`~repro.serving.pool.SolverPool` (cache first, then fresh
   solves, optionally across processes);
4. **streams results** — every request's future resolves as soon as its
   batch completes; :meth:`stream` yields results in completion order.

The server is deliberately in-process (an asyncio component, not a
network daemon): the simulation engine, the CLI and the benchmarks all
embed it directly, and a transport layer can wrap ``submit`` later
without touching the batching core.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import AsyncIterator, Dict, List, Optional, Sequence, Tuple

from ..core.decomposition import Subproblem, SubproblemSolution
from ..core.designer import DesignerConfig, DesignResult
from ..errors import ServingError
from ..obs.trace import get_tracer
from .cache import ContractCache
from .pool import SolverPool
from .stats import ServingStats

__all__ = ["ContractRequest", "ContractServer"]


@dataclass
class ContractRequest:
    """One queued contract request (internal bookkeeping).

    Attributes:
        subproblem: the design subproblem to serve.
        future: resolves with the :class:`DesignResult`.
        enqueued_at: stats-clock timestamp at submission.
    """

    subproblem: Subproblem
    future: "asyncio.Future[DesignResult]"
    enqueued_at: float


class ContractServer:
    """Batched, cached, backpressured contract service.

    Args:
        mu: the requester's compensation weight.
        config: designer configuration shared by all requests.
        n_workers: solver-pool processes (``0``: in-process solving).
        cache: contract cache shared across batches; one is created
            when ``None``.
        max_pending: bound of the request queue (backpressure limit).
        max_batch: most requests fulfilled per batch.
        batch_window: seconds the batcher waits to fill a batch after
            the first request arrives.
        stats: serving counters; one is created when ``None``.
    """

    def __init__(
        self,
        mu: float = 1.0,
        config: Optional[DesignerConfig] = None,
        n_workers: int = 0,
        cache: Optional[ContractCache] = None,
        max_pending: int = 1024,
        max_batch: int = 64,
        batch_window: float = 0.002,
        stats: Optional[ServingStats] = None,
    ) -> None:
        if max_pending < 1:
            raise ServingError(f"max_pending must be >= 1, got {max_pending!r}")
        if max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {max_batch!r}")
        if batch_window < 0.0:
            raise ServingError(
                f"batch_window must be >= 0, got {batch_window!r}"
            )
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.stats = stats if stats is not None else ServingStats()
        self.cache = cache if cache is not None else ContractCache()
        self.pool = SolverPool(
            n_workers=n_workers,
            mu=mu,
            config=config,
            cache=self.cache,
            stats=self.stats,
        )
        # Created lazily inside the running loop: binding the queue to
        # whatever loop exists at construction time breaks on Python 3.9,
        # where Queue captures the loop eagerly.
        self._queue: "Optional[asyncio.Queue[ContractRequest]]" = None
        self._batcher: "Optional[asyncio.Task[None]]" = None
        self._inflight: "Optional[asyncio.Task[None]]" = None
        self._inflight_batch: List[ContractRequest] = []

    def _ensure_queue(self) -> "asyncio.Queue[ContractRequest]":
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self.max_pending)
        return self._queue

    # -- lifecycle ----------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the batcher task is active."""
        return self._batcher is not None and not self._batcher.done()

    async def start(self) -> None:
        """Start the batcher task (idempotent)."""
        if not self.running:
            self._batcher = asyncio.get_running_loop().create_task(
                self._run_batcher()
            )

    async def stop(self, drain: Optional[float] = 5.0) -> None:
        """Stop the batcher, draining the in-flight batch first.

        A batch already handed to the solver pool keeps running (the
        batcher task is cancelled, but the batch task is shielded) and
        its futures resolve normally, up to the ``drain`` deadline in
        seconds.  Everything still unresolved after the deadline — the
        in-flight batch on timeout, plus every queued request — fails
        with a :class:`ServingError` instead of being left pending
        forever.

        Args:
            drain: seconds to wait for the in-flight batch; ``None`` or
                ``0`` fails it immediately.
        """
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        inflight = self._inflight
        if inflight is not None and not inflight.done() and drain:
            try:
                await asyncio.wait_for(asyncio.shield(inflight), timeout=drain)
            except asyncio.TimeoutError:
                pass
        for request in self._inflight_batch:
            if not request.future.done():
                request.future.set_exception(
                    ServingError(
                        "contract server stopped before its in-flight batch "
                        "finished (drain deadline exceeded)"
                    )
                )
        self._inflight = None
        self._inflight_batch = []
        while self._queue is not None and not self._queue.empty():
            request = self._queue.get_nowait()
            if not request.future.done():
                request.future.set_exception(
                    ServingError("contract server stopped with pending requests")
                )
        self.pool.close()

    async def __aenter__(self) -> "ContractServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- request paths ------------------------------------------------

    async def submit(self, subproblem: Subproblem) -> DesignResult:
        """Serve one contract request (suspends under backpressure)."""
        future = await self.enqueue(subproblem)
        return await future

    async def enqueue(
        self, subproblem: Subproblem
    ) -> "asyncio.Future[DesignResult]":
        """Queue a request and return its result future.

        ``await``-ing the returned future yields the design.  The
        ``put`` below is where backpressure bites: with ``max_pending``
        requests already queued, the submitter is suspended until the
        batcher drains capacity.
        """
        loop = asyncio.get_running_loop()
        request = ContractRequest(
            subproblem=subproblem,
            future=loop.create_future(),
            enqueued_at=self.stats.now(),
        )
        await self._ensure_queue().put(request)
        return request.future

    async def solve_population(
        self, subproblems: Sequence[Subproblem]
    ) -> Dict[str, SubproblemSolution]:
        """Serve one request per subject; results keyed by subject id."""
        futures = [await self.enqueue(subproblem) for subproblem in subproblems]
        designs = await asyncio.gather(*futures)
        return {
            subproblem.subject_id: SubproblemSolution(
                subproblem=subproblem, result=design
            )
            for subproblem, design in zip(subproblems, designs)
        }

    async def stream(
        self, subproblems: Sequence[Subproblem]
    ) -> AsyncIterator[Tuple[str, DesignResult]]:
        """Yield ``(subject_id, design)`` pairs in completion order."""
        pending: Dict[
            "asyncio.Future[DesignResult]", str
        ] = {}
        for subproblem in subproblems:
            future = await self.enqueue(subproblem)
            pending[future] = subproblem.subject_id
        remaining = set(pending)
        while remaining:
            done, remaining = await asyncio.wait(
                remaining, return_when=asyncio.FIRST_COMPLETED
            )
            for future in done:
                yield pending[future], future.result()

    # -- batching core ------------------------------------------------

    async def _collect_batch(self) -> List[ContractRequest]:
        """Block for the first request, then drain up to the batch bound."""
        loop = asyncio.get_running_loop()
        queue = self._ensure_queue()
        batch = [await queue.get()]
        deadline = loop.time() + self.batch_window
        while len(batch) < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0.0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(queue.get(), timeout=remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    async def _run_batcher(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect_batch()
            # The batch runs as its own shielded task: cancelling the
            # batcher (stop()) must not abandon futures the solver pool
            # is already working on — stop() drains this task instead.
            task = loop.create_task(self._serve_batch(batch))
            self._inflight = task
            self._inflight_batch = batch
            try:
                await asyncio.shield(task)
            finally:
                if task.done():
                    self._inflight = None
                    self._inflight_batch = []

    async def _serve_batch(self, batch: List[ContractRequest]) -> None:
        """Resolve one batch through the pool off the event loop.

        The batch span nests under whatever span submitted the batcher's
        task context; the pool's ``serving.solve_batch`` span runs in an
        executor thread, where :mod:`contextvars` do not follow, so it
        appears as its own root in dumps.
        """
        loop = asyncio.get_running_loop()
        subproblems = [request.subproblem for request in batch]
        tracer = get_tracer()
        with tracer.span("serving.batch", n_requests=len(batch)) as span:
            await self._resolve_batch(loop, batch, subproblems, span)

    async def _resolve_batch(
        self,
        loop: "asyncio.AbstractEventLoop",
        batch: List[ContractRequest],
        subproblems: List[Subproblem],
        span: object,
    ) -> None:
        try:
            # The pool call blocks (it may fan out to processes), so it
            # runs in the default executor to keep the loop serving
            # submissions — that concurrency is what lets the next batch
            # accumulate while this one solves.
            designs, _ = await loop.run_in_executor(
                None, self.pool.solve_designs, subproblems
            )
        except Exception as error:  # noqa: BLE001 - fan failure out to callers
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(
                        ServingError(f"batch solve failed: {error}")
                    )
            return
        finished = self.stats.now()
        for request, design in zip(batch, designs):
            if not request.future.done():
                request.future.set_result(design)
        # Batch counters (requests / unique / hits / duration) were
        # booked by the pool inside solve_designs; only the end-to-end
        # request latencies are known here.
        latencies = [finished - request.enqueued_at for request in batch]
        self.stats.record_latencies(latencies)
        span.set("max_latency_s", max(latencies, default=0.0))
