"""Latency / throughput / cache counters for the serving layer.

One :class:`ServingStats` instance is threaded through the solver pool
and the marketplace server; the ``repro serve`` / ``repro solve`` CLI
surfaces its snapshot.  Latencies are kept in a bounded deque (the most
recent ``max_samples`` observations) and summarized with the same
:func:`repro.metrics.percentiles.summarize` helper the Fig. 8
experiments use, so "p95 request latency" here and "p95 compensation"
there mean the same thing.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..errors import ServingError
from ..metrics.percentiles import summarize

__all__ = ["ServingStats"]


class ServingStats:
    """Accumulates serving-side counters and latency samples.

    Args:
        clock: monotonic time source in seconds (injectable for tests).
        max_samples: bound on retained latency samples; older samples
            fall off so long-running servers report recent behaviour.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_samples: int = 4096,
    ) -> None:
        if max_samples < 1:
            raise ServingError(f"max_samples must be >= 1, got {max_samples!r}")
        self._clock = clock
        self.started_at = clock()
        self.requests = 0
        self.batches = 0
        self.unique_solves = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.request_latencies: Deque[float] = deque(maxlen=max_samples)
        self.batch_latencies: Deque[float] = deque(maxlen=max_samples)

    def now(self) -> float:
        """The stats clock (callers use it to stamp enqueue times)."""
        return self._clock()

    def record_batch(
        self,
        n_requests: int,
        n_unique: int,
        n_cache_hits: int,
        duration: float,
        request_latencies: Optional[List[float]] = None,
    ) -> None:
        """Book one served batch.

        Args:
            n_requests: requests fulfilled by the batch (duplicates and
                cache hits included).
            n_unique: distinct fingerprints the batch contained.
            n_cache_hits: fingerprints answered from the cache.
            duration: wall-clock seconds to fulfil the whole batch.
            request_latencies: optional per-request enqueue-to-reply
                latencies.
        """
        if n_requests < 0 or n_unique < 0 or n_cache_hits < 0:
            raise ServingError("batch counters must be non-negative")
        if n_cache_hits > n_unique or n_unique > n_requests:
            raise ServingError(
                f"inconsistent batch counters: requests={n_requests}, "
                f"unique={n_unique}, cache_hits={n_cache_hits}"
            )
        self.requests += n_requests
        self.batches += 1
        self.unique_solves += n_unique - n_cache_hits
        self.cache_hits += n_cache_hits
        self.cache_misses += n_unique - n_cache_hits
        self.batch_latencies.append(max(duration, 0.0))
        if request_latencies:
            self.record_latencies(request_latencies)

    def record_latencies(self, latencies: List[float]) -> None:
        """Book per-request enqueue-to-reply latencies (seconds)."""
        for latency in latencies:
            self.request_latencies.append(max(latency, 0.0))

    @property
    def elapsed(self) -> float:
        """Seconds since this stats object was created."""
        return max(self._clock() - self.started_at, 0.0)

    @property
    def throughput(self) -> float:
        """Fulfilled requests per second since creation."""
        elapsed = self.elapsed
        return self.requests / elapsed if elapsed > 0.0 else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of unique lookups answered from the cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def dedup_rate(self) -> float:
        """Fraction of requests collapsed onto another request's solve."""
        if self.requests == 0:
            return 0.0
        distinct = self.cache_hits + self.cache_misses
        return 1.0 - distinct / self.requests

    def snapshot(self) -> Dict[str, float]:
        """All counters and derived rates as a flat dict."""
        snapshot: Dict[str, float] = {
            "requests": float(self.requests),
            "batches": float(self.batches),
            "unique_solves": float(self.unique_solves),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_hit_rate": self.hit_rate,
            "dedup_rate": self.dedup_rate,
            "elapsed_s": self.elapsed,
            "throughput_rps": self.throughput,
        }
        if self.request_latencies:
            summary = summarize(list(self.request_latencies))
            snapshot["request_latency_mean_s"] = summary.mean
            snapshot["request_latency_p95_s"] = summary.p95
        if self.batch_latencies:
            summary = summarize(list(self.batch_latencies))
            snapshot["batch_latency_mean_s"] = summary.mean
            snapshot["batch_latency_p95_s"] = summary.p95
        return snapshot

    def format(self) -> str:
        """Console rendering of the snapshot (``repro serve`` output)."""
        lines = ["-- serving stats --"]
        for key, value in self.snapshot().items():
            if key.endswith(("_rate", "_s")) or key == "throughput_rps":
                lines.append(f"{key:>24}: {value:.4f}")
            else:
                lines.append(f"{key:>24}: {int(value)}")
        return "\n".join(lines)
