"""Latency / throughput / cache counters for the serving layer.

One :class:`ServingStats` instance is threaded through the solver pool
and the marketplace server; the ``repro serve`` / ``repro solve`` CLI
surfaces its snapshot.

Since the :mod:`repro.obs` layer landed, ``ServingStats`` is a *view*
over :mod:`repro.obs.metrics` instruments rather than a parallel set of
hand-rolled ints and deques: counters live in a
:class:`~repro.obs.metrics.MetricsRegistry` (a private one by default,
or a shared one so a single exporter pass sees serving traffic next to
every other subsystem), and latencies live in bounded
:class:`~repro.obs.metrics.Histogram` reservoirs summarized with the
same :func:`repro.metrics.percentiles.summarize` helper the Fig. 8
experiments use — "p95 request latency" here and "p95 compensation"
there mean the same estimator.

The public read API is unchanged: every pre-obs attribute
(``requests``, ``cache_hits``, ``request_latencies``...) still reads
the same, and ``snapshot()`` / ``format()`` emit the same keys.  The
counters are read-only properties: writes go through
:meth:`record_batch` / :meth:`record_latencies` (the PR 3
``DeprecationWarning`` shim for direct counter assignment has been
removed — assigning ``stats.requests`` now raises ``AttributeError``).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ServingError
from ..metrics.percentiles import summarize
from ..obs.metrics import Counter, Histogram, MetricsRegistry

__all__ = ["ServingStats"]


class ServingStats:
    """Accumulates serving-side counters and latency samples.

    Args:
        clock: monotonic time source in seconds (injectable for tests).
        max_samples: bound on retained latency samples; older samples
            fall off so long-running servers report recent behaviour.
        registry: the :class:`~repro.obs.metrics.MetricsRegistry` to
            register instruments in.  ``None`` (the default) uses a
            private registry, so independent stats objects never share
            counters; pass :func:`repro.obs.metrics.get_registry` to
            publish into the process-global registry the ``--obs-out``
            exporters dump.
        namespace: prefix of the registered metric names (default
            ``"serving"`` produces ``serving.requests`` etc.); give each
            stats object sharing a registry its own namespace.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_samples: int = 4096,
        registry: Optional[MetricsRegistry] = None,
        namespace: str = "serving",
    ) -> None:
        if max_samples < 1:
            raise ServingError(f"max_samples must be >= 1, got {max_samples!r}")
        self._clock = clock
        self.started_at = clock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.namespace = namespace
        self._requests: Counter = self.registry.counter(
            f"{namespace}.requests", "requests fulfilled (dupes and hits included)"
        )
        self._batches: Counter = self.registry.counter(
            f"{namespace}.batches", "batches served"
        )
        self._unique_solves: Counter = self.registry.counter(
            f"{namespace}.unique_solves", "fresh (non-cached) designs solved"
        )
        self._cache_hits: Counter = self.registry.counter(
            f"{namespace}.cache_hits", "unique fingerprints answered from cache"
        )
        self._cache_misses: Counter = self.registry.counter(
            f"{namespace}.cache_misses", "unique fingerprints freshly solved"
        )
        self._request_latency: Histogram = self.registry.histogram(
            f"{namespace}.request_latency_s",
            "per-request enqueue-to-reply latency (seconds)",
            max_samples=max_samples,
        )
        self._batch_latency: Histogram = self.registry.histogram(
            f"{namespace}.batch_latency_s",
            "per-batch fulfilment latency (seconds)",
            max_samples=max_samples,
        )

    # -- recording -----------------------------------------------------

    def now(self) -> float:
        """The stats clock (callers use it to stamp enqueue times)."""
        return self._clock()

    def record_batch(
        self,
        n_requests: int,
        n_unique: int,
        n_cache_hits: int,
        duration: float,
        request_latencies: Optional[List[float]] = None,
    ) -> None:
        """Book one served batch.

        Args:
            n_requests: requests fulfilled by the batch (duplicates and
                cache hits included).
            n_unique: distinct fingerprints the batch contained.
            n_cache_hits: fingerprints answered from the cache.
            duration: wall-clock seconds to fulfil the whole batch.
            request_latencies: optional per-request enqueue-to-reply
                latencies.
        """
        if n_requests < 0 or n_unique < 0 or n_cache_hits < 0:
            raise ServingError("batch counters must be non-negative")
        if n_cache_hits > n_unique or n_unique > n_requests:
            raise ServingError(
                f"inconsistent batch counters: requests={n_requests}, "
                f"unique={n_unique}, cache_hits={n_cache_hits}"
            )
        self._requests.inc(n_requests)
        self._batches.inc()
        self._unique_solves.inc(n_unique - n_cache_hits)
        self._cache_hits.inc(n_cache_hits)
        self._cache_misses.inc(n_unique - n_cache_hits)
        self._batch_latency.observe(max(duration, 0.0))
        if request_latencies:
            self.record_latencies(request_latencies)

    def record_fanout(self, n_requests: int) -> None:
        """Book requests answered by archetype fan-out, not fresh work.

        A columnar batch frame is solved as K archetype representatives
        (booked normally through :meth:`record_batch` by the pool) and
        then fanned out to its n requests; the ``n - K`` remainder is
        booked here so ``requests`` keeps meaning "subjects served"
        regardless of wire format.  Adds no batch, no unique solve and
        no cache traffic — those happened exactly once per archetype.
        """
        if n_requests < 0:
            raise ServingError(
                f"fan-out request count must be >= 0, got {n_requests!r}"
            )
        self._requests.inc(n_requests)

    def record_latencies(self, latencies: List[float]) -> None:
        """Book per-request enqueue-to-reply latencies (seconds)."""
        for latency in latencies:
            self._request_latency.observe(max(latency, 0.0))

    # -- counters (read-only views over the registry) ------------------

    @property
    def requests(self) -> int:
        """Requests fulfilled so far (duplicates and hits included)."""
        return int(self._requests.value)

    @property
    def batches(self) -> int:
        """Batches served so far."""
        return int(self._batches.value)

    @property
    def unique_solves(self) -> int:
        """Fresh (non-cached) designs solved so far."""
        return int(self._unique_solves.value)

    @property
    def cache_hits(self) -> int:
        """Unique fingerprints answered from the cache."""
        return int(self._cache_hits.value)

    @property
    def cache_misses(self) -> int:
        """Unique fingerprints that fell through to a fresh solve."""
        return int(self._cache_misses.value)

    @property
    def request_latencies(self) -> Tuple[float, ...]:
        """Retained per-request latencies, oldest first."""
        return self._request_latency.samples

    @property
    def batch_latencies(self) -> Tuple[float, ...]:
        """Retained per-batch latencies, oldest first."""
        return self._batch_latency.samples

    # -- derived rates -------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Seconds since this stats object was created."""
        return max(self._clock() - self.started_at, 0.0)

    @property
    def throughput(self) -> float:
        """Fulfilled requests per second since creation."""
        elapsed = self.elapsed
        return self.requests / elapsed if elapsed > 0.0 else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of unique lookups answered from the cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def dedup_rate(self) -> float:
        """Fraction of requests collapsed onto another request's solve."""
        if self.requests == 0:
            return 0.0
        distinct = self.cache_hits + self.cache_misses
        return 1.0 - distinct / self.requests

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """All counters and derived rates as a flat dict."""
        snapshot: Dict[str, float] = {
            "requests": float(self.requests),
            "batches": float(self.batches),
            "unique_solves": float(self.unique_solves),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_hit_rate": self.hit_rate,
            "dedup_rate": self.dedup_rate,
            "elapsed_s": self.elapsed,
            "throughput_rps": self.throughput,
        }
        if self.request_latencies:
            summary = summarize(list(self.request_latencies))
            snapshot["request_latency_mean_s"] = summary.mean
            snapshot["request_latency_p50_s"] = self._request_latency.quantile(0.5)
            snapshot["request_latency_p95_s"] = summary.p95
            snapshot["request_latency_p99_s"] = self._request_latency.quantile(0.99)
        if self.batch_latencies:
            summary = summarize(list(self.batch_latencies))
            snapshot["batch_latency_mean_s"] = summary.mean
            snapshot["batch_latency_p95_s"] = summary.p95
        return snapshot

    def format(self) -> str:
        """Console rendering of the snapshot (``repro serve`` output)."""
        lines = ["-- serving stats --"]
        for key, value in self.snapshot().items():
            if key.endswith(("_rate", "_s")) or key == "throughput_rps":
                lines.append(f"{key:>24}: {value:.4f}")
            else:
                lines.append(f"{key:>24}: {int(value)}")
        return "\n".join(lines)
