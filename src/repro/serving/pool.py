"""Process-pool fan-out over the decomposed design subproblems.

Section IV-B makes the bilevel program embarrassingly parallel: one
independent subproblem per non-collusive worker and per collusive
community.  The :class:`SolverPool` exploits that two ways:

* **dedup by fingerprint** — workers sharing a class-level fit, the same
  parameters and the same Eq. (5) weight are the *same* subproblem
  (:mod:`repro.serving.fingerprint`); each unique fingerprint is solved
  once per batch and the result fanned out to every requesting subject.
  This is the dominant win on real populations, where thousands of
  workers collapse to a handful of archetypes, and it costs nothing on
  fully heterogeneous populations.
* **process fan-out** — the surviving unique solves are chunked and
  dispatched across ``n_workers`` processes (``concurrent.futures``),
  with per-chunk timeouts and results reassembled in deterministic
  input order regardless of completion order.

An optional :class:`~repro.serving.cache.ContractCache` carries solved
designs across batches (i.e. across marketplace rounds); hits are
re-verified against fresh solves under ``REPRO_CHECK_INVARIANTS=1``.
"""

from __future__ import annotations

import math
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..analysis.invariants import InvariantViolation, invariants_enabled
from ..core.contract import Contract
from ..core.decomposition import Subproblem, SubproblemSolution
from ..core.designer import ContractDesigner, DesignerConfig, DesignResult
from ..core.sweep import fastpath_enabled
from ..errors import ServingError
from ..numerics import close
from ..obs.trace import get_tracer
from .cache import ContractCache, maybe_verify_cached
from .fingerprint import subproblem_fingerprint
from .stats import ServingStats

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from ..workers.columnar import ColumnarPopulation

__all__ = [
    "ColumnarDeltaState",
    "ContractAssignment",
    "DeltaSolveState",
    "RedesignStats",
    "SolveDiagnostics",
    "SolverPool",
    "require_redesigns_agree",
    "solve_subproblems_parallel",
]

#: Signature of the fresh-solve callback a :class:`DeltaSolveState`
#: falls back on for its dirty set: subproblems in, per-subject
#: solutions plus (possibly empty) serving diagnostics out.
SolveFn = Callable[
    [Sequence[Subproblem]],
    Tuple[Dict[str, SubproblemSolution], Dict[str, "SolveDiagnostics"]],
]


@dataclass(frozen=True)
class SolveDiagnostics:
    """How one subject's design was obtained (ledger provenance).

    Attributes:
        fingerprint: the subproblem's design fingerprint.
        cache_hit: whether the design came from the contract cache
            rather than a fresh solve in this batch.
    """

    fingerprint: str
    cache_hit: bool


@dataclass(frozen=True)
class RedesignStats:
    """Dirty-set accounting of one delta-aware redesign epoch.

    Attributes:
        n_subjects: subjects in the redesign request.
        n_dirty: subjects whose design inputs changed since the previous
            epoch and were therefore re-solved.  Equals ``n_subjects``
            for a full (non-delta) redesign and for the first epoch.
    """

    n_subjects: int
    n_dirty: int

    def __post_init__(self) -> None:
        if self.n_subjects < 0:
            raise ServingError(
                f"n_subjects must be >= 0, got {self.n_subjects!r}"
            )
        if not 0 <= self.n_dirty <= self.n_subjects:
            raise ServingError(
                f"n_dirty must lie in [0, {self.n_subjects}], "
                f"got {self.n_dirty!r}"
            )

    @property
    def reuse_rate(self) -> float:
        """Fraction of subjects whose previous design was reused."""
        if self.n_subjects == 0:
            return 1.0
        return 1.0 - self.n_dirty / self.n_subjects


def require_redesigns_agree(
    reused: Mapping[str, SubproblemSolution],
    reference: Mapping[str, SubproblemSolution],
) -> None:
    """Assert delta-reused designs match freshly solved ones.

    The dirty-set detector's correctness contract: every solution it
    chose *not* to re-solve must equal what a full re-solve would have
    produced (same posted compensations, same target piece, same best
    response).

    Raises:
        InvariantViolation: on the first disagreement.
    """
    for subject_id, kept in reused.items():
        fresh = reference.get(subject_id)
        if fresh is None:
            raise InvariantViolation(
                f"delta redesign reused a design for {subject_id!r} that a "
                "full redesign does not produce"
            )
        if kept.result.k_opt != fresh.result.k_opt:
            raise InvariantViolation(
                f"delta redesign reused a stale design for {subject_id!r}: "
                f"k_opt {kept.result.k_opt!r} != {fresh.result.k_opt!r}"
            )
        kept_pay = kept.result.contract.compensations
        fresh_pay = fresh.result.contract.compensations
        if len(kept_pay) != len(fresh_pay) or any(
            not close(a, b) for a, b in zip(kept_pay, fresh_pay)
        ):
            raise InvariantViolation(
                f"delta redesign reused a stale contract for {subject_id!r}: "
                f"compensations {kept_pay!r} != {fresh_pay!r}"
            )
        if not close(kept.result.response.effort, fresh.result.response.effort):
            raise InvariantViolation(
                f"delta redesign reused a stale best response for "
                f"{subject_id!r}: effort {kept.result.response.effort!r} != "
                f"{fresh.result.response.effort!r}"
            )


class DeltaSolveState:
    """Previous design epoch for dirty-set (delta-aware) redesign.

    A redesign round rarely changes every subject's design inputs: a
    static population never does, and an adaptive policy only moves the
    Eq. (5) weights of subjects whose estimates shifted.  This state
    object remembers, per subject, the subproblem that was last solved
    and its solution, and on the next epoch splits the request into a
    *clean* set (reuse the stored solution) and a *dirty* set (hand to a
    fresh solve).

    Cleanliness is decided in two tiers, cheapest first:

    1. **identity** — the same :class:`Subproblem` object as last epoch
       is clean with zero hashing (the static-population fast path);
    2. **fingerprint** — a different object with an equal serving
       fingerprint (:func:`repro.serving.fingerprint.subproblem_fingerprint`)
       is clean; fingerprints are computed lazily and only for subjects
       that fail the identity check.

    Under ``REPRO_CHECK_INVARIANTS=1`` every epoch with reuse is
    cross-verified: the clean set is re-solved fresh and compared via
    :func:`require_redesigns_agree`.
    """

    def __init__(self) -> None:
        self._subproblems: Dict[str, Subproblem] = {}
        self._fingerprints: Dict[str, Optional[str]] = {}
        self._solutions: Dict[str, SubproblemSolution] = {}
        self._diagnostics: Dict[str, SolveDiagnostics] = {}
        self._epoch = 0
        self.last_stats: Optional[RedesignStats] = None

    @property
    def epoch(self) -> int:
        """How many redesign epochs this state has absorbed."""
        return self._epoch

    def _fingerprint_of_previous(
        self, subject_id: str, fingerprint_of: Callable[[Subproblem], str]
    ) -> str:
        cached = self._fingerprints.get(subject_id)
        if cached is None:
            cached = fingerprint_of(self._subproblems[subject_id])
            self._fingerprints[subject_id] = cached
        return cached

    def resolve(
        self,
        subproblems: Sequence[Subproblem],
        fingerprint_of: Callable[[Subproblem], str],
        solve: SolveFn,
    ) -> Tuple[
        Dict[str, SubproblemSolution],
        Dict[str, SolveDiagnostics],
        RedesignStats,
    ]:
        """Solve one redesign epoch, reusing every clean subject.

        Args:
            subproblems: this epoch's full design request.
            fingerprint_of: maps a subproblem to its serving fingerprint
                under the caller's ``(mu, config)``.
            solve: fresh-solve callback for the dirty set; returns
                per-subject solutions and (possibly empty) diagnostics.

        Returns:
            ``(solutions, diagnostics, stats)`` — solutions keyed by
            subject id in input order; reused subjects report their
            stored fingerprint with ``cache_hit=True`` (or no
            diagnostics at all when none were ever recorded).
        """
        dirty: List[Subproblem] = []
        clean_ids: List[str] = []
        new_fingerprints: Dict[str, str] = {}
        for subproblem in subproblems:
            subject_id = subproblem.subject_id
            previous = self._subproblems.get(subject_id)
            if previous is None:
                dirty.append(subproblem)
                continue
            if previous is subproblem:
                clean_ids.append(subject_id)
                continue
            fingerprint = fingerprint_of(subproblem)
            new_fingerprints[subject_id] = fingerprint
            if fingerprint == self._fingerprint_of_previous(
                subject_id, fingerprint_of
            ):
                clean_ids.append(subject_id)
            else:
                dirty.append(subproblem)

        if dirty:
            fresh_solutions, fresh_diagnostics = solve(dirty)
        else:
            fresh_solutions, fresh_diagnostics = {}, {}

        if clean_ids and invariants_enabled():
            reference, _ = solve(
                [s for s in subproblems if s.subject_id in set(clean_ids)]
            )
            require_redesigns_agree(
                {sid: self._solutions[sid] for sid in clean_ids}, reference
            )

        solutions: Dict[str, SubproblemSolution] = {}
        diagnostics: Dict[str, SolveDiagnostics] = {}
        for subproblem in subproblems:
            subject_id = subproblem.subject_id
            if subject_id in fresh_solutions:
                solutions[subject_id] = fresh_solutions[subject_id]
                diag = fresh_diagnostics.get(subject_id)
                if diag is not None:
                    diagnostics[subject_id] = diag
                    self._diagnostics[subject_id] = diag
                    self._fingerprints[subject_id] = diag.fingerprint
                else:
                    self._diagnostics.pop(subject_id, None)
                    self._fingerprints[subject_id] = new_fingerprints.get(
                        subject_id
                    )
            else:
                solutions[subject_id] = self._solutions[subject_id]
                fingerprint = self._fingerprints.get(subject_id)
                if fingerprint is None:
                    prior = self._diagnostics.get(subject_id)
                    fingerprint = prior.fingerprint if prior is not None else None
                if fingerprint is not None:
                    diag = SolveDiagnostics(
                        fingerprint=fingerprint, cache_hit=True
                    )
                    diagnostics[subject_id] = diag
                    self._diagnostics[subject_id] = diag
            self._subproblems[subject_id] = subproblem
            self._solutions[subject_id] = solutions[subject_id]

        stats = RedesignStats(n_subjects=len(subproblems), n_dirty=len(dirty))
        self.last_stats = stats
        self._epoch += 1
        return solutions, diagnostics, stats


@dataclass(frozen=True)
class ContractAssignment:
    """Posted contracts in columnar form: a table plus per-subject codes.

    The columnar analogue of the engine's ``{subject_id: Contract}``
    mapping: ``contracts`` holds one object per design archetype and
    ``codes[i]`` indexes a subject's contract (``-1`` = no contract
    posted, i.e. excluded by the policy).

    Attributes:
        contracts: the archetype contract table.
        codes: per-subject index into ``contracts`` (``int64``; ``-1``
            for subjects without a posted contract).
    """

    contracts: Tuple[Contract, ...]
    codes: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        codes = np.ascontiguousarray(np.asarray(self.codes, dtype=np.int64))
        codes.flags.writeable = False
        object.__setattr__(self, "codes", codes)
        if codes.ndim != 1:
            raise ServingError(
                f"codes must be one-dimensional, got shape {codes.shape!r}"
            )
        if codes.size and (
            codes.min() < -1 or codes.max() >= len(self.contracts)
        ):
            raise ServingError(
                "codes must index into contracts (or be -1); got range "
                f"[{int(codes.min())}, {int(codes.max())}] for "
                f"{len(self.contracts)} contracts"
            )

    @property
    def n_subjects(self) -> int:
        """Number of subjects the assignment covers."""
        return int(self.codes.shape[0])

    def to_mapping(self, population: "ColumnarPopulation") -> Dict[str, Contract]:
        """Materialize the legacy per-subject contract dict (O(n))."""
        contracts = self.contracts
        return {
            population.subject_id(index): contracts[code]
            for index, code in enumerate(self.codes.tolist())
            if code >= 0
        }

    @classmethod
    def from_mapping(
        cls,
        contracts: Mapping[str, Contract],
        population: "ColumnarPopulation",
    ) -> "ContractAssignment":
        """Pack a legacy per-subject contract dict into an assignment.

        Contract objects are deduplicated by identity (archetype-shared
        contracts collapse to one table entry).  This is the O(n)
        compatibility path for policies without a columnar override.
        """
        table: List[Contract] = []
        slots: Dict[int, int] = {}
        codes = np.full(population.n_subjects, -1, dtype=np.int64)
        for index in range(population.n_subjects):
            contract = contracts.get(population.subject_id(index))
            if contract is None:
                continue
            slot = slots.get(id(contract))
            if slot is None:
                slot = len(table)
                table.append(contract)
                slots[id(contract)] = slot
            codes[index] = slot
        return cls(contracts=tuple(table), codes=codes)


class ColumnarDeltaState:
    """Delta-aware redesign over a columnar population.

    The object-path :class:`DeltaSolveState` diffs per-subject
    ``Subproblem`` objects (identity, then fingerprint).  On a columnar
    store there are no per-subject objects to compare, so this state
    diffs the packed **design matrix** instead: a subject is clean iff
    its design row is bit-equal to the previous epoch's row.  Solutions
    are stored per *row value* (``row.tobytes()``), so a subject that
    moves onto a previously-seen archetype reuses that archetype's
    stored design without a fresh solve.

    Under ``REPRO_CHECK_INVARIANTS=1`` every epoch with reuse re-solves
    the reused archetype representatives fresh and cross-verifies via
    :func:`require_redesigns_agree`.
    """

    def __init__(self) -> None:
        self._matrix: Optional[np.ndarray] = None
        self._solutions: Dict[bytes, SubproblemSolution] = {}
        self._epoch = 0
        self.last_stats: Optional[RedesignStats] = None

    @property
    def epoch(self) -> int:
        """How many redesign epochs this state has absorbed."""
        return self._epoch

    def resolve(
        self,
        population: "ColumnarPopulation",
        solve: SolveFn,
    ) -> Tuple[ContractAssignment, RedesignStats]:
        """Solve one redesign epoch, reusing stored archetype designs.

        Args:
            population: the columnar population to design for.
            solve: fresh-solve callback (archetype representative
                subproblems in, per-subject-id solutions out).

        Returns:
            ``(assignment, stats)`` — the posted contract table plus
            dirty-set accounting, where ``n_dirty`` counts *subjects*
            whose design row required a fresh archetype solve this
            epoch (0 on a repeat epoch over a static population).
        """
        matrix = population.design_matrix()
        codes = population.archetype_codes
        representatives = population.archetype_representatives
        n_subjects = matrix.shape[0]

        previous = self._matrix
        if previous is not None and previous.shape == matrix.shape:
            # NaN-free by construction (max_effort is sentinel-encoded),
            # so row equality is plain bit equality.
            dirty_rows = np.any(matrix != previous, axis=1)
        else:
            dirty_rows = np.ones(n_subjects, dtype=bool)

        reps = population.archetype_subproblems()
        keys = [
            matrix[int(row)].tobytes() for row in representatives.tolist()
        ]
        missing = [
            (slot, rep)
            for slot, (key, rep) in enumerate(zip(keys, reps))
            if key not in self._solutions
        ]
        if missing:
            fresh, _ = solve([rep for _, rep in missing])
            for slot, rep in missing:
                solution = fresh.get(rep.subject_id)
                if solution is None:
                    raise ServingError(
                        f"fresh solve returned no solution for archetype "
                        f"representative {rep.subject_id!r}"
                    )
                self._solutions[keys[slot]] = solution
        solved_slots = {slot for slot, _ in missing}

        reused_slots = [
            slot for slot in range(len(reps)) if slot not in solved_slots
        ]
        if reused_slots and invariants_enabled():
            reference, _ = solve([reps[slot] for slot in reused_slots])
            require_redesigns_agree(
                {
                    reps[slot].subject_id: self._solutions[keys[slot]]
                    for slot in reused_slots
                },
                reference,
            )

        assignment = ContractAssignment(
            contracts=tuple(
                self._solutions[key].result.contract for key in keys
            ),
            codes=codes,
        )
        # A subject is dirty iff its row changed *and* that change
        # required a fresh archetype solve (moving onto an already-
        # stored archetype is a reuse, exactly like the fingerprint
        # tier of the object path).
        if solved_slots:
            freshly_solved = np.zeros(len(reps), dtype=bool)
            freshly_solved[sorted(solved_slots)] = True
            n_dirty = int(np.count_nonzero(dirty_rows & freshly_solved[codes]))
        else:
            n_dirty = 0
        stats = RedesignStats(n_subjects=n_subjects, n_dirty=n_dirty)
        self.last_stats = stats
        self._matrix = matrix
        self._epoch += 1
        return assignment, stats


def _solve_chunk(
    payload: Tuple[Tuple[Subproblem, ...], float, Optional[DesignerConfig]],
) -> List[DesignResult]:
    """Solve one chunk of subproblems (runs inside a pool process).

    Module-level so it pickles under every start method; each chunk gets
    its own :class:`~repro.core.designer.ContractDesigner`, whose
    candidate cache is shared across the chunk's subproblems.
    """
    subproblems, mu, config = payload
    designer = ContractDesigner(mu=mu, config=config)
    return [
        designer.design(
            effort_function=subproblem.effort_function,
            params=subproblem.params,
            feedback_weight=subproblem.feedback_weight,
            max_effort=subproblem.max_effort,
        )
        for subproblem in subproblems
    ]


class SolverPool:
    """Batched, cached, optionally multi-process subproblem solver.

    Args:
        n_workers: pool processes; ``0`` solves in-process (still with
            dedup and caching — the serial fallback).
        mu: the requester's compensation weight.
        config: designer configuration shared by all solves.
        chunk_size: subproblems per dispatched task; ``None`` picks
            ``ceil(unique / (4 * n_workers))`` so each process sees a
            few chunks (load balancing without per-task overhead).
        timeout: optional per-task (per-chunk) wall-clock budget in
            seconds; exceeding it raises :class:`ServingError`.
        cache: optional cross-batch contract cache.
        dedupe: collapse identical fingerprints within a batch onto a
            single solve (on by default; disable to force one solve per
            subject, e.g. when benchmarking raw solver throughput).
        stats: optional serving counters to record batches into.
    """

    def __init__(
        self,
        n_workers: int = 0,
        mu: float = 1.0,
        config: Optional[DesignerConfig] = None,
        chunk_size: Optional[int] = None,
        timeout: Optional[float] = None,
        cache: Optional[ContractCache] = None,
        dedupe: bool = True,
        stats: Optional[ServingStats] = None,
    ) -> None:
        if n_workers < 0:
            raise ServingError(f"n_workers must be >= 0, got {n_workers!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ServingError(f"chunk_size must be >= 1, got {chunk_size!r}")
        if timeout is not None and timeout <= 0.0:
            raise ServingError(f"timeout must be positive, got {timeout!r}")
        self.n_workers = n_workers
        self.mu = mu
        self.config = config
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.cache = cache
        self.dedupe = dedupe
        self.stats = stats
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ----------------------------------------------------

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._executor

    # -- solving ------------------------------------------------------

    def solve(self, subproblems: Sequence[Subproblem]) -> Dict[str, SubproblemSolution]:
        """Solve every subproblem; results keyed by subject id, input order."""
        solutions, _ = self.solve_with_diagnostics(subproblems)
        return solutions

    def solve_with_diagnostics(
        self, subproblems: Sequence[Subproblem]
    ) -> Tuple[Dict[str, SubproblemSolution], Dict[str, SolveDiagnostics]]:
        """Solve every subproblem and report per-subject provenance.

        Returns:
            ``(solutions, diagnostics)`` — both keyed by subject id in
            the input order, regardless of which process finished when.
        """
        seen = set()
        for subproblem in subproblems:
            if subproblem.subject_id in seen:
                raise ServingError(
                    f"duplicate subject_id {subproblem.subject_id!r}"
                )
            seen.add(subproblem.subject_id)

        fingerprints = self.fingerprints(subproblems)
        designs, cache_hits = self.solve_designs(subproblems, fingerprints)

        solutions: Dict[str, SubproblemSolution] = {}
        diagnostics: Dict[str, SolveDiagnostics] = {}
        for subproblem, fingerprint, design, hit in zip(
            subproblems, fingerprints, designs, cache_hits
        ):
            solutions[subproblem.subject_id] = SubproblemSolution(
                subproblem=subproblem, result=design
            )
            diagnostics[subproblem.subject_id] = SolveDiagnostics(
                fingerprint=fingerprint, cache_hit=hit
            )
        return solutions, diagnostics

    def solve_delta(
        self, subproblems: Sequence[Subproblem], state: DeltaSolveState
    ) -> Tuple[
        Dict[str, SubproblemSolution],
        Dict[str, SolveDiagnostics],
        RedesignStats,
    ]:
        """Dirty-set batch solve against a previous design epoch.

        Subjects whose subproblem is unchanged since ``state``'s last
        epoch (same object, or equal serving fingerprint) reuse their
        stored solution; only the dirty set goes through
        :meth:`solve_with_diagnostics`.  Reused subjects report their
        stored fingerprint with ``cache_hit=True``.

        Returns:
            ``(solutions, diagnostics, stats)`` keyed by subject id in
            input order.
        """
        return state.resolve(
            subproblems,
            fingerprint_of=self._fingerprint_of,
            solve=self.solve_with_diagnostics,
        )

    def _fingerprint_of(self, subproblem: Subproblem) -> str:
        return subproblem_fingerprint(subproblem, mu=self.mu, config=self.config)

    def fingerprints(self, subproblems: Sequence[Subproblem]) -> List[str]:
        """Design fingerprints of the subproblems under this pool's config."""
        return [
            subproblem_fingerprint(subproblem, mu=self.mu, config=self.config)
            for subproblem in subproblems
        ]

    def solve_designs(
        self,
        subproblems: Sequence[Subproblem],
        fingerprints: Optional[Sequence[str]] = None,
    ) -> Tuple[List[DesignResult], List[bool]]:
        """Designs aligned with the input order, plus cache-hit flags.

        This is the serving core: requests may repeat fingerprints (and
        even subject ids — the server batches arbitrary request streams);
        each unique fingerprint is resolved once via cache lookup or a
        (possibly pooled) fresh solve, then fanned back out.

        Returns:
            ``(designs, cache_hits)``, both parallel to ``subproblems``.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve_designs(subproblems, fingerprints)
        with tracer.span(
            "serving.solve_batch", n_requests=len(subproblems)
        ) as span:
            if fingerprints is None:
                fingerprints = self.fingerprints(subproblems)
            designs, cache_hits = self._solve_designs(subproblems, fingerprints)
            span.set(
                "n_unique",
                len(set(fingerprints)) if self.dedupe else len(subproblems),
            )
            span.set("n_hits", sum(1 for hit in cache_hits if hit))
            span.set("n_workers", self.n_workers)
            span.set("fastpath", fastpath_enabled())
            return designs, cache_hits

    def _solve_designs(
        self,
        subproblems: Sequence[Subproblem],
        fingerprints: Optional[Sequence[str]] = None,
    ) -> Tuple[List[DesignResult], List[bool]]:
        """The untraced batch-solve core (see :meth:`solve_designs`)."""
        started = self.stats.now() if self.stats is not None else 0.0
        if fingerprints is None:
            fingerprints = self.fingerprints(subproblems)
        if len(fingerprints) != len(subproblems):
            raise ServingError(
                f"got {len(fingerprints)} fingerprints for "
                f"{len(subproblems)} subproblems"
            )

        # Group requests by solve key.  With dedup on, the key is the
        # fingerprint itself; with dedup off each request is its own
        # group (but still shares the cache via the fingerprint).
        groups: Dict[Tuple[str, int], int] = {}
        for index, fingerprint in enumerate(fingerprints):
            key = (fingerprint, 0 if self.dedupe else index)
            groups.setdefault(key, index)

        results: Dict[Tuple[str, int], DesignResult] = {}
        hit_keys: List[Tuple[str, int]] = []
        misses: List[Tuple[Tuple[str, int], Subproblem]] = []
        for key, first_index in groups.items():
            cached = (
                self.cache.get_design(key[0]) if self.cache is not None else None
            )
            if cached is not None:
                results[key] = cached
                hit_keys.append(key)
            else:
                misses.append((key, subproblems[first_index]))

        fresh = self._solve_unique([subproblem for _, subproblem in misses])
        for (key, _), result in zip(misses, fresh):
            results[key] = result
            if self.cache is not None:
                self.cache.put_design(key[0], result)

        for key in hit_keys:
            representative = subproblems[groups[key]]
            maybe_verify_cached(
                key[0],
                results[key],
                lambda subproblem=representative: _solve_chunk(
                    ((subproblem,), self.mu, self.config)
                )[0],
                stats=self.cache.stats if self.cache is not None else None,
            )

        hit_set = set(hit_keys)
        designs: List[DesignResult] = []
        cache_hits: List[bool] = []
        for index, fingerprint in enumerate(fingerprints):
            key = (fingerprint, 0 if self.dedupe else index)
            designs.append(results[key])
            cache_hits.append(key in hit_set)

        if self.stats is not None:
            self.stats.record_batch(
                n_requests=len(subproblems),
                n_unique=len(groups),
                n_cache_hits=len(hit_keys),
                duration=self.stats.now() - started,
            )
        return designs, cache_hits

    def _solve_unique(self, subproblems: List[Subproblem]) -> List[DesignResult]:
        """Solve the unique (cache-missed) subproblems, preserving order."""
        if not subproblems:
            return []
        if self.n_workers == 0 or len(subproblems) == 1:
            return _solve_chunk((tuple(subproblems), self.mu, self.config))

        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = max(
                1, math.ceil(len(subproblems) / (4 * self.n_workers))
            )
        chunks = [
            tuple(subproblems[start : start + chunk_size])
            for start in range(0, len(subproblems), chunk_size)
        ]
        executor = self._ensure_executor()
        futures: List["Future[List[DesignResult]]"] = [
            executor.submit(_solve_chunk, (chunk, self.mu, self.config))
            for chunk in chunks
        ]
        results: List[DesignResult] = []
        for index, future in enumerate(futures):
            try:
                results.extend(future.result(timeout=self.timeout))
            except FuturesTimeoutError:
                for pending in futures[index:]:
                    pending.cancel()
                raise ServingError(
                    f"solver-pool task {index + 1}/{len(futures)} exceeded "
                    f"its {self.timeout!r}s timeout"
                ) from None
        return results


def solve_subproblems_parallel(
    subproblems: Sequence[Subproblem],
    mu: float = 1.0,
    config: Optional[DesignerConfig] = None,
    n_workers: int = 2,
    chunk_size: Optional[int] = None,
    timeout: Optional[float] = None,
    cache: Optional[ContractCache] = None,
    dedupe: bool = True,
) -> Dict[str, SubproblemSolution]:
    """One-shot pooled solve (spawns and tears down a :class:`SolverPool`).

    Call sites that solve repeatedly (policies, servers) should hold a
    :class:`SolverPool` instead, amortizing process start-up.
    """
    with SolverPool(
        n_workers=n_workers,
        mu=mu,
        config=config,
        chunk_size=chunk_size,
        timeout=timeout,
        cache=cache,
        dedupe=dedupe,
    ) as pool:
        return pool.solve(subproblems)
