"""Contract serving: batched, cached, parallel design at marketplace scale.

The Section IV-B decomposition makes contract design one independent
subproblem per worker / community; this package turns that observation
into a serving layer:

* :mod:`~repro.serving.fingerprint` — canonical, hash-stable subproblem
  fingerprints (the cache/batch keys).
* :mod:`~repro.serving.cache` — a bounded LRU contract cache with
  hit/miss/eviction counters and a cached==fresh invariant.
* :mod:`~repro.serving.pool` — fingerprint-dedup plus
  ``concurrent.futures`` process fan-out with chunking, per-task
  timeouts and deterministic result ordering.
* :mod:`~repro.serving.server` — an asyncio front-end that batches
  requests by fingerprint, applies queue backpressure and streams
  results.
* :mod:`~repro.serving.stats` — latency / throughput / cache counters.
* :mod:`~repro.serving.workload` — synthetic subproblem populations for
  benchmarks and smoke tests.
* :mod:`~repro.serving.replay` — ledger-level verification that cached
  contracts match recomputed ones.
* :mod:`~repro.serving.cluster` — sharded multi-process serving: a
  consistent-hash shard router with failover and supervision, fronted
  by a stdlib HTTP/JSON server (``/solve``, ``/solve_batch``,
  ``/healthz``, ``/stats``).
* :mod:`~repro.serving.loadgen` — a closed-loop load harness recording
  p50/p99 latency through :mod:`repro.obs` histograms
  (``repro bench-serve`` on the CLI).
"""

from __future__ import annotations

from .cache import CacheStats, ContractCache, LRUCache, require_results_agree
from .cluster import (
    ClusterHTTPServer,
    ClusterStats,
    HashRing,
    HTTPServerThread,
    ShardProcess,
    ShardRouter,
    ShardSpec,
)
from .loadgen import (
    LoadGenerator,
    LoadReport,
    http_target,
    pool_target,
    router_target,
    synthetic_request_batches,
)
from .fingerprint import design_fingerprint, subproblem_fingerprint
from .pool import (
    DeltaSolveState,
    RedesignStats,
    SolveDiagnostics,
    SolverPool,
    require_redesigns_agree,
    solve_subproblems_parallel,
)
from .replay import verify_ledger, verify_round
from .server import ContractServer
from .stats import ServingStats
from .workload import synthetic_subproblems

__all__ = [
    "CacheStats",
    "ClusterHTTPServer",
    "ClusterStats",
    "ContractCache",
    "ContractServer",
    "DeltaSolveState",
    "HTTPServerThread",
    "HashRing",
    "LRUCache",
    "LoadGenerator",
    "LoadReport",
    "RedesignStats",
    "ServingStats",
    "ShardProcess",
    "ShardRouter",
    "ShardSpec",
    "SolveDiagnostics",
    "SolverPool",
    "design_fingerprint",
    "http_target",
    "pool_target",
    "require_redesigns_agree",
    "require_results_agree",
    "router_target",
    "solve_subproblems_parallel",
    "subproblem_fingerprint",
    "synthetic_request_batches",
    "synthetic_subproblems",
    "verify_ledger",
    "verify_round",
]
