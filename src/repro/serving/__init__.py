"""Contract serving: batched, cached, parallel design at marketplace scale.

The Section IV-B decomposition makes contract design one independent
subproblem per worker / community; this package turns that observation
into a serving layer:

* :mod:`~repro.serving.fingerprint` — canonical, hash-stable subproblem
  fingerprints (the cache/batch keys).
* :mod:`~repro.serving.cache` — a bounded LRU contract cache with
  hit/miss/eviction counters and a cached==fresh invariant.
* :mod:`~repro.serving.pool` — fingerprint-dedup plus
  ``concurrent.futures`` process fan-out with chunking, per-task
  timeouts and deterministic result ordering.
* :mod:`~repro.serving.server` — an asyncio front-end that batches
  requests by fingerprint, applies queue backpressure and streams
  results.
* :mod:`~repro.serving.stats` — latency / throughput / cache counters.
* :mod:`~repro.serving.workload` — synthetic subproblem populations for
  benchmarks and smoke tests.
* :mod:`~repro.serving.replay` — ledger-level verification that cached
  contracts match recomputed ones.
"""

from __future__ import annotations

from .cache import CacheStats, ContractCache, LRUCache, require_results_agree
from .fingerprint import design_fingerprint, subproblem_fingerprint
from .pool import (
    DeltaSolveState,
    RedesignStats,
    SolveDiagnostics,
    SolverPool,
    require_redesigns_agree,
    solve_subproblems_parallel,
)
from .replay import verify_ledger, verify_round
from .server import ContractServer
from .stats import ServingStats
from .workload import synthetic_subproblems

__all__ = [
    "CacheStats",
    "ContractCache",
    "ContractServer",
    "DeltaSolveState",
    "LRUCache",
    "RedesignStats",
    "ServingStats",
    "SolveDiagnostics",
    "SolverPool",
    "design_fingerprint",
    "require_redesigns_agree",
    "require_results_agree",
    "solve_subproblems_parallel",
    "subproblem_fingerprint",
    "synthetic_subproblems",
    "verify_ledger",
    "verify_round",
]
