"""Tolerance helpers for comparing utilities, compensations and bounds.

The contract-design pipeline threads float quantities (compensations,
utilities, slopes, Lemma 4.2/4.3 bounds) through long chains of
arithmetic, so exact ``==``/``!=`` comparisons are fragile: a sign flip
or an accumulated ulp in `core/cases.py` surfaces only as a subtly wrong
Fig. 8 curve.  Theory-lint rule REPRO001 therefore bans float equality
on such quantities and requires the helpers below instead.

Two tolerances are used throughout:

* ``ABS_TOL`` (``1e-12``) — the slack already granted by
  :class:`~repro.core.contract.Contract` when checking the Eq. (6)
  monotonicity constraint; used for "is this exactly zero/equal up to
  rounding" questions.
* ``REL_TOL`` (``1e-9``) — the relative slack used when certifying the
  Theorem 4.1 sandwich ``lower <= achieved <= upper``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "ABS_TOL",
    "REL_TOL",
    "close",
    "is_zero",
    "leq",
    "geq",
    "monotone_non_decreasing",
]

ABS_TOL = 1e-12
REL_TOL = 1e-9


def close(a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """Whether ``a`` and ``b`` agree up to the shared tolerances.

    This is the sanctioned replacement for ``a == b`` on utilities and
    compensations (theory-lint rule REPRO001).
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_zero(x: float, *, abs_tol: float = ABS_TOL) -> bool:
    """Whether ``x`` is zero up to absolute tolerance.

    Used for sentinel checks such as "is this worker honest"
    (``omega == 0`` in Eq. 14 reduces to the Eq. 11 honest utility).
    """
    return abs(x) <= abs_tol


def leq(a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """Whether ``a <= b`` up to tolerance (``a`` may exceed by the slack)."""
    return a <= b or close(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def geq(a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """Whether ``a >= b`` up to tolerance (``a`` may fall short by the slack)."""
    return a >= b or close(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def monotone_non_decreasing(values: Iterable[float], *, abs_tol: float = ABS_TOL) -> bool:
    """Whether a sequence never decreases by more than ``abs_tol``.

    This is the Eq. (6)/(9) contract constraint ``x_(l-1) <= x_l`` with
    the same slack :class:`~repro.core.contract.Contract` applies.
    """
    sequence: Sequence[float] = list(values)
    return all(
        later >= earlier - abs_tol
        for earlier, later in zip(sequence, sequence[1:])
    )
