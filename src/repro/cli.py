"""Command-line entry point: ``python -m repro`` / ``repro-experiments``.

Examples::

    python -m repro list
    python -m repro run fig8b --scale small
    python -m repro run all --scale paper --seed 7
    python -m repro run fig8c --parallel 2
    python -m repro solve --n-subjects 200 --parallel 2 --check
    python -m repro serve --rounds 3
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from .experiments.config import ExperimentConfig
from .experiments.runner import EXPERIMENTS, EXTENSIONS, run_all, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Dynamic Contract Design for Heterogenous "
            "Workers in Crowdsourcing for Quality Control' (ICDCS 2017)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment or 'all'")
    run_parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + sorted(EXTENSIONS) + ["all"],
        help="experiment id from DESIGN.md, an extension id, or 'all'",
    )
    run_parser.add_argument(
        "--extensions",
        action="store_true",
        help="with 'all': also run the ext_* extension experiments",
    )
    run_parser.add_argument(
        "--scale",
        choices=["paper", "small"],
        default="paper",
        help="trace scale (default: paper)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=7, help="trace/simulation seed (default: 7)"
    )
    run_parser.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help=(
            "serving-layer solver processes for the design solves; "
            "0 = serial in-process path (default: 0)"
        ),
    )
    from .obs.cli import add_obs_arguments, add_obs_out_argument

    add_obs_out_argument(run_parser)

    report_parser = subparsers.add_parser(
        "report", help="run experiments and write a markdown report"
    )
    report_parser.add_argument(
        "--out", default="report.md", help="output markdown path"
    )
    report_parser.add_argument(
        "--scale", choices=["paper", "small"], default="paper"
    )
    report_parser.add_argument("--seed", type=int, default=7)
    report_parser.add_argument("--parallel", type=int, default=0, metavar="N")
    report_parser.add_argument(
        "--no-extensions",
        action="store_true",
        help="omit the ext_* extension experiments",
    )
    add_obs_out_argument(report_parser)

    from .serving.cli import add_serve_arguments, add_solve_arguments

    solve_parser = subparsers.add_parser(
        "solve",
        help="pooled/cached contract solve over a synthetic population",
    )
    add_solve_arguments(solve_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the asyncio contract-serving marketplace demo",
    )
    add_serve_arguments(serve_parser)

    from .serving.cluster.cli import add_bench_serve_arguments

    bench_serve_parser = subparsers.add_parser(
        "bench-serve",
        help="closed-loop load benchmark against the sharded serving cluster",
    )
    add_bench_serve_arguments(bench_serve_parser)

    lint_parser = subparsers.add_parser(
        "lint",
        help=(
            "run the theory-lint static analyzer (REPRO001-REPRO009; "
            "--flow adds cross-module passes REPRO010-REPRO013)"
        ),
    )
    from .analysis.cli import add_lint_arguments

    add_lint_arguments(lint_parser)

    obs_parser = subparsers.add_parser(
        "obs",
        help="inspect observability dumps (report / validate / metrics)",
    )
    add_obs_arguments(obs_parser)
    return parser


def _config_for(args: argparse.Namespace) -> ExperimentConfig:
    parallel = getattr(args, "parallel", 0)
    if args.scale == "small":
        config = ExperimentConfig.small(seed=args.seed)
        if parallel:
            config = replace(config, parallel=parallel)
        return config
    return ExperimentConfig(scale="paper", seed=args.seed, parallel=parallel)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        from .analysis.cli import run_lint

        return run_lint(args)
    if args.command == "solve":
        from .serving.cli import run_solve

        return run_solve(args)
    if args.command == "serve":
        from .serving.cli import run_serve

        return run_serve(args)
    if args.command == "bench-serve":
        from .serving.cluster.cli import run_bench_serve

        return run_bench_serve(args)
    if args.command == "obs":
        from .obs.cli import run_obs

        return run_obs(args)
    if args.command == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        for experiment_id in EXTENSIONS:
            print(experiment_id)
        return 0

    from .obs.cli import obs_session

    config = _config_for(args)
    if args.command == "report":
        from .experiments.report import write_report

        with obs_session(args.obs_out):
            path = write_report(
                args.out,
                config=config,
                include_extensions=not args.no_extensions,
            )
        print(f"wrote {path}")
        return 0

    with obs_session(args.obs_out):
        if args.experiment == "all":
            results = run_all(config, include_extensions=args.extensions)
        else:
            results = [run_experiment(args.experiment, config)]

    all_pass = True
    for result in results:
        print(result.format())
        print()
        all_pass = all_pass and result.all_checks_pass
    return 0 if all_pass else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
