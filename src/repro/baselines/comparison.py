"""Policy comparison harness (drives the Fig. 8c experiment).

Runs several payment policies over the *same* population with the same
noise seed and reports aligned utility series, so differences reflect
the policies rather than sampling luck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from ..core.utility import RequesterObjective
from ..errors import SimulationError
from ..simulation.engine import MarketplaceSimulation
from ..simulation.ledger import SimulationLedger
from ..simulation.policies import PaymentPolicy
from ..workers.population import PopulationModel

__all__ = ["PolicyComparison", "compare_policies"]


@dataclass(frozen=True)
class PolicyComparison:
    """Aligned results of a multi-policy run.

    Attributes:
        ledgers: per-policy simulation ledgers.
        utility_series: per-policy per-round utility arrays.
    """

    ledgers: Dict[str, SimulationLedger]
    utility_series: Dict[str, np.ndarray]

    def total(self, name: str) -> float:
        """Total utility of one policy."""
        if name not in self.utility_series:
            raise SimulationError(f"unknown policy {name!r}")
        return float(self.utility_series[name].sum())

    def winner(self) -> str:
        """The policy with the highest total utility."""
        return max(self.utility_series, key=self.total)

    def margin(self, name_a: str, name_b: str) -> float:
        """Total-utility margin of ``name_a`` over ``name_b``."""
        return self.total(name_a) - self.total(name_b)


def compare_policies(
    population: PopulationModel,
    objective: RequesterObjective,
    policies: Mapping[str, PaymentPolicy],
    n_rounds: int = 20,
    seed: int = 0,
) -> PolicyComparison:
    """Run every policy over the same population and seed.

    Args:
        population: the assembled worker population.
        objective: the requester's parameters.
        policies: named policies to compare.
        n_rounds: rounds per policy.
        seed: shared feedback-noise seed (one generator per policy, all
            seeded identically, so noise draws align).

    Returns:
        The :class:`PolicyComparison`.
    """
    if not policies:
        raise SimulationError("at least one policy is required")
    ledgers: Dict[str, SimulationLedger] = {}
    series: Dict[str, np.ndarray] = {}
    for name, policy in policies.items():
        simulation = MarketplaceSimulation(
            population=population,
            objective=objective,
            policy=policy,
            seed=seed,
        )
        ledger = simulation.run(n_rounds)
        ledgers[name] = ledger
        series[name] = ledger.utility_series()
    return PolicyComparison(ledgers=ledgers, utility_series=series)
