"""Near-optimality comparators for the contract designer.

Two oracles bracket what any contract could achieve for one subject:

* :func:`continuum_optimal_utility` — the continuous-relaxation optimum:
  steering a worker to effort ``y`` costs at least the participation
  floor ``max(beta*y - omega*(psi(y) - psi(0)), 0)``, so the requester's
  utility is at most ``max_y { w*psi(y) - mu*floor(y) }``.  A dense scan
  of that envelope is the "true optimum" the designed contract should
  approach as the grid refines (the paper's Fig. 6 convergence claim).

* :func:`grid_search_contract` — exhaustive search over small monotone
  piecewise-linear contracts with discretized pay levels; exponential,
  so only usable at toy sizes, but makes no relaxation at all.  Tests
  and the oracle ablation bench use it to confirm the designer is near
  the discrete optimum too.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import Optional, Tuple

import numpy as np

from ..core.best_response import solve_best_response
from ..core.contract import Contract
from ..core.effort import QuadraticEffort
from ..errors import DesignError
from ..types import DiscretizationGrid, WorkerParameters

__all__ = ["continuum_optimal_utility", "GridSearchResult", "grid_search_contract"]


def continuum_optimal_utility(
    effort_function: QuadraticEffort,
    params: WorkerParameters,
    mu: float,
    feedback_weight: float,
    max_effort: float,
    n_grid: int = 10_000,
) -> Tuple[float, float]:
    """The continuous-relaxation optimum over target efforts.

    Args:
        effort_function: the worker's ``psi``.
        params: worker ``(beta, omega)``.
        mu: requester compensation weight.
        feedback_weight: the Eq. (5) weight ``w``.
        max_effort: right edge of the admissible effort region.
        n_grid: scan resolution.

    Returns:
        ``(optimal_utility, optimal_effort)``.
    """
    if mu <= 0.0:
        raise DesignError(f"mu must be positive, got {mu!r}")
    if max_effort <= 0.0:
        raise DesignError(f"max_effort must be positive, got {max_effort!r}")
    if n_grid < 2:
        raise DesignError(f"n_grid must be >= 2, got {n_grid!r}")
    efforts = np.linspace(0.0, max_effort, n_grid)
    feedback = np.asarray(effort_function(efforts))
    influence_reward = params.omega * (feedback - effort_function(0.0))
    pay_floor = np.maximum(params.beta * efforts - influence_reward, 0.0)
    utilities = feedback_weight * feedback - mu * pay_floor
    index = int(np.argmax(utilities))
    return float(utilities[index]), float(efforts[index])


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of the exhaustive discrete contract search.

    Attributes:
        contract: the best contract found.
        requester_utility: its utility under the worker's exact best
            response.
        n_evaluated: how many monotone contracts were scanned.
    """

    contract: Contract
    requester_utility: float
    n_evaluated: int


def grid_search_contract(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
    mu: float,
    feedback_weight: float,
    pay_levels: int = 8,
    max_pay: Optional[float] = None,
) -> GridSearchResult:
    """Exhaustively search monotone contracts on a coarse pay lattice.

    Compensations at the ``m+1`` breakpoints are drawn (monotonically)
    from ``pay_levels`` equispaced levels in ``[0, max_pay]``.  The
    search space is ``C(pay_levels + m, m + 1)``-ish; keep ``m`` small.

    Args:
        effort_function: the worker's ``psi``.
        grid: the effort discretization (small ``m``!).
        params: worker parameters.
        mu: requester compensation weight.
        feedback_weight: the Eq. (5) weight.
        pay_levels: lattice resolution.
        max_pay: largest pay level; defaults to ``beta * max_effort``
            (the honest participation cost of the whole region).
    """
    if pay_levels < 2:
        raise DesignError(f"pay_levels must be >= 2, got {pay_levels!r}")
    if grid.n_intervals > 6:
        raise DesignError(
            f"grid_search_contract is exponential; use n_intervals <= 6, "
            f"got {grid.n_intervals}"
        )
    if max_pay is None:
        max_pay = params.beta * grid.max_effort
    if max_pay <= 0.0:
        raise DesignError(f"max_pay must be positive, got {max_pay!r}")
    levels = np.linspace(0.0, max_pay, pay_levels)

    best_contract: Optional[Contract] = None
    best_utility = -float("inf")
    n_evaluated = 0
    # Monotone vectors of length m+1 over the lattice == multisets.
    for combo in combinations_with_replacement(levels, grid.n_intervals + 1):
        contract = Contract(
            grid=grid,
            effort_function=effort_function,
            compensations=tuple(combo),
        )
        response = solve_best_response(contract, params)
        utility = (
            feedback_weight * response.feedback - mu * response.compensation
        )
        n_evaluated += 1
        if utility > best_utility:
            best_utility = utility
            best_contract = contract
    return GridSearchResult(
        contract=best_contract,
        requester_utility=best_utility,
        n_evaluated=n_evaluated,
    )
