"""Baselines and comparators: oracles, policy comparison harness."""

from .comparison import PolicyComparison, compare_policies
from .oracle import GridSearchResult, continuum_optimal_utility, grid_search_contract

__all__ = [
    "PolicyComparison",
    "compare_policies",
    "GridSearchResult",
    "continuum_optimal_utility",
    "grid_search_contract",
]
