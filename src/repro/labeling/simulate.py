"""The labeling marketplace: contracts drive classification quality.

One round: the requester posts per-worker contracts (designed with the
paper's algorithm on the quadratic feedback approximation); each worker
best-responds with an effort and labels the batch; feedback = agreement
with the aggregated consensus; contracts pay on that feedback; the
requester's utility is the value of correct consensus labels minus
``mu`` times the pay.

This realizes the paper's Section VII plan to move the contract model
from review tasks to classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.contract import Contract
from ..core.designer import ContractDesigner, DesignerConfig
from ..errors import SimulationError
from .aggregate import labeling_accuracy, weighted_vote
from .tasks import TaskBatch, TaskGenerator
from .workers import LabelingWorker

__all__ = ["LabelingRoundResult", "LabelingMarket"]


@dataclass(frozen=True)
class LabelingRoundResult:
    """Outcome of one labeling round.

    Attributes:
        consensus_accuracy: consensus-vs-truth accuracy on the batch.
        worker_efforts: chosen efforts by worker.
        worker_pay: pay awarded by worker.
        total_pay: total compensation this round.
        requester_utility: ``value * correct_labels - mu * total_pay``.
    """

    consensus_accuracy: float
    worker_efforts: Dict[str, float]
    worker_pay: Dict[str, float]
    total_pay: float
    requester_utility: float


class LabelingMarket:
    """A labeling crowdsourcing market under dynamic contracts.

    Args:
        workers: the worker pool.
        weights: per-worker Eq. (5)-style weights (aggregation + design).
        mu: the requester's compensation weight.
        value_per_correct: requester value of one correct consensus label.
        designer_config: contract grid configuration.
        max_effort: cap on the contract effort region.
        seed: noise seed for labelling randomness.
    """

    def __init__(
        self,
        workers: Sequence[LabelingWorker],
        weights: Dict[str, float],
        mu: float = 1.0,
        value_per_correct: float = 1.0,
        designer_config: Optional[DesignerConfig] = None,
        max_effort: float = 8.0,
        seed: int = 0,
    ) -> None:
        if not workers:
            raise SimulationError("at least one worker is required")
        if mu <= 0.0:
            raise SimulationError(f"mu must be positive, got {mu!r}")
        if value_per_correct <= 0.0:
            raise SimulationError(
                f"value_per_correct must be positive, got {value_per_correct!r}"
            )
        if max_effort <= 0.0:
            raise SimulationError(f"max_effort must be positive, got {max_effort!r}")
        ids = [worker.worker_id for worker in workers]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate worker ids")
        self.workers = list(workers)
        self.weights = dict(weights)
        self.mu = mu
        self.value_per_correct = value_per_correct
        self.designer_config = (
            designer_config if designer_config is not None else DesignerConfig()
        )
        self.max_effort = max_effort
        self._rng = np.random.default_rng(seed)

    def design_contracts(self) -> Dict[str, Contract]:
        """One contract per worker via the paper's designer."""
        designer = ContractDesigner(mu=self.mu, config=self.designer_config)
        contracts: Dict[str, Contract] = {}
        for worker in self.workers:
            result = designer.design(
                worker.feedback_function,
                worker.params,
                feedback_weight=self.weights.get(worker.worker_id, 0.0),
                max_effort=self.max_effort,
            )
            contracts[worker.worker_id] = result.contract
        return contracts

    def flat_contracts(self, pay: float) -> Dict[str, Contract]:
        """Fixed-payment baseline: the same flat pay for everyone."""
        if pay < 0.0:
            raise SimulationError(f"pay must be >= 0, got {pay!r}")
        designer_config = self.designer_config
        contracts: Dict[str, Contract] = {}
        for worker in self.workers:
            grid = designer_config.grid_for(
                worker.feedback_function, max_effort=self.max_effort
            )
            contracts[worker.worker_id] = Contract.flat(
                grid, worker.feedback_function, pay=pay
            )
        return contracts

    def play_round(
        self, batch: TaskBatch, contracts: Dict[str, Contract]
    ) -> LabelingRoundResult:
        """Run one labeling round under the given contracts."""
        sheets = []
        efforts: Dict[str, float] = {}
        for worker in self.workers:
            contract = contracts.get(worker.worker_id)
            if contract is None:
                continue
            response = worker.choose_effort(contract)
            efforts[worker.worker_id] = response.effort
            sheets.append(worker.label(batch, response.effort, rng=self._rng))
        if not sheets:
            raise SimulationError("no worker had a contract; nothing to label")

        consensus = weighted_vote(sheets, self.weights)
        accuracy = labeling_accuracy(consensus, batch)

        pay: Dict[str, float] = {}
        for sheet in sheets:
            agreement = float(sheet.agreement_with(consensus))
            pay[sheet.worker_id] = contracts[sheet.worker_id].pay_for_feedback(
                agreement
            )
        total_pay = float(sum(pay.values()))
        utility = (
            self.value_per_correct * accuracy * len(batch) - self.mu * total_pay
        )
        return LabelingRoundResult(
            consensus_accuracy=accuracy,
            worker_efforts=efforts,
            worker_pay=pay,
            total_pay=total_pay,
            requester_utility=utility,
        )

    def run(
        self,
        generator: TaskGenerator,
        batch_size: int,
        n_rounds: int,
        contracts: Optional[Dict[str, Contract]] = None,
    ) -> List[LabelingRoundResult]:
        """Run several rounds under fixed contracts (designed if None)."""
        if n_rounds < 1:
            raise SimulationError(f"n_rounds must be >= 1, got {n_rounds!r}")
        posted = contracts if contracts is not None else self.design_contracts()
        return [
            self.play_round(generator.batch(batch_size), posted)
            for _ in range(n_rounds)
        ]
