"""Labeling workers: effort choice plus stochastic label production.

A labeling worker wraps the core best-response machinery (effort choice
against a posted contract, using the quadratic feedback approximation)
and adds the classification-specific part: actually producing labels.
Honest workers report their best guess; malicious workers *flip* their
guess toward a target label on a fraction of tasks (promoting one class
regardless of truth — the classification analogue of biased reviews).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.best_response import BestResponse, solve_best_response
from ..core.contract import Contract
from ..core.effort import QuadraticEffort
from ..errors import ModelError
from ..numerics import is_zero
from ..types import WorkerParameters
from .accuracy import AccuracyModel
from .tasks import TaskBatch

__all__ = ["LabelingWorker", "LabelSheet"]


@dataclass(frozen=True)
class LabelSheet:
    """One worker's labels for one batch.

    Attributes:
        worker_id: the labeller.
        labels: submitted labels, aligned with the batch's tasks.
        effort: the effort the worker chose.
    """

    worker_id: str
    labels: np.ndarray
    effort: float

    def agreement_with(self, reference: np.ndarray) -> int:
        """Number of labels agreeing with a reference labelling."""
        reference = np.asarray(reference, dtype=bool)
        if reference.shape != self.labels.shape:
            raise ModelError(
                f"reference shape {reference.shape} != labels shape "
                f"{self.labels.shape}"
            )
        return int(np.sum(self.labels == reference))


class LabelingWorker:
    """A worker on classification tasks.

    Args:
        worker_id: unique identifier.
        accuracy_model: the worker's true effort-to-accuracy curve.
        feedback_function: the quadratic approximation the contract was
            designed on (drives effort choice).
        beta: effort-cost weight.
        omega: influence weight (0 = honest).
        target_label: the label a malicious worker promotes.
        flip_rate: fraction of tasks a malicious worker forces to the
            target label, regardless of its own guess.
    """

    def __init__(
        self,
        worker_id: str,
        accuracy_model: AccuracyModel,
        feedback_function: QuadraticEffort,
        beta: float = 1.0,
        omega: float = 0.0,
        target_label: bool = True,
        flip_rate: float = 0.0,
    ) -> None:
        if not worker_id:
            raise ModelError("worker_id must be non-empty")
        if not 0.0 <= flip_rate <= 1.0:
            raise ModelError(f"flip_rate must lie in [0, 1], got {flip_rate!r}")
        if omega > 0.0 and is_zero(flip_rate):
            raise ModelError(
                "a malicious labeling worker (omega > 0) needs flip_rate > 0"
            )
        if is_zero(omega) and flip_rate > 0.0:
            raise ModelError("an honest labeling worker cannot flip labels")
        self.worker_id = worker_id
        self.accuracy_model = accuracy_model
        self.feedback_function = feedback_function
        self.params = (
            WorkerParameters.honest(beta=beta)
            if is_zero(omega)
            else WorkerParameters.malicious(beta=beta, omega=omega)
        )
        self.target_label = target_label
        self.flip_rate = flip_rate

    @property
    def is_malicious(self) -> bool:
        """Whether the worker promotes a target label."""
        return self.flip_rate > 0.0

    def choose_effort(self, contract: Contract) -> BestResponse:
        """Best-respond to the posted contract (core machinery)."""
        return solve_best_response(
            contract, self.params, effort_function=self.feedback_function
        )

    def label(
        self,
        batch: TaskBatch,
        effort: float,
        rng: Optional[np.random.Generator] = None,
    ) -> LabelSheet:
        """Produce labels for a batch at the given effort.

        Each task is answered correctly with the accuracy the model
        assigns to (effort, difficulty); malicious workers then force a
        ``flip_rate`` fraction of tasks to the target label.
        """
        if effort < 0.0:
            raise ModelError(f"effort must be >= 0, got {effort!r}")
        rng = rng if rng is not None else np.random.default_rng()
        accuracies = self.accuracy_model.accuracy_batch(
            effort, batch.difficulties()
        )
        truths = batch.truths()
        correct = rng.random(len(batch)) < accuracies
        labels = np.where(correct, truths, ~truths)
        if self.flip_rate > 0.0:
            forced = rng.random(len(batch)) < self.flip_rate
            labels = np.where(forced, self.target_label, labels)
        return LabelSheet(
            worker_id=self.worker_id,
            labels=labels.astype(bool),
            effort=effort,
        )
