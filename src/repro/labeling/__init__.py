"""Classification-task extension (the paper's Section VII plan)."""

from .accuracy import AccuracyModel, quadratic_feedback_approximation
from .aggregate import labeling_accuracy, majority_vote, weighted_vote
from .simulate import LabelingMarket, LabelingRoundResult
from .tasks import BinaryTask, TaskBatch, TaskGenerator
from .workers import LabelSheet, LabelingWorker

__all__ = [
    "AccuracyModel",
    "quadratic_feedback_approximation",
    "labeling_accuracy",
    "majority_vote",
    "weighted_vote",
    "LabelingMarket",
    "LabelingRoundResult",
    "BinaryTask",
    "TaskBatch",
    "TaskGenerator",
    "LabelSheet",
    "LabelingWorker",
]
