"""Binary labeling tasks (the paper's Section VII classification setting).

A requester posts batches of binary classification tasks (is this
review fake? does this image contain a product?).  Each task has a
latent ground-truth label and a difficulty in ``[0, 1)`` that attenuates
worker accuracy.  The generator is seeded and produces batches with a
configurable difficulty mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import DataError

__all__ = ["BinaryTask", "TaskBatch", "TaskGenerator"]


@dataclass(frozen=True)
class BinaryTask:
    """One binary classification task.

    Attributes:
        task_id: unique identifier.
        truth: the latent ground-truth label.
        difficulty: in ``[0, 1)``; 0 is trivial, values near 1 reduce
            every worker to coin-flipping.
    """

    task_id: str
    truth: bool
    difficulty: float = 0.0

    def __post_init__(self) -> None:
        if not self.task_id:
            raise DataError("task_id must be non-empty")
        if not 0.0 <= self.difficulty < 1.0:
            raise DataError(
                f"difficulty must lie in [0, 1), got {self.difficulty!r}"
            )


@dataclass(frozen=True)
class TaskBatch:
    """A batch of tasks labelled together in one round."""

    tasks: Sequence[BinaryTask]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise DataError("a task batch cannot be empty")
        ids = {task.task_id for task in self.tasks}
        if len(ids) != len(self.tasks):
            raise DataError("duplicate task ids in batch")

    def __len__(self) -> int:
        return len(self.tasks)

    def truths(self) -> np.ndarray:
        """Ground-truth labels as a boolean array."""
        return np.array([task.truth for task in self.tasks], dtype=bool)

    def difficulties(self) -> np.ndarray:
        """Per-task difficulties."""
        return np.array([task.difficulty for task in self.tasks], dtype=float)


class TaskGenerator:
    """Seeded generator of task batches.

    Args:
        mean_difficulty: Beta-distributed difficulty mean in ``(0, 1)``.
        concentration: Beta concentration; larger = tighter around the
            mean.
        positive_rate: probability a task's ground truth is ``True``.
        seed: numpy seed.
    """

    def __init__(
        self,
        mean_difficulty: float = 0.3,
        concentration: float = 8.0,
        positive_rate: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 < mean_difficulty < 1.0:
            raise DataError(
                f"mean_difficulty must lie in (0, 1), got {mean_difficulty!r}"
            )
        if concentration <= 0.0:
            raise DataError(f"concentration must be positive, got {concentration!r}")
        if not 0.0 <= positive_rate <= 1.0:
            raise DataError(f"positive_rate must lie in [0, 1], got {positive_rate!r}")
        self.mean_difficulty = mean_difficulty
        self.concentration = concentration
        self.positive_rate = positive_rate
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    def batch(self, size: int) -> TaskBatch:
        """Generate one batch of ``size`` tasks."""
        if size < 1:
            raise DataError(f"size must be >= 1, got {size!r}")
        alpha = self.mean_difficulty * self.concentration
        beta = (1.0 - self.mean_difficulty) * self.concentration
        difficulties = np.clip(
            self._rng.beta(alpha, beta, size=size), 0.0, 0.999
        )
        truths = self._rng.random(size) < self.positive_rate
        tasks: List[BinaryTask] = []
        for index in range(size):
            tasks.append(
                BinaryTask(
                    task_id=f"t{self._counter:07d}",
                    truth=bool(truths[index]),
                    difficulty=float(difficulties[index]),
                )
            )
            self._counter += 1
        return TaskBatch(tasks=tasks)
