"""Label aggregation: majority and weighted votes.

The requester combines the submitted label sheets into one consensus
labelling per batch.  The weighted vote uses the Eq. (5)-style feedback
weights — exactly the quantity the contract designer already maintains —
so the aggregation and payment layers share one notion of worker value.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import ModelError
from ..numerics import is_zero
from .tasks import TaskBatch
from .workers import LabelSheet

__all__ = ["majority_vote", "weighted_vote", "labeling_accuracy"]


def _stack(sheets: Sequence[LabelSheet]) -> np.ndarray:
    if not sheets:
        raise ModelError("at least one label sheet is required")
    lengths = {sheet.labels.shape[0] for sheet in sheets}
    if len(lengths) != 1:
        raise ModelError(f"label sheets disagree on batch size: {lengths}")
    return np.stack([sheet.labels for sheet in sheets])


def majority_vote(sheets: Sequence[LabelSheet]) -> np.ndarray:
    """Unweighted majority per task; ties break toward ``True``."""
    stacked = _stack(sheets)
    positives = stacked.sum(axis=0)
    return positives * 2 >= stacked.shape[0]


def weighted_vote(
    sheets: Sequence[LabelSheet],
    weights: Mapping[str, float],
) -> np.ndarray:
    """Weight each worker's vote; non-positive weights are ignored.

    Args:
        sheets: submitted label sheets.
        weights: per-worker vote weights (e.g. the requester's Eq. (5)
            feedback weights); workers missing from the mapping get
            weight zero.

    Returns:
        The consensus labelling; a task with zero total positive weight
        falls back to the unweighted majority.
    """
    stacked = _stack(sheets)
    vote_weights = np.array(
        [max(float(weights.get(sheet.worker_id, 0.0)), 0.0) for sheet in sheets]
    )
    if is_zero(float(vote_weights.sum())):
        return majority_vote(sheets)
    positive_mass = (stacked * vote_weights[:, None]).sum(axis=0)
    return positive_mass * 2 >= vote_weights.sum()


def labeling_accuracy(consensus: np.ndarray, batch: TaskBatch) -> float:
    """Fraction of consensus labels matching ground truth."""
    consensus = np.asarray(consensus, dtype=bool)
    truths = batch.truths()
    if consensus.shape != truths.shape:
        raise ModelError(
            f"consensus shape {consensus.shape} != batch size {truths.shape}"
        )
    return float(np.mean(consensus == truths))
