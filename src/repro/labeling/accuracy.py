"""Effort-to-accuracy model and its quadratic feedback approximation.

In the labeling extension, a worker's *feedback* for a batch is the
number of its labels that agree with the reference (expert/consensus)
labels — the classification analogue of review upvotes.  Accuracy rises
with effort with diminishing returns:

    p(y, d) = 0.5 + (p_max - 0.5) * (1 - exp(-y / scale)) * (1 - d)

(``d`` = task difficulty; zero effort is a coin flip, infinite effort
saturates at ``p_max`` attenuated by difficulty).  Expected batch
feedback ``n * E_d[p(y, d)]`` is then concave and increasing in effort,
so the paper's contract machinery applies once it is approximated by a
concave quadratic over the relevant effort region — precisely the
Section IV-B fitting step, with the saturating exponential playing the
role of the unknown true curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.effort import QuadraticEffort
from ..errors import ModelError
from ..fitting.quadratic import fit_concave_quadratic
from .tasks import TaskBatch

__all__ = ["AccuracyModel", "quadratic_feedback_approximation"]


@dataclass(frozen=True)
class AccuracyModel:
    """Saturating effort-to-accuracy curve.

    Attributes:
        p_max: asymptotic accuracy on a zero-difficulty task (in
            ``(0.5, 1]``).
        effort_scale: effort at which ~63% of the accuracy headroom is
            realized.
    """

    p_max: float = 0.95
    effort_scale: float = 2.0

    def __post_init__(self) -> None:
        if not 0.5 < self.p_max <= 1.0:
            raise ModelError(f"p_max must lie in (0.5, 1], got {self.p_max!r}")
        if self.effort_scale <= 0.0:
            raise ModelError(
                f"effort_scale must be positive, got {self.effort_scale!r}"
            )

    def accuracy(self, effort: float, difficulty: float = 0.0) -> float:
        """Probability of labelling one task correctly."""
        if effort < 0.0:
            raise ModelError(f"effort must be >= 0, got {effort!r}")
        if not 0.0 <= difficulty < 1.0:
            raise ModelError(f"difficulty must lie in [0, 1), got {difficulty!r}")
        headroom = (self.p_max - 0.5) * (1.0 - math.exp(-effort / self.effort_scale))
        return 0.5 + headroom * (1.0 - difficulty)

    def accuracy_batch(self, effort: float, difficulties: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`accuracy` over task difficulties."""
        if effort < 0.0:
            raise ModelError(f"effort must be >= 0, got {effort!r}")
        difficulties = np.asarray(difficulties, dtype=float)
        headroom = (self.p_max - 0.5) * (1.0 - math.exp(-effort / self.effort_scale))
        return 0.5 + headroom * (1.0 - difficulties)

    def expected_feedback(self, effort: float, batch: TaskBatch) -> float:
        """Expected number of reference-agreeing labels on a batch."""
        return float(self.accuracy_batch(effort, batch.difficulties()).sum())


def quadratic_feedback_approximation(
    model: AccuracyModel,
    batch_size: int,
    mean_difficulty: float,
    max_effort: float,
    n_points: int = 200,
) -> QuadraticEffort:
    """Fit the paper's concave quadratic to the labeling feedback curve.

    Samples the expected-batch-feedback curve
    ``y -> batch_size * E[p(y, d)]`` over ``[0, max_effort]`` and fits a
    constrained concave quadratic — the exact analogue of fitting
    review-trace points in Section IV-B.  The returned function is what
    the contract designer consumes.

    Args:
        model: the accuracy model.
        batch_size: tasks per round.
        mean_difficulty: mean task difficulty of the workload.
        max_effort: right edge of the effort region of interest.
        n_points: sampling resolution.
    """
    if batch_size < 1:
        raise ModelError(f"batch_size must be >= 1, got {batch_size!r}")
    if not 0.0 <= mean_difficulty < 1.0:
        raise ModelError(
            f"mean_difficulty must lie in [0, 1), got {mean_difficulty!r}"
        )
    if max_effort <= 0.0:
        raise ModelError(f"max_effort must be positive, got {max_effort!r}")
    if n_points < 3:
        raise ModelError(f"n_points must be >= 3, got {n_points!r}")
    efforts = np.linspace(0.0, max_effort, n_points)
    feedback = np.array(
        [
            batch_size * model.accuracy(float(y), mean_difficulty)
            for y in efforts
        ]
    )
    return fit_concave_quadratic(efforts, feedback)
