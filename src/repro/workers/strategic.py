"""Sophisticated malicious workers (the paper's Section VII future work).

The paper notes that malicious behaviour "may be temporary or targeted
in scope or masked through collusion" and plans to "account for more
sophisticated malicious workers".  This module implements the two
archetypes that stress a dynamic contract:

* :class:`CamouflagedWorker` — builds reputation by behaving honestly
  for a warm-up phase, then attacks (biased ratings, influence-motivated
  effort).  A static one-shot weighting keeps overpaying it after the
  flip; an online re-estimating requester catches it.
* :class:`IntermittentWorker` — alternates honest and attack phases on a
  fixed cycle, modelling "temporary" malice; exclusion-style responses
  (banning once flagged) forgo all of its honest-phase value.
"""

from __future__ import annotations

from ..core.effort import QuadraticEffort
from ..errors import ModelError
from ..types import WorkerParameters, WorkerType
from .base import WorkerAgent

__all__ = ["CamouflagedWorker", "IntermittentWorker"]


class CamouflagedWorker(WorkerAgent):
    """Honest-looking until round ``attack_round``, malicious after.

    During camouflage the agent rates truthfully and works purely for
    pay (``omega`` effectively 0); from ``attack_round`` on it applies
    its rating bias and values influence.

    Args:
        worker_id: unique identifier.
        effort_function: the worker's true ``psi``.
        beta: effort-cost weight.
        omega: influence weight once attacking.
        rating_bias: rating shift once attacking.
        attack_round: first round (0-based) of malicious behaviour.
        feedback_noise: std of realized-feedback noise.
    """

    def __init__(
        self,
        worker_id: str,
        effort_function: QuadraticEffort,
        beta: float = 1.0,
        omega: float = 0.5,
        rating_bias: float = 2.0,
        attack_round: int = 5,
        feedback_noise: float = 0.0,
    ) -> None:
        if omega <= 0.0:
            raise ModelError(f"omega must be positive, got {omega!r}")
        if attack_round < 0:
            raise ModelError(f"attack_round must be >= 0, got {attack_round!r}")
        super().__init__(
            worker_id=worker_id,
            params=WorkerParameters.honest(beta=beta),
            effort_function=effort_function,
            feedback_noise=feedback_noise,
        )
        self._honest_params = WorkerParameters.honest(beta=beta)
        self._attack_params = WorkerParameters.malicious(beta=beta, omega=omega)
        self.attack_round = attack_round
        self.attack_bias = rating_bias
        self._attacking = attack_round == 0
        self._sync_params()

    def _sync_params(self) -> None:
        self.params = self._attack_params if self._attacking else self._honest_params

    @property
    def is_attacking(self) -> bool:
        """Whether the agent is currently in its malicious phase."""
        return self._attacking

    def on_round(self, round_index: int) -> None:
        """Flip to attack mode once the camouflage phase ends."""
        self._attacking = round_index >= self.attack_round
        self._sync_params()

    @property
    def rating_bias_now(self) -> float:
        """Zero while camouflaged, the planted bias while attacking."""
        return self.attack_bias if self._attacking else 0.0

    @property
    def n_members(self) -> int:
        """A camouflaged worker acts alone."""
        return 1

    @property
    def worker_type(self) -> WorkerType:
        """Ground-truth class (the camouflage hides it from the
        requester, not from the evaluation)."""
        return WorkerType.NONCOLLUSIVE_MALICIOUS


class IntermittentWorker(WorkerAgent):
    """Alternates honest and attack phases on a fixed cycle.

    The cycle is ``honest_rounds`` of truthful work followed by
    ``attack_rounds`` of biased, influence-motivated work, repeating.

    Args:
        worker_id: unique identifier.
        effort_function: the worker's true ``psi``.
        beta: effort-cost weight.
        omega: influence weight during attack phases.
        rating_bias: rating shift during attack phases.
        honest_rounds: length of each honest phase (>= 1).
        attack_rounds: length of each attack phase (>= 1).
        feedback_noise: std of realized-feedback noise.
    """

    def __init__(
        self,
        worker_id: str,
        effort_function: QuadraticEffort,
        beta: float = 1.0,
        omega: float = 0.5,
        rating_bias: float = 2.0,
        honest_rounds: int = 3,
        attack_rounds: int = 2,
        feedback_noise: float = 0.0,
    ) -> None:
        if omega <= 0.0:
            raise ModelError(f"omega must be positive, got {omega!r}")
        if honest_rounds < 1 or attack_rounds < 1:
            raise ModelError("honest_rounds and attack_rounds must be >= 1")
        super().__init__(
            worker_id=worker_id,
            params=WorkerParameters.honest(beta=beta),
            effort_function=effort_function,
            feedback_noise=feedback_noise,
        )
        self._honest_params = WorkerParameters.honest(beta=beta)
        self._attack_params = WorkerParameters.malicious(beta=beta, omega=omega)
        self.attack_bias = rating_bias
        self.honest_rounds = honest_rounds
        self.attack_rounds = attack_rounds
        self._attacking = False

    @property
    def cycle_length(self) -> int:
        """Length of one honest+attack cycle."""
        return self.honest_rounds + self.attack_rounds

    @property
    def is_attacking(self) -> bool:
        """Whether the agent is currently in an attack phase."""
        return self._attacking

    def on_round(self, round_index: int) -> None:
        """Enter the phase the cycle dictates for this round."""
        position = round_index % self.cycle_length
        self._attacking = position >= self.honest_rounds
        self.params = (
            self._attack_params if self._attacking else self._honest_params
        )

    @property
    def rating_bias_now(self) -> float:
        """Bias only while attacking."""
        return self.attack_bias if self._attacking else 0.0

    @property
    def n_members(self) -> int:
        """An intermittent worker acts alone."""
        return 1

    @property
    def worker_type(self) -> WorkerType:
        """Ground-truth class."""
        return WorkerType.NONCOLLUSIVE_MALICIOUS
