"""Collusive communities as single meta-workers (Eq. 17 / Eq. 3).

A collusive community shares information and upvotes internally; the
paper designs *one* contract for the whole community and models it as a
meta-worker whose feedback is a concave function of the members' summed
effort.  The agent here owns the member list, best-responds with a total
effort, and reports an even per-member effort split (any split of the
sum is utility-equivalent under the meta model).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..core.best_response import BestResponse
from ..core.contract import Contract
from ..core.effort import QuadraticEffort
from ..errors import ModelError
from ..types import WorkerParameters, WorkerType
from .base import WorkerAgent

__all__ = ["CollusiveCommunity"]


class CollusiveCommunity(WorkerAgent):
    """A set of collusive workers acting as one meta-worker.

    Args:
        community_id: unique identifier of the community.
        member_ids: the member workers (>= 2).
        effort_function: the community's meta effort function
            ``psi_A`` mapping *summed* effort to *summed* feedback.
        beta: per-unit effort cost (identical across members, Eq. 17).
        omega: the community's shared influence weight.
        rating_bias: rating bias of the members' reviews.
        feedback_noise: std of realized-feedback noise on the sum.
        rating_noise: std of the observed rating-deviation noise.
    """

    def __init__(
        self,
        community_id: str,
        member_ids: Sequence[str],
        effort_function: QuadraticEffort,
        beta: float = 1.0,
        omega: float = 0.5,
        rating_bias: float = 2.0,
        feedback_noise: float = 0.0,
        rating_noise: float = 0.35,
    ) -> None:
        members = tuple(dict.fromkeys(member_ids))
        if len(members) < 2:
            raise ModelError(
                f"a collusive community needs >= 2 distinct members, got {members!r}"
            )
        if omega <= 0.0:
            raise ModelError(f"a collusive community needs omega > 0, got {omega!r}")
        super().__init__(
            worker_id=community_id,
            params=WorkerParameters.malicious(beta=beta, omega=omega, collusive=True),
            effort_function=effort_function,
            feedback_noise=feedback_noise,
            rating_noise=rating_noise,
        )
        self.member_ids: Tuple[str, ...] = members
        self.rating_bias = rating_bias

    @property
    def n_members(self) -> int:
        """Community size."""
        return len(self.member_ids)

    @property
    def worker_type(self) -> WorkerType:
        """Always :attr:`WorkerType.COLLUSIVE_MALICIOUS`."""
        return WorkerType.COLLUSIVE_MALICIOUS

    @property
    def n_partners(self) -> int:
        """Partners per member, the ``A_i`` of Eq. (5)."""
        return self.n_members - 1

    @property
    def rating_bias_now(self) -> float:
        """Community reviews carry the shared planted bias."""
        return self.rating_bias

    def split_effort(self, total_effort: float) -> Dict[str, float]:
        """Even per-member split of the community's total effort.

        Under the meta model only the *sum* matters (Eq. 3), so the even
        split is as good as any; it is also what the even per-member pay
        split of Fig. 8b implies.
        """
        if total_effort < 0.0:
            raise ModelError(f"total_effort must be >= 0, got {total_effort!r}")
        share = total_effort / self.n_members
        return {member_id: share for member_id in self.member_ids}

    def respond(self, contract: Contract) -> BestResponse:
        """Best-respond with the community's total effort.

        Identical machinery to the single-worker case: the meta-worker's
        ``psi_A`` plays the role of ``psi`` (Section IV-C: "a collusive
        community can be treated as a 'single meta-worker'").
        """
        return super().respond(contract)
