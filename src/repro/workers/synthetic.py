"""Synthetic agent populations for engine benchmarks and property tests.

:func:`repro.serving.workload.synthetic_subproblems` generates the
*requester-side* view of a large population (archetype-clustered design
subproblems); this module completes it with the *follower* side —
behavioural agents whose true effort functions and parameters match the
subproblems exactly — so a full :class:`~repro.simulation.engine.MarketplaceSimulation`
can run on it.  The trace-driven
:func:`~repro.workers.population.build_population` stays the fidelity
path for the paper's experiments; this builder is the scale path for
round-engine benchmarks, equivalence tests and smoke jobs.

Everything is a pure function of the arguments (the subproblem draws
are seeded, the agents are deterministic), which the engine's
bit-identical fast/legacy comparisons depend on.
"""

from __future__ import annotations

from ..errors import ModelError
from ..serving.workload import synthetic_subproblems
from .base import WorkerAgent
from .honest import HonestWorker
from .malicious import MaliciousWorker
from .population import ClassEffortFunctions, PopulationModel

__all__ = ["synthetic_population"]


def synthetic_population(
    n_subjects: int,
    n_archetypes: int = 16,
    seed: int = 0,
    malicious_fraction: float = 0.25,
    feedback_noise: float = 0.0,
    rating_noise: float = 0.35,
) -> PopulationModel:
    """A fully simulatable population over synthetic archetypes.

    Args:
        n_subjects: total subjects (one agent per subproblem).
        n_archetypes: distinct worker archetypes (see
            :func:`~repro.serving.workload.synthetic_subproblems`).
        seed: seed for the archetype and assignment draws.
        malicious_fraction: probability an archetype is malicious.
        feedback_noise: per-agent std of realized-feedback noise.
        rating_noise: per-agent std of the rating-deviation noise.

    Returns:
        A :class:`~repro.workers.population.PopulationModel` whose
        agents' true ``psi``/parameters equal the requester's fitted
        ones (the oracle-knowledge setting of Fig. 8), with evaluation
        weights taken from the subproblems and oracle malice labels.
    """
    if feedback_noise < 0.0:
        raise ModelError(
            f"feedback_noise must be >= 0, got {feedback_noise!r}"
        )
    subproblems = synthetic_subproblems(
        n_subjects=n_subjects,
        n_archetypes=n_archetypes,
        seed=seed,
        malicious_fraction=malicious_fraction,
    )

    agents: dict = {}
    weights: dict = {}
    malice: dict = {}
    for subproblem in subproblems:
        subject_id = subproblem.subject_id
        params = subproblem.params
        agent: WorkerAgent
        if params.worker_type.is_malicious:
            agent = MaliciousWorker(
                worker_id=subject_id,
                effort_function=subproblem.effort_function,
                beta=params.beta,
                omega=params.omega,
                feedback_noise=feedback_noise,
                rating_noise=rating_noise,
            )
            malice[subject_id] = 1.0
        else:
            agent = HonestWorker(
                worker_id=subject_id,
                effort_function=subproblem.effort_function,
                beta=params.beta,
                feedback_noise=feedback_noise,
                rating_noise=rating_noise,
            )
            malice[subject_id] = 0.0
        agents[subject_id] = agent
        weights[subject_id] = subproblem.feedback_weight

    # Class-level fits are per-archetype in this synthetic world; the
    # first honest/malicious psi stands in for the Section IV-B class
    # functions (nothing in the engine consumes them, but downstream
    # diagnostics expect a complete PopulationModel).
    honest_psi = next(
        (
            s.effort_function
            for s in subproblems
            if not s.params.worker_type.is_malicious
        ),
        subproblems[0].effort_function,
    )
    malicious_psi = next(
        (
            s.effort_function
            for s in subproblems
            if s.params.worker_type.is_malicious
        ),
        subproblems[0].effort_function,
    )
    return PopulationModel(
        subproblems=subproblems,
        agents=agents,
        weights=weights,
        class_functions=ClassEffortFunctions(
            honest=honest_psi,
            noncollusive=malicious_psi,
            collusive_member=malicious_psi,
        ),
        malice=malice,
    )
