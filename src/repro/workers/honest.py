"""Honest worker agents (Eq. 11): pay minus effort cost, no agenda."""

from __future__ import annotations

from ..core.effort import QuadraticEffort
from ..types import WorkerParameters, WorkerType
from .base import WorkerAgent

__all__ = ["HonestWorker"]


class HonestWorker(WorkerAgent):
    """A worker maximizing ``c - beta * y`` (the ``omega = 0`` case).

    Args:
        worker_id: unique identifier.
        effort_function: the worker's true ``psi``.
        beta: effort-cost weight.
        feedback_noise: std of realized-feedback noise.
        rating_noise: std of the observed rating-deviation noise.
    """

    def __init__(
        self,
        worker_id: str,
        effort_function: QuadraticEffort,
        beta: float = 1.0,
        feedback_noise: float = 0.0,
        rating_noise: float = 0.35,
    ) -> None:
        super().__init__(
            worker_id=worker_id,
            params=WorkerParameters.honest(beta=beta),
            effort_function=effort_function,
            feedback_noise=feedback_noise,
            rating_noise=rating_noise,
        )

    @property
    def n_members(self) -> int:
        """An honest worker is a single person."""
        return 1

    @property
    def worker_type(self) -> WorkerType:
        """Always :attr:`WorkerType.HONEST`."""
        return WorkerType.HONEST
