"""Non-collusive malicious worker agents (Eq. 14).

Besides pay minus effort cost, a malicious worker values the *influence*
of its (biased) reviews: utility gains ``omega * q``.  The agent also
carries its planted rating bias so the simulation can realize biased
review scores the requester grades against expert consensus.
"""

from __future__ import annotations

from ..core.effort import QuadraticEffort
from ..errors import ModelError
from ..types import WorkerParameters, WorkerType
from .base import WorkerAgent

__all__ = ["MaliciousWorker"]


class MaliciousWorker(WorkerAgent):
    """A worker maximizing ``c + omega * q - beta * y``.

    Args:
        worker_id: unique identifier.
        effort_function: the worker's true ``psi``.
        beta: effort-cost weight.
        omega: influence weight (must be positive — otherwise use
            :class:`~repro.workers.honest.HonestWorker`).
        rating_bias: how far above truth the worker rates its targets.
        feedback_noise: std of realized-feedback noise.
        rating_noise: std of the observed rating-deviation noise.
    """

    def __init__(
        self,
        worker_id: str,
        effort_function: QuadraticEffort,
        beta: float = 1.0,
        omega: float = 0.5,
        rating_bias: float = 2.0,
        feedback_noise: float = 0.0,
        rating_noise: float = 0.35,
    ) -> None:
        if omega <= 0.0:
            raise ModelError(
                f"a malicious worker needs omega > 0, got {omega!r}; "
                "use HonestWorker for omega == 0"
            )
        super().__init__(
            worker_id=worker_id,
            params=WorkerParameters.malicious(beta=beta, omega=omega),
            effort_function=effort_function,
            feedback_noise=feedback_noise,
            rating_noise=rating_noise,
        )
        self.rating_bias = rating_bias

    @property
    def n_members(self) -> int:
        """A non-collusive malicious worker acts alone."""
        return 1

    @property
    def worker_type(self) -> WorkerType:
        """Always :attr:`WorkerType.NONCOLLUSIVE_MALICIOUS`."""
        return WorkerType.NONCOLLUSIVE_MALICIOUS

    @property
    def rating_bias_now(self) -> float:
        """Malicious ratings are shifted by the planted bias."""
        return self.rating_bias
