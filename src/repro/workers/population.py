"""Population assembly: trace -> agents, weights and subproblems.

This module wires the substrates together exactly the way Fig. 4's
strategy framework prescribes:

1. cluster malicious workers into collusive communities (Section IV-A),
2. fit class-level effort functions from trace observables
   (Section IV-B),
3. compute each subject's Eq. (5) feedback weight from its rating
   deviation, estimated malice probability and partner count,
4. emit one :class:`~repro.core.decomposition.Subproblem` per honest
   worker, per non-collusive malicious worker and per community,
   plus matching behavioural agents for the simulation.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..collusion.clustering import CollusionClusters
from ..core.decomposition import Subproblem
from ..core.effort import QuadraticEffort
from ..core.utility import RequesterObjective
from ..data.dataset import ReviewTrace
from ..errors import FitError, ModelError
from ..estimation.expertise import EffortProxy
from ..fitting.quadratic import fit_concave_quadratic
from ..types import WorkerParameters, WorkerType
from .base import WorkerAgent
from .collusive import CollusiveCommunity
from .honest import HonestWorker
from .malicious import MaliciousWorker

__all__ = ["BehaviorConfig", "ClassEffortFunctions", "PopulationModel", "build_population", "fit_class_functions"]


@dataclass(frozen=True)
class BehaviorConfig:
    """Behavioural parameters assumed for each worker class.

    The trace does not reveal ``beta``/``omega`` (they are preference
    parameters, not observables); the paper likewise fixes them
    (``beta = 1`` in Section IV's numeric study).

    Attributes:
        beta: effort-cost weight, shared by all classes.
        omega_noncollusive: influence weight of non-collusive malicious
            workers.
        omega_collusive: influence weight of collusive communities.
        feedback_noise: std of realized-feedback noise in simulation.
    """

    beta: float = 1.0
    omega_noncollusive: float = 0.3
    omega_collusive: float = 0.3
    feedback_noise: float = 0.0

    def __post_init__(self) -> None:
        if self.beta <= 0.0:
            raise ModelError(f"beta must be positive, got {self.beta!r}")
        if self.omega_noncollusive <= 0.0 or self.omega_collusive <= 0.0:
            raise ModelError("malicious omegas must be positive")
        if self.feedback_noise < 0.0:
            raise ModelError("feedback_noise must be >= 0")


@dataclass(frozen=True)
class ClassEffortFunctions:
    """Fitted effort functions, one per worker class (Section IV-B).

    Attributes:
        honest: per-worker ``psi`` for honest workers.
        noncollusive: per-worker ``psi`` for non-collusive malicious.
        collusive_member: per-*member* ``psi`` for collusive workers
            (the Table III "C-Mal" fit on one point per worker); the
            per-community meta function ``psi_A`` is derived from it via
            :meth:`~repro.core.effort.QuadraticEffort.community_scaled`.
    """

    honest: QuadraticEffort
    noncollusive: QuadraticEffort
    collusive_member: QuadraticEffort

    def community_function(self, n_members: int) -> QuadraticEffort:
        """The Eq. (3) meta function for a community of ``n_members``."""
        return self.collusive_member.community_scaled(n_members)


def fit_class_functions(
    trace: ReviewTrace,
    proxy: EffortProxy,
    clusters: CollusionClusters,
) -> ClassEffortFunctions:
    """Fit the three class-level effort functions from observables.

    Every fit uses one (mean effort, mean feedback) point per worker —
    the paper's "18,176 / 1,312 / 212 data points".  The per-community
    meta function of Eq. (3) is *derived* from the per-member collusive
    fit (``psi_A(Y) = n * psi(Y / n)``) rather than fitted across
    communities: a cross-community fit degenerates to a line because
    both summed effort and summed feedback scale with community size.
    """
    honest_ids = trace.worker_ids(WorkerType.HONEST)
    honest_x, honest_y = proxy.class_points(trace, honest_ids)
    honest_fit = fit_concave_quadratic(honest_x, honest_y)

    ncm_x, ncm_y = proxy.class_points(trace, sorted(clusters.noncollusive))
    ncm_fit = fit_concave_quadratic(ncm_x, ncm_y)

    collusive_ids = sorted(
        worker for community in clusters.communities for worker in community
    )
    cm_x, cm_y = proxy.class_points(trace, collusive_ids)
    cm_fit = fit_concave_quadratic(cm_x, cm_y)
    return ClassEffortFunctions(
        honest=honest_fit, noncollusive=ncm_fit, collusive_member=cm_fit
    )


@dataclass
class PopulationModel:
    """Everything the requester knows about the worker population.

    Attributes:
        subproblems: one per subject (worker or community), the direct
            input of :func:`~repro.core.decomposition.solve_subproblems`.
        agents: behavioural agents keyed by subject id (the simulation's
            follower side).
        weights: Eq. (5) feedback weight per subject.
        class_functions: the fitted per-class effort functions.
        deviations: mean |rating - expert| per subject (diagnostics).
        malice: the e_mal estimate per subject.
    """

    subproblems: List[Subproblem]
    agents: Dict[str, WorkerAgent]
    weights: Dict[str, float]
    class_functions: ClassEffortFunctions
    deviations: Dict[str, float] = field(default_factory=dict)
    malice: Dict[str, float] = field(default_factory=dict)

    def subjects_of_type(self, worker_type: WorkerType) -> List[str]:
        """Subject ids whose parameters carry the given class."""
        return [
            subproblem.subject_id
            for subproblem in self.subproblems
            if subproblem.params.worker_type is worker_type
        ]

    def subproblem_of(self, subject_id: str) -> Subproblem:
        """Look up one subject's subproblem."""
        for subproblem in self.subproblems:
            if subproblem.subject_id == subject_id:
                return subproblem
        raise ModelError(f"unknown subject {subject_id!r}")


#: Headroom multiplier on the observed effort maximum when capping the
#: contract grid: the contract may ask for somewhat more effort than the
#: workers have historically shown, but not arbitrarily more.
_EFFORT_CAP_HEADROOM = 1.25


def _class_effort_caps(
    trace: ReviewTrace, proxy: EffortProxy, clusters: CollusionClusters
) -> Dict[str, float]:
    """Effort-grid caps for the individual-worker classes.

    The 99th percentile of observed per-worker efforts times a small
    headroom factor.  (Communities get per-community caps from their own
    members' observed efforts.)  This pins the
    Section III-A discretization to "the effort region of workers"
    rather than to the fitted parabola's potentially enormous increasing
    range.
    """
    honest_x, _ = proxy.class_points(trace, trace.worker_ids(WorkerType.HONEST))
    ncm_x, _ = proxy.class_points(trace, sorted(clusters.noncollusive))
    caps: Dict[str, float] = {}
    for name, values in (("honest", honest_x), ("noncollusive", ncm_x)):
        if np.asarray(values).size == 0:
            raise ModelError(f"no observed efforts to cap the {name} grid with")
        caps[name] = _EFFORT_CAP_HEADROOM * float(
            np.percentile(np.asarray(values), 99)
        )
    return caps


def _per_worker_fit(
    trace: ReviewTrace,
    proxy: EffortProxy,
    worker_id: str,
    min_reviews: int,
):
    """Fit one worker's own concave quadratic from its review scatter.

    Returns ``(psi, effort_cap)`` or ``None`` when the history is too
    thin or the fit degenerates (the caller falls back to the class
    fit).
    """
    efforts, upvotes = proxy.worker_points(trace, worker_id)
    if efforts.size < min_reviews:
        return None
    try:
        psi = fit_concave_quadratic(efforts, upvotes)
    except FitError:
        return None
    cap = _EFFORT_CAP_HEADROOM * float(np.percentile(efforts, 99))
    if cap <= 0.0:
        return None
    return psi, cap


def _mean_rating_deviation(trace: ReviewTrace, worker_ids: Sequence[str]) -> float:
    """Mean |rating - expert consensus| across the workers' reviews."""
    deviations: List[float] = []
    for worker_id in worker_ids:
        for review in trace.reviews_of(worker_id):
            expert = trace.products[review.product_id].expert_score
            deviations.append(abs(review.rating - expert))
    if not deviations:
        return float("inf")
    return float(np.mean(deviations))


def build_population(
    trace: ReviewTrace,
    clusters: CollusionClusters,
    proxy: EffortProxy,
    malice_estimates: Mapping[str, float],
    objective: RequesterObjective,
    behavior: Optional[BehaviorConfig] = None,
    honest_subset: Optional[Sequence[str]] = None,
    true_functions: Optional[ClassEffortFunctions] = None,
    per_worker_fits: bool = False,
    min_reviews_for_fit: int = 15,
) -> PopulationModel:
    """Assemble the population model from trace-derived knowledge.

    Args:
        trace: the review trace.
        clusters: collusive clustering over the malicious workers.
        proxy: the effort-proxy estimator.
        malice_estimates: per-worker ``e_mal`` estimates.
        objective: the requester's parameters.
        behavior: behavioural class parameters (defaults used if None).
        honest_subset: optionally restrict honest workers to this subset
            (full-trace runs with 18k honest subproblems are expensive;
            the paper's Fig. 8 likewise samples).
        true_functions: the agents' true effort functions; defaults to
            the fitted ones (self-consistent world).  Pass the
            generator's ground truth to study model-misfit effects.
        per_worker_fits: fit an individual ``psi`` for every honest
            worker with at least ``min_reviews_for_fit`` reviews (the
            paper's Fig. 8a treatment), falling back to the class fit
            for thin histories or degenerate fits.
        min_reviews_for_fit: history floor for a per-worker fit.

    Returns:
        The assembled :class:`PopulationModel`.
    """
    behavior = behavior if behavior is not None else BehaviorConfig()
    fitted = fit_class_functions(trace, proxy, clusters)
    acting = true_functions if true_functions is not None else fitted
    weight_params = objective.weight_params
    caps = _class_effort_caps(trace, proxy, clusters)
    if min_reviews_for_fit < 3:
        raise ModelError(
            f"min_reviews_for_fit must be >= 3, got {min_reviews_for_fit!r}"
        )

    subproblems: List[Subproblem] = []
    agents: Dict[str, WorkerAgent] = {}
    weights: Dict[str, float] = {}
    deviations: Dict[str, float] = {}
    malice: Dict[str, float] = {}

    honest_ids = (
        list(honest_subset)
        if honest_subset is not None
        else trace.worker_ids(WorkerType.HONEST)
    )
    for worker_id in honest_ids:
        if trace.reviewers[worker_id].worker_type is not WorkerType.HONEST:
            raise ModelError(f"worker {worker_id!r} in honest_subset is not honest")
        deviation = _mean_rating_deviation(trace, [worker_id])
        e_mal = float(malice_estimates.get(worker_id, 0.0))
        weight = weight_params.weight_from_deviation(
            deviation, malice_probability=e_mal
        )
        worker_psi, worker_cap = fitted.honest, caps["honest"]
        if per_worker_fits:
            individual = _per_worker_fit(
                trace, proxy, worker_id, min_reviews_for_fit
            )
            if individual is not None:
                worker_psi, worker_cap = individual
        subproblems.append(
            Subproblem(
                subject_id=worker_id,
                effort_function=worker_psi,
                params=WorkerParameters.honest(beta=behavior.beta),
                feedback_weight=weight,
                max_effort=worker_cap,
            )
        )
        agents[worker_id] = HonestWorker(
            worker_id=worker_id,
            effort_function=(
                worker_psi if per_worker_fits and true_functions is None
                else acting.honest
            ),
            beta=behavior.beta,
            feedback_noise=behavior.feedback_noise,
        )
        weights[worker_id] = weight
        deviations[worker_id] = deviation
        malice[worker_id] = e_mal

    for worker_id in sorted(clusters.noncollusive):
        deviation = _mean_rating_deviation(trace, [worker_id])
        e_mal = float(malice_estimates.get(worker_id, 1.0))
        weight = weight_params.weight_from_deviation(
            deviation, malice_probability=e_mal
        )
        subproblems.append(
            Subproblem(
                subject_id=worker_id,
                effort_function=fitted.noncollusive,
                params=WorkerParameters.malicious(
                    beta=behavior.beta, omega=behavior.omega_noncollusive
                ),
                feedback_weight=weight,
                max_effort=caps["noncollusive"],
            )
        )
        agents[worker_id] = MaliciousWorker(
            worker_id=worker_id,
            effort_function=acting.noncollusive,
            beta=behavior.beta,
            omega=behavior.omega_noncollusive,
            # The agent rates the way its trace history shows: its bias
            # is the observed mean deviation.  Subtle malicious workers
            # stay subtle in simulation — which is exactly what lets the
            # dynamic policy (and online re-estimation) harvest them.
            rating_bias=deviation if math.isfinite(deviation) else 2.0,
            feedback_noise=behavior.feedback_noise,
        )
        weights[worker_id] = weight
        deviations[worker_id] = deviation
        malice[worker_id] = e_mal

    for index, community in enumerate(clusters.communities):
        community_id = f"community{index:03d}"
        members = sorted(community)
        meta_function = fitted.community_function(len(members))
        acting_meta = acting.community_function(len(members))
        member_x, _ = proxy.class_points(trace, members)
        community_cap = (
            _EFFORT_CAP_HEADROOM * float(member_x.sum()) if member_x.size else None
        )
        deviation = _mean_rating_deviation(trace, members)
        e_mal = float(
            np.mean([malice_estimates.get(member, 1.0) for member in members])
        )
        weight = weight_params.weight_from_deviation(
            deviation,
            malice_probability=e_mal,
            n_partners=len(members) - 1,
        )
        subproblems.append(
            Subproblem(
                subject_id=community_id,
                effort_function=meta_function,
                params=WorkerParameters.malicious(
                    beta=behavior.beta,
                    omega=behavior.omega_collusive,
                    collusive=True,
                ),
                feedback_weight=weight,
                member_ids=tuple(members),
                max_effort=community_cap,
            )
        )
        agents[community_id] = CollusiveCommunity(
            community_id=community_id,
            member_ids=members,
            effort_function=acting_meta,
            beta=behavior.beta,
            omega=behavior.omega_collusive,
            rating_bias=deviation if math.isfinite(deviation) else 2.0,
            feedback_noise=behavior.feedback_noise,
        )
        weights[community_id] = weight
        deviations[community_id] = deviation
        malice[community_id] = e_mal

    return PopulationModel(
        subproblems=subproblems,
        agents=agents,
        weights=weights,
        class_functions=fitted,
        deviations=deviations,
        malice=malice,
    )
