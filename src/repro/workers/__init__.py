"""Behavioural worker agents and population assembly."""

from .base import ResponseCache, WorkerAgent, respond_batch
from .collusive import CollusiveCommunity
from .columnar import (
    WORKER_TYPE_CODES,
    WORKER_TYPE_ORDER,
    ColumnarPopulation,
    ColumnarResponseCache,
    synthetic_columnar,
)
from .honest import HonestWorker
from .malicious import MaliciousWorker
from .strategic import CamouflagedWorker, IntermittentWorker
from .population import (
    BehaviorConfig,
    ClassEffortFunctions,
    PopulationModel,
    build_population,
    fit_class_functions,
)
from .synthetic import synthetic_population

__all__ = [
    "WORKER_TYPE_CODES",
    "WORKER_TYPE_ORDER",
    "ColumnarPopulation",
    "ColumnarResponseCache",
    "ResponseCache",
    "WorkerAgent",
    "respond_batch",
    "synthetic_columnar",
    "synthetic_population",
    "CollusiveCommunity",
    "HonestWorker",
    "MaliciousWorker",
    "CamouflagedWorker",
    "IntermittentWorker",
    "BehaviorConfig",
    "ClassEffortFunctions",
    "PopulationModel",
    "build_population",
    "fit_class_functions",
]
