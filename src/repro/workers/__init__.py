"""Behavioural worker agents and population assembly."""

from .base import WorkerAgent
from .collusive import CollusiveCommunity
from .honest import HonestWorker
from .malicious import MaliciousWorker
from .strategic import CamouflagedWorker, IntermittentWorker
from .population import (
    BehaviorConfig,
    ClassEffortFunctions,
    PopulationModel,
    build_population,
    fit_class_functions,
)

__all__ = [
    "WorkerAgent",
    "CollusiveCommunity",
    "HonestWorker",
    "MaliciousWorker",
    "CamouflagedWorker",
    "IntermittentWorker",
    "BehaviorConfig",
    "ClassEffortFunctions",
    "PopulationModel",
    "build_population",
    "fit_class_functions",
]
