"""Behavioural worker agents (the follower side of the game).

Agents wrap the paper's worker model for use by the marketplace
simulation: each agent owns its *true* effort function (which can differ
from the requester's fitted one), its ``(beta, omega)`` parameters, and
a noisy feedback realization — the requester only ever observes the
realized feedback, never the effort.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.best_response import BestResponse, solve_best_response
from ..core.contract import Contract
from ..core.effort import QuadraticEffort
from ..errors import ModelError
from ..numerics import is_zero
from ..types import WorkerParameters

__all__ = ["ResponseCache", "WorkerAgent", "respond_batch"]

#: Per-subject entry of a cross-round best-response cache: the contract
#: the response was solved against, the parameters and true ``psi`` in
#: force at solve time, and the response itself.  An entry is valid only
#: while all three still hold (contract/psi by identity, parameters by
#: value — strategic agents swap their parameter objects between
#: rounds).
ResponseCache = Dict[str, Tuple[Contract, WorkerParameters, QuadraticEffort, BestResponse]]


class WorkerAgent(abc.ABC):
    """A worker (or meta-worker) participating in repeated tasks.

    Args:
        worker_id: unique identifier.
        params: the agent's ``(beta, omega)`` utility parameters.
        effort_function: the agent's true ``psi``.
        feedback_noise: std of the noise on realized feedback.
    """

    def __init__(
        self,
        worker_id: str,
        params: WorkerParameters,
        effort_function: QuadraticEffort,
        feedback_noise: float = 0.0,
        rating_noise: float = 0.35,
    ) -> None:
        if not worker_id:
            raise ModelError("worker_id must be non-empty")
        if feedback_noise < 0.0:
            raise ModelError(f"feedback_noise must be >= 0, got {feedback_noise!r}")
        if rating_noise < 0.0:
            raise ModelError(f"rating_noise must be >= 0, got {rating_noise!r}")
        self.worker_id = worker_id
        self.params = params
        self.effort_function = effort_function
        self.feedback_noise = feedback_noise
        self.rating_noise = rating_noise

    def respond(self, contract: Contract) -> BestResponse:
        """Best-respond to a posted contract using the *true* psi."""
        return solve_best_response(
            contract, self.params, effort_function=self.effort_function
        )

    def response_key(self, contract: Contract) -> Tuple[object, ...]:
        """Dedup key under which this agent's best response may be shared.

        :func:`respond_batch` solves one best response per distinct key
        and fans it out — sound because :meth:`respond` is a pure
        function of ``(agent class, contract, true psi, parameters)``
        for every agent in this package.  A subclass whose ``respond``
        depends on additional state must override this to include that
        state (or return a unique key to opt out of sharing).
        """
        return (type(self), id(contract), id(self.effort_function), self.params)

    @property
    def needs_feedback_draw(self) -> bool:
        """Whether :meth:`realize_feedback` consumes one generator draw."""
        return not is_zero(self.feedback_noise)

    @property
    def needs_rating_draw(self) -> bool:
        """Whether :meth:`rating_deviation` consumes one generator draw."""
        return not is_zero(self.rating_noise)

    @staticmethod
    def realize_feedback_batch(
        expected: np.ndarray, noise_scales: np.ndarray, draws: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`realize_feedback` over stacked subjects.

        Bit-identical to the scalar path: ``expected + scale * z``
        clamped at zero, where ``z`` is the subject's standard-normal
        draw.  Callers must zero ``noise_scales`` (and not consume a
        draw) for agents whose ``needs_feedback_draw`` is false — the
        scalar path skips the generator entirely for them.
        """
        return np.maximum(expected + noise_scales * draws, 0.0)

    @staticmethod
    def rating_deviation_batch(
        biases: np.ndarray, noise_scales: np.ndarray, draws: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`rating_deviation` over stacked subjects.

        ``|bias + scale * z|``, with the same zero-scale convention as
        :meth:`realize_feedback_batch` for agents that draw no noise.
        """
        return np.abs(biases + noise_scales * draws)

    def on_round(self, round_index: int) -> None:
        """Hook called by the engine at the start of every round.

        Stationary agents ignore it; strategic agents (e.g. camouflaged
        malicious workers) use it to switch behaviour over time.
        """

    @property
    def rating_bias_now(self) -> float:
        """The agent's current rating bias over the expert consensus.

        Honest agents rate truthfully (zero bias); malicious agents
        override this with their planted bias.
        """
        return 0.0

    def rating_deviation(
        self, rng: Optional[np.random.Generator] = None
    ) -> float:
        """One observed |review score - expert consensus| sample.

        This is what the requester actually sees each round and feeds
        into the Eq. (5) accuracy term when estimating online.
        """
        bias = self.rating_bias_now
        if rng is None or is_zero(self.rating_noise):
            return abs(bias)
        return abs(bias + float(rng.normal(0.0, self.rating_noise)))

    def realize_feedback(
        self, effort: float, rng: Optional[np.random.Generator] = None
    ) -> float:
        """The feedback the platform observes for the chosen effort.

        Noise-free expectation is ``psi(effort)``; with a generator, a
        zero-mean Gaussian perturbation is added and the result clamped
        at zero (feedback is a count).
        """
        if effort < 0.0:
            raise ModelError(f"effort must be >= 0, got {effort!r}")
        expected = float(self.effort_function(effort))
        if rng is None or is_zero(self.feedback_noise):
            return max(expected, 0.0)
        return max(expected + float(rng.normal(0.0, self.feedback_noise)), 0.0)

    @property
    @abc.abstractmethod
    def n_members(self) -> int:
        """Number of underlying human workers (1 unless a community)."""

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"{type(self).__name__}(id={self.worker_id!r}, "
            f"beta={self.params.beta}, omega={self.params.omega})"
        )


def respond_batch(
    agents: Sequence[WorkerAgent],
    contracts: Sequence[Contract],
    cache: Optional[ResponseCache] = None,
) -> List[BestResponse]:
    """Best responses for many (agent, contract) pairs, solved once per
    distinct :meth:`WorkerAgent.response_key`.

    Real populations collapse onto a few archetypes sharing effort
    functions, parameters *and* (via serving dedup or the designer's
    candidate cache) contract objects, so a thousand-subject round needs
    only a handful of Eq. (30) solves.  Responses are exact object
    reuses, so results are bit-identical to calling ``respond`` per
    agent.

    Args:
        agents: the responding agents, aligned with ``contracts``.
        contracts: the posted contract per agent.
        cache: optional cross-call (cross-round) cache keyed by worker
            id; entries are validated against the agent's current
            contract/psi (identity) and parameters (value) and refreshed
            on mismatch, so strategic agents that mutate their
            parameters between rounds can never be served stale
            responses.
    """
    if len(agents) != len(contracts):
        raise ModelError(
            f"got {len(agents)} agents for {len(contracts)} contracts"
        )
    shared: Dict[Tuple[object, ...], BestResponse] = {}
    responses: List[BestResponse] = []
    for agent, contract in zip(agents, contracts):
        if cache is not None:
            entry = cache.get(agent.worker_id)
            if (
                entry is not None
                and entry[0] is contract
                and entry[1] == agent.params
                and entry[2] is agent.effort_function
            ):
                responses.append(entry[3])
                continue
        key = agent.response_key(contract)
        response = shared.get(key)
        if response is None:
            # Deliberate scalar fallback: this IS the memoized batch
            # layer — one Eq. (30) solve per distinct response_key, not
            # per subject.
            response = agent.respond(contract)  # noqa: REPRO010
            shared[key] = response
        if cache is not None:
            cache[agent.worker_id] = (
                contract,
                agent.params,
                agent.effort_function,
                response,
            )
        responses.append(response)
    return responses
