"""Behavioural worker agents (the follower side of the game).

Agents wrap the paper's worker model for use by the marketplace
simulation: each agent owns its *true* effort function (which can differ
from the requester's fitted one), its ``(beta, omega)`` parameters, and
a noisy feedback realization — the requester only ever observes the
realized feedback, never the effort.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..core.best_response import BestResponse, solve_best_response
from ..core.contract import Contract
from ..core.effort import QuadraticEffort
from ..errors import ModelError
from ..numerics import is_zero
from ..types import WorkerParameters

__all__ = ["WorkerAgent"]


class WorkerAgent(abc.ABC):
    """A worker (or meta-worker) participating in repeated tasks.

    Args:
        worker_id: unique identifier.
        params: the agent's ``(beta, omega)`` utility parameters.
        effort_function: the agent's true ``psi``.
        feedback_noise: std of the noise on realized feedback.
    """

    def __init__(
        self,
        worker_id: str,
        params: WorkerParameters,
        effort_function: QuadraticEffort,
        feedback_noise: float = 0.0,
        rating_noise: float = 0.35,
    ) -> None:
        if not worker_id:
            raise ModelError("worker_id must be non-empty")
        if feedback_noise < 0.0:
            raise ModelError(f"feedback_noise must be >= 0, got {feedback_noise!r}")
        if rating_noise < 0.0:
            raise ModelError(f"rating_noise must be >= 0, got {rating_noise!r}")
        self.worker_id = worker_id
        self.params = params
        self.effort_function = effort_function
        self.feedback_noise = feedback_noise
        self.rating_noise = rating_noise

    def respond(self, contract: Contract) -> BestResponse:
        """Best-respond to a posted contract using the *true* psi."""
        return solve_best_response(
            contract, self.params, effort_function=self.effort_function
        )

    def on_round(self, round_index: int) -> None:
        """Hook called by the engine at the start of every round.

        Stationary agents ignore it; strategic agents (e.g. camouflaged
        malicious workers) use it to switch behaviour over time.
        """

    @property
    def rating_bias_now(self) -> float:
        """The agent's current rating bias over the expert consensus.

        Honest agents rate truthfully (zero bias); malicious agents
        override this with their planted bias.
        """
        return 0.0

    def rating_deviation(
        self, rng: Optional[np.random.Generator] = None
    ) -> float:
        """One observed |review score - expert consensus| sample.

        This is what the requester actually sees each round and feeds
        into the Eq. (5) accuracy term when estimating online.
        """
        bias = self.rating_bias_now
        if rng is None or is_zero(self.rating_noise):
            return abs(bias)
        return abs(bias + float(rng.normal(0.0, self.rating_noise)))

    def realize_feedback(
        self, effort: float, rng: Optional[np.random.Generator] = None
    ) -> float:
        """The feedback the platform observes for the chosen effort.

        Noise-free expectation is ``psi(effort)``; with a generator, a
        zero-mean Gaussian perturbation is added and the result clamped
        at zero (feedback is a count).
        """
        if effort < 0.0:
            raise ModelError(f"effort must be >= 0, got {effort!r}")
        expected = float(self.effort_function(effort))
        if rng is None or is_zero(self.feedback_noise):
            return max(expected, 0.0)
        return max(expected + float(rng.normal(0.0, self.feedback_noise)), 0.0)

    @property
    @abc.abstractmethod
    def n_members(self) -> int:
        """Number of underlying human workers (1 unless a community)."""

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"{type(self).__name__}(id={self.worker_id!r}, "
            f"beta={self.params.beta}, omega={self.params.omega})"
        )
