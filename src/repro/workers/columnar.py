"""Columnar (structure-of-arrays) population state.

A :class:`~repro.workers.population.PopulationModel` is a list of
per-subject Python objects; at 10M subjects the round engine spends its
time (and memory) traversing objects, not computing.  This module holds
the same population as contiguous NumPy columns — psi coefficients,
utility parameters, evaluation weights, noise scales, malice scores,
worker-type codes, community ids and exclusion masks — so a round is
pure array passes (see ``fast_columnar_step`` in
:mod:`repro.simulation.engine`).

Two code systems make the hot path object-free:

* **design archetypes** — ``np.unique`` over the packed design matrix
  (fitted psi, params, weight, effort cap, membership size).  Contract
  design runs once per archetype; ``archetype_codes`` fans contracts
  back out to subjects.  This is the column-slice analogue of the
  serving fingerprint (which hashes exactly these fields, membership
  aside — see :mod:`repro.serving.fingerprint`).
* **response archetypes** — ``np.unique`` over the behavioural columns
  (true psi, params).  Best responses are solved once per
  (contract, response archetype) pair in :meth:`ColumnarPopulation.respond_unique`.

The legacy object API stays available through lazy views:
``columnar.subproblems``, ``columnar.agents``, ``columnar.weights`` and
``columnar.malice`` materialize on first access (sharing one psi/params
object per archetype), so :func:`~repro.simulation.engine.legacy_step`
runs unmodified on a columnar store — which is how the bit-identity
contracts cross-verify the columnar kernel.

Only stationary agent classes (honest / malicious / collusive) can be
held columnar: strategic workers mutate their parameters per round,
which contradicts frozen columns, so :meth:`ColumnarPopulation.from_population`
rejects them.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core.best_response import solve_best_response
from ..core.contract import Contract
from ..core.decomposition import Subproblem
from ..core.effort import QuadraticEffort
from ..errors import ModelError
from ..types import WorkerParameters, WorkerType
from .base import WorkerAgent
from .collusive import CollusiveCommunity
from .honest import HonestWorker
from .malicious import MaliciousWorker
from .population import ClassEffortFunctions, PopulationModel

__all__ = [
    "WORKER_TYPE_ORDER",
    "WORKER_TYPE_CODES",
    "ColumnarPopulation",
    "ColumnarResponseCache",
    "synthetic_columnar",
]

#: Integer encoding of :class:`~repro.types.WorkerType` used by the
#: ``type_codes`` column (enum declaration order; stable by definition).
WORKER_TYPE_ORDER: Tuple[WorkerType, ...] = tuple(WorkerType)
WORKER_TYPE_CODES: Dict[WorkerType, int] = {
    worker_type: code for code, worker_type in enumerate(WORKER_TYPE_ORDER)
}

#: Cross-round cache of deduplicated best responses, keyed by
#: (contract code, response-archetype code) and validated by contract
#: identity — a redesign that swaps the posted contract object re-solves.
ColumnarResponseCache = Dict[Tuple[int, int], Tuple[Contract, float, float]]

#: ``max_effort`` is optional; ``None`` is encoded as this sentinel in
#: the packed design matrix (valid caps are strictly positive) so that
#: ``np.unique`` groups capless rows together (NaN would never compare
#: equal and explode the archetype count).
_NO_MAX_EFFORT = -1.0

#: Agent classes whose behaviour is a pure function of frozen columns.
_COLUMNAR_AGENT_TYPES = (HonestWorker, MaliciousWorker, CollusiveCommunity)


def unique_rows(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise unique grouping, ordered exactly as ``np.unique(axis=0)``.

    ``np.unique(..., axis=0)`` consolidates each row into a structured
    scalar and *sorts the full rows field by field* — a measurable
    fraction of ``from_population`` at 10M subjects.  This helper gets
    the same grouping from a single void-dtype byte view (one flat
    ``np.unique`` over ``V{itemsize}`` scalars, no per-field
    comparisons) and then reorders the handful of unique rows to the
    value-lexicographic order the old call produced, so codes and
    representatives are drop-in identical.

    Two IEEE details make byte equality match value equality here:
    ``-0.0`` is canonicalized to ``+0.0`` (``matrix + 0.0``) before
    viewing, and the packed matrices are NaN-free by construction
    (``max_effort`` uses the :data:`_NO_MAX_EFFORT` sentinel).

    Args:
        matrix: a 2-D ``float64`` matrix (one row per subject).

    Returns:
        ``(representatives, codes)`` — the first-occurrence row index of
        each unique row (sorted lexicographically by value, ``int64``)
        and the per-row inverse codes, bit-identical to what
        ``np.unique(matrix, axis=0, return_index=True,
        return_inverse=True)`` yields.
    """
    if matrix.ndim != 2:
        raise ModelError(
            f"unique_rows needs a 2-D matrix, got shape {matrix.shape!r}"
        )
    canonical = np.ascontiguousarray(matrix + 0.0)
    row_bytes = canonical.dtype.itemsize * canonical.shape[1]
    void_view = canonical.view(f"V{row_bytes}").reshape(-1)
    _, first_rows, inverse = np.unique(
        void_view, return_index=True, return_inverse=True
    )
    # Byte order sorts negative doubles after positive ones; re-rank the
    # (few) unique rows by value-lexicographic order, columns left to
    # right, to reproduce the structured sort of np.unique(axis=0).
    unique_values = canonical[first_rows]
    order = np.lexsort(unique_values.T[::-1])
    rank = np.empty(order.shape[0], dtype=np.int64)
    rank[order] = np.arange(order.shape[0], dtype=np.int64)
    representatives = np.ascontiguousarray(
        first_rows[order], dtype=np.int64
    )
    codes = np.ascontiguousarray(
        rank[inverse.reshape(-1)], dtype=np.int64
    )
    return representatives, codes


def _float_column(values: object, n: int, name: str) -> np.ndarray:
    column = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    if column.shape != (n,):
        raise ModelError(
            f"column {name!r} must have shape ({n},), got {column.shape!r}"
        )
    column.flags.writeable = False
    return column


def _int_column(values: object, n: int, name: str) -> np.ndarray:
    column = np.ascontiguousarray(np.asarray(values, dtype=np.int64))
    if column.shape != (n,):
        raise ModelError(
            f"column {name!r} must have shape ({n},), got {column.shape!r}"
        )
    column.flags.writeable = False
    return column


class _LazyAgents(Mapping[str, WorkerAgent]):
    """Dict-compatible view building ``WorkerAgent`` objects on demand."""

    def __init__(self, store: "ColumnarPopulation") -> None:
        self._store = store
        self._built: Dict[str, WorkerAgent] = {}

    def __getitem__(self, subject_id: str) -> WorkerAgent:
        agent = self._built.get(subject_id)
        if agent is None:
            agent = self._store._build_agent(self._store.index_of(subject_id))
            self._built[subject_id] = agent
        return agent

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.subject_ids())

    def __len__(self) -> int:
        return self._store.n_subjects


class ColumnarPopulation:
    """A population held as contiguous per-field NumPy arrays.

    All columns are full-length (one slot per subject, in subproblem
    order) and frozen (``writeable=False``) except the ``excluded``
    base mask.  Design state is mutated only through
    :meth:`update_design_columns`, which swaps whole columns and
    invalidates the archetype caches — exactly the hook the
    column-slice delta redesign diffs against.

    Args:
        r2, r1, r0: the requester's *fitted* psi coefficients (design
            side, per subject).
        act_r2, act_r1, act_r0: the subjects' *true* psi coefficients
            (behaviour side; equal to the fitted ones in the oracle
            setting).
        beta, omega: utility parameters (shared by both sides, as in
            every population builder).
        design_weight: Eq. (5) weight the *designer* sees
            (``subproblem.feedback_weight``).
        eval_weight: Eq. (5) weight the *requester's book* uses
            (``population.weights``); equal to ``design_weight`` in all
            synthetic worlds.
        max_effort: per-subject effort-grid cap; NaN encodes "no cap".
        type_codes: :data:`WORKER_TYPE_CODES` per subject.
        e_mal: oracle/estimated malice scores (the ``malice`` dict).
        feedback_noise, rating_noise, rating_bias: behavioural noise
            model per subject.
        n_members: workers behind each subject (communities > 1).
        community_ids: index into ``communities`` or -1 for individuals.
        communities: member-id tuples for collusive meta-workers.
        subject_ids: explicit ids, or ``None`` to derive ids from
            ``id_format`` (saves ~80 MB of Python strings at 10M
            subjects for formulaic populations).
        id_format: ``str.format`` template used when ``subject_ids`` is
            ``None``.
        class_functions: Section IV-B class-level psi fits carried for
            ``PopulationModel`` compatibility.
        deviations: optional diagnostic rating-deviation estimates.
    """

    def __init__(
        self,
        *,
        r2: object,
        r1: object,
        r0: object,
        act_r2: object,
        act_r1: object,
        act_r0: object,
        beta: object,
        omega: object,
        design_weight: object,
        eval_weight: object,
        max_effort: object,
        type_codes: object,
        e_mal: object,
        feedback_noise: object,
        rating_noise: object,
        rating_bias: object,
        n_members: object,
        community_ids: object,
        communities: Sequence[Tuple[str, ...]] = (),
        subject_ids: Optional[Sequence[str]] = None,
        id_format: str = "w{index:05d}",
        class_functions: Optional[ClassEffortFunctions] = None,
        deviations: Optional[Dict[str, float]] = None,
    ) -> None:
        first = np.asarray(r2, dtype=np.float64)
        n = int(first.shape[0]) if first.ndim == 1 else -1
        if n < 1:
            raise ModelError(
                f"columnar population needs >= 1 subject, got shape {first.shape!r}"
            )
        self.r2 = _float_column(r2, n, "r2")
        self.r1 = _float_column(r1, n, "r1")
        self.r0 = _float_column(r0, n, "r0")
        self.act_r2 = _float_column(act_r2, n, "act_r2")
        self.act_r1 = _float_column(act_r1, n, "act_r1")
        self.act_r0 = _float_column(act_r0, n, "act_r0")
        self.beta = _float_column(beta, n, "beta")
        self.omega = _float_column(omega, n, "omega")
        self.design_weight = _float_column(design_weight, n, "design_weight")
        self.eval_weight = _float_column(eval_weight, n, "eval_weight")
        self.max_effort = _float_column(max_effort, n, "max_effort")
        self.type_codes = _int_column(type_codes, n, "type_codes")
        if self.type_codes.size and (
            self.type_codes.min() < 0
            or self.type_codes.max() >= len(WORKER_TYPE_ORDER)
        ):
            raise ModelError("type_codes contains values outside WorkerType range")
        self.e_mal = _float_column(e_mal, n, "e_mal")
        self.feedback_noise = _float_column(feedback_noise, n, "feedback_noise")
        self.rating_noise = _float_column(rating_noise, n, "rating_noise")
        self.rating_bias = _float_column(rating_bias, n, "rating_bias")
        self.n_members = _int_column(n_members, n, "n_members")
        self.community_ids = _int_column(community_ids, n, "community_ids")
        self.communities: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(members) for members in communities
        )
        if self.community_ids.size and self.community_ids.max() >= len(
            self.communities
        ):
            raise ModelError("community_ids references a missing community")
        #: Base exclusion mask (the store's own, before policy/departure
        #: masks); the one writable column.
        self.excluded = np.zeros(n, dtype=bool)
        self._n = n
        self._subject_ids: Optional[List[str]] = (
            list(subject_ids) if subject_ids is not None else None
        )
        if self._subject_ids is not None and len(self._subject_ids) != n:
            raise ModelError(
                f"subject_ids must have length {n}, got {len(self._subject_ids)}"
            )
        self._id_format = id_format
        self._invalidate()
        self.class_functions = (
            class_functions
            if class_functions is not None
            else self._default_class_functions()
        )
        self.deviations: Dict[str, float] = dict(deviations or {})

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def n_subjects(self) -> int:
        """Number of subjects (rows) in the store."""
        return self._n

    def subject_id(self, index: int) -> str:
        """The id of the subject at ``index`` (O(1), no materialization)."""
        if self._subject_ids is not None:
            return self._subject_ids[index]
        return self._id_format.format(index=index)

    def subject_ids(self) -> List[str]:
        """All subject ids, materialized once and cached."""
        if self._subject_ids is None:
            self._subject_ids = [
                self._id_format.format(index=index) for index in range(self._n)
            ]
        return self._subject_ids

    def index_of(self, subject_id: str) -> int:
        """Row index of ``subject_id`` (O(n) dict build on first use)."""
        if self._index_of is None:
            self._index_of = {
                sid: index for index, sid in enumerate(self.subject_ids())
            }
        try:
            return self._index_of[subject_id]
        except KeyError:
            raise ModelError(f"unknown subject id {subject_id!r}") from None

    # ------------------------------------------------------------------
    # archetypes
    # ------------------------------------------------------------------

    def design_matrix(self) -> np.ndarray:
        """The packed per-subject design key (everything contract design
        reads): fitted psi, params, type, designer weight, effort cap
        (``None`` encoded as a sentinel) and membership size.  Two
        subjects with equal rows receive identical contracts under every
        policy, which is what archetype dedup and the column-slice delta
        redesign rely on."""
        if self._design_matrix is None:
            capped = np.where(
                np.isnan(self.max_effort), _NO_MAX_EFFORT, self.max_effort
            )
            matrix = np.column_stack(
                [
                    self.r2,
                    self.r1,
                    self.r0,
                    self.beta,
                    self.omega,
                    self.type_codes.astype(np.float64),
                    self.design_weight,
                    capped,
                    self.n_members.astype(np.float64),
                ]
            )
            matrix.flags.writeable = False
            self._design_matrix = matrix
        return self._design_matrix

    def _design_archetypes(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._arch_codes is None:
            representatives, codes = unique_rows(self.design_matrix())
            self._arch_codes = codes
            self._arch_reps = representatives
        assert self._arch_reps is not None
        return self._arch_codes, self._arch_reps

    @property
    def archetype_codes(self) -> np.ndarray:
        """Per-subject design-archetype index (``int64``, shape (n,))."""
        return self._design_archetypes()[0]

    @property
    def archetype_representatives(self) -> np.ndarray:
        """One representative row index per design archetype."""
        return self._design_archetypes()[1]

    @property
    def n_archetypes(self) -> int:
        """Number of distinct design archetypes."""
        return int(self.archetype_representatives.shape[0])

    def archetype_subproblems(self) -> List[Subproblem]:
        """One designer :class:`Subproblem` per design archetype.

        Subject ids are the representatives' real ids, so serving
        fingerprints and solution keys stay meaningful; psi/params
        objects are the shared archetype objects.
        """
        if self._arch_subproblems is None:
            subproblems = []
            for rep in self.archetype_representatives.tolist():
                subproblems.append(self._build_subproblem(rep))
            self._arch_subproblems = subproblems
        return self._arch_subproblems

    def _response_archetypes(self) -> np.ndarray:
        if self._resp_codes is None:
            matrix = np.column_stack(
                [
                    self.act_r2,
                    self.act_r1,
                    self.act_r0,
                    self.beta,
                    self.omega,
                    self.type_codes.astype(np.float64),
                ]
            )
            representatives, codes = unique_rows(matrix)
            self._resp_codes = codes
            self._resp_reps = representatives
        return self._resp_codes

    @property
    def response_codes(self) -> np.ndarray:
        """Per-subject behaviour-archetype index (true psi + params)."""
        return self._response_archetypes()

    @property
    def n_response_archetypes(self) -> int:
        """Number of distinct behaviour archetypes."""
        self._response_archetypes()
        assert self._resp_reps is not None
        return int(self._resp_reps.shape[0])

    def _response_objects(
        self, code: int
    ) -> Tuple[QuadraticEffort, WorkerParameters]:
        objects = self._resp_objects.get(code)
        if objects is None:
            self._response_archetypes()
            assert self._resp_reps is not None
            row = int(self._resp_reps[code])
            psi = QuadraticEffort(
                r2=float(self.act_r2[row]),
                r1=float(self.act_r1[row]),
                r0=float(self.act_r0[row]),
            )
            objects = (psi, self._params_at(row))
            self._resp_objects[code] = objects
        return objects

    def response_archetype_table(self) -> Dict[str, np.ndarray]:
        """Packed behaviour-archetype rows (one per response code).

        Everything :meth:`_response_objects` reads, gathered at the
        representative rows: true psi coefficients, params and worker
        type code.  Small (K rows, not n) and picklable, so a shard
        process can rebuild identical ``(QuadraticEffort,
        WorkerParameters)`` pairs without holding the full population.
        """
        self._response_archetypes()
        assert self._resp_reps is not None
        reps = self._resp_reps
        return {
            "act_r2": np.ascontiguousarray(self.act_r2[reps]),
            "act_r1": np.ascontiguousarray(self.act_r1[reps]),
            "act_r0": np.ascontiguousarray(self.act_r0[reps]),
            "beta": np.ascontiguousarray(self.beta[reps]),
            "omega": np.ascontiguousarray(self.omega[reps]),
            "type_codes": np.ascontiguousarray(self.type_codes[reps]),
        }

    def respond_unique(
        self,
        contracts: Sequence[Contract],
        contract_codes: np.ndarray,
        rows: np.ndarray,
        cache: Optional[ColumnarResponseCache] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Deduplicated best responses for the subjects at ``rows``.

        Solves Eq. (30) once per distinct (contract, behaviour
        archetype) pair and fans the scalar results back out — the
        columnar analogue of :func:`repro.workers.base.respond_batch`,
        with ``np.unique`` over a packed integer key replacing the
        per-agent grouping loop.

        Args:
            contracts: the archetype contract table.
            contract_codes: per-row contract index into ``contracts``.
            rows: subject row indices to respond for.
            cache: optional cross-round response cache (validated by
                contract identity).

        Returns:
            ``(efforts, expected_feedback)`` arrays aligned with
            ``rows``; the expectation is evaluated through the true psi
            exactly as the scalar ``realize_feedback`` does.
        """
        response_codes = self.response_codes[rows]
        n_response = self.n_response_archetypes
        packed = contract_codes.astype(np.int64) * n_response + response_codes
        unique_keys, inverse = np.unique(packed, return_inverse=True)
        efforts = np.empty(unique_keys.shape[0], dtype=np.float64)
        expected = np.empty(unique_keys.shape[0], dtype=np.float64)
        for slot, key in enumerate(unique_keys.tolist()):
            contract_code = key // n_response
            response_code = key % n_response
            contract = contracts[contract_code]
            cache_key = (contract_code, response_code)
            entry = cache.get(cache_key) if cache is not None else None
            if entry is not None and entry[0] is contract:
                efforts[slot] = entry[1]
                expected[slot] = entry[2]
                continue
            psi, params = self._response_objects(response_code)
            response = solve_best_response(
                contract, params, effort_function=psi
            )
            effort = response.effort
            expectation = float(psi(effort))
            efforts[slot] = effort
            expected[slot] = expectation
            if cache is not None:
                cache[cache_key] = (contract, effort, expectation)
        return efforts[inverse.reshape(-1)], expected[inverse.reshape(-1)]

    # ------------------------------------------------------------------
    # lazy object views (legacy API compatibility)
    # ------------------------------------------------------------------

    def _params_at(self, row: int) -> WorkerParameters:
        worker_type = WORKER_TYPE_ORDER[int(self.type_codes[row])]
        if worker_type is WorkerType.HONEST:
            return WorkerParameters.honest(beta=float(self.beta[row]))
        return WorkerParameters.malicious(
            beta=float(self.beta[row]),
            omega=float(self.omega[row]),
            collusive=worker_type is WorkerType.COLLUSIVE_MALICIOUS,
        )

    def _member_ids_at(self, row: int) -> Tuple[str, ...]:
        community = int(self.community_ids[row])
        if community >= 0:
            return self.communities[community]
        return (self.subject_id(row),)

    def _build_subproblem(self, row: int) -> Subproblem:
        code = int(self.archetype_codes[row])
        psi = self._arch_psis.get(code)
        if psi is None:
            psi = QuadraticEffort(
                r2=float(self.r2[row]),
                r1=float(self.r1[row]),
                r0=float(self.r0[row]),
            )
            self._arch_psis[code] = psi
        params = self._arch_params.get(code)
        if params is None:
            params = self._params_at(row)
            self._arch_params[code] = params
        cap = float(self.max_effort[row])
        return Subproblem(
            subject_id=self.subject_id(row),
            effort_function=psi,
            params=params,
            feedback_weight=float(self.design_weight[row]),
            member_ids=self._member_ids_at(row),
            max_effort=None if np.isnan(cap) else cap,
        )

    def _acting_psi(self, row: int) -> QuadraticEffort:
        code = int(self.response_codes[row])
        psi = self._resp_psis.get(code)
        if psi is None:
            psi = QuadraticEffort(
                r2=float(self.act_r2[row]),
                r1=float(self.act_r1[row]),
                r0=float(self.act_r0[row]),
            )
            self._resp_psis[code] = psi
        return psi

    def _build_agent(self, row: int) -> WorkerAgent:
        worker_type = WORKER_TYPE_ORDER[int(self.type_codes[row])]
        subject_id = self.subject_id(row)
        psi = self._acting_psi(row)
        if worker_type is WorkerType.HONEST:
            return HonestWorker(
                worker_id=subject_id,
                effort_function=psi,
                beta=float(self.beta[row]),
                feedback_noise=float(self.feedback_noise[row]),
                rating_noise=float(self.rating_noise[row]),
            )
        if worker_type is WorkerType.NONCOLLUSIVE_MALICIOUS:
            return MaliciousWorker(
                worker_id=subject_id,
                effort_function=psi,
                beta=float(self.beta[row]),
                omega=float(self.omega[row]),
                rating_bias=float(self.rating_bias[row]),
                feedback_noise=float(self.feedback_noise[row]),
                rating_noise=float(self.rating_noise[row]),
            )
        return CollusiveCommunity(
            community_id=subject_id,
            member_ids=self._member_ids_at(row),
            effort_function=psi,
            beta=float(self.beta[row]),
            omega=float(self.omega[row]),
            rating_bias=float(self.rating_bias[row]),
            feedback_noise=float(self.feedback_noise[row]),
            rating_noise=float(self.rating_noise[row]),
        )

    @property
    def subproblems(self) -> List[Subproblem]:
        """Per-subject designer subproblems (materialized lazily, psi
        and params objects shared per archetype)."""
        if self._subproblems is None:
            self._subproblems = [
                self._build_subproblem(row) for row in range(self._n)
            ]
        return self._subproblems

    @property
    def agents(self) -> Mapping[str, WorkerAgent]:
        """Lazy ``{subject_id: WorkerAgent}`` view (legacy loop API)."""
        if self._agents is None:
            self._agents = _LazyAgents(self)
        return self._agents

    @property
    def weights(self) -> Dict[str, float]:
        """Evaluation weights as the legacy dict (materialized lazily)."""
        if self._weights is None:
            self._weights = {
                self.subject_id(row): float(self.eval_weight[row])
                for row in range(self._n)
            }
        return self._weights

    @property
    def malice(self) -> Dict[str, float]:
        """Malice scores as the legacy dict (materialized lazily)."""
        if self._malice is None:
            self._malice = {
                self.subject_id(row): float(self.e_mal[row])
                for row in range(self._n)
            }
        return self._malice

    def _default_class_functions(self) -> ClassEffortFunctions:
        honest_row = malicious_row = None
        for row in range(self._n):
            malicious = WORKER_TYPE_ORDER[int(self.type_codes[row])].is_malicious
            if not malicious and honest_row is None:
                honest_row = row
            if malicious and malicious_row is None:
                malicious_row = row
            if honest_row is not None and malicious_row is not None:
                break
        honest_psi = self._build_subproblem(
            honest_row if honest_row is not None else 0
        ).effort_function
        malicious_psi = self._build_subproblem(
            malicious_row if malicious_row is not None else 0
        ).effort_function
        return ClassEffortFunctions(
            honest=honest_psi,
            noncollusive=malicious_psi,
            collusive_member=malicious_psi,
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_population(cls, model: PopulationModel) -> "ColumnarPopulation":
        """Pack an object population into columns.

        Raises:
            ModelError: if an agent is of a non-stationary (strategic)
                class, its parameters diverge from its subproblem's, or
                the weights dict diverges from the subproblem weights
                (the store keeps one design-weight column).
        """
        n = len(model.subproblems)
        if n < 1:
            raise ModelError("cannot build a columnar store from an empty population")
        columns: Dict[str, List[float]] = {
            name: []
            for name in (
                "r2", "r1", "r0", "act_r2", "act_r1", "act_r0",
                "beta", "omega", "design_weight", "eval_weight",
                "max_effort", "e_mal", "feedback_noise", "rating_noise",
                "rating_bias",
            )
        }
        type_codes: List[int] = []
        n_members: List[int] = []
        community_ids: List[int] = []
        communities: List[Tuple[str, ...]] = []
        community_index: Dict[Tuple[str, ...], int] = {}
        subject_ids: List[str] = []
        for subproblem in model.subproblems:
            subject_id = subproblem.subject_id
            agent = model.agents.get(subject_id)
            if agent is None:
                raise ModelError(f"no agent for subject {subject_id!r}")
            if type(agent) not in _COLUMNAR_AGENT_TYPES:
                raise ModelError(
                    f"agent {subject_id!r} is {type(agent).__name__}; only "
                    "stationary honest/malicious/collusive agents can be "
                    "held columnar (strategic workers mutate their "
                    "parameters per round)"
                )
            if agent.params != subproblem.params:
                raise ModelError(
                    f"agent {subject_id!r} parameters {agent.params!r} diverge "
                    f"from its subproblem's {subproblem.params!r}; the "
                    "columnar store keeps one parameter column"
                )
            eval_weight = model.weights.get(subject_id)
            if eval_weight is None:
                raise ModelError(f"no evaluation weight for subject {subject_id!r}")
            design_r2, design_r1, design_r0 = (
                subproblem.effort_function.r2,
                subproblem.effort_function.r1,
                subproblem.effort_function.r0,
            )
            acting = agent.effort_function
            columns["r2"].append(design_r2)
            columns["r1"].append(design_r1)
            columns["r0"].append(design_r0)
            columns["act_r2"].append(acting.r2)
            columns["act_r1"].append(acting.r1)
            columns["act_r0"].append(acting.r0)
            columns["beta"].append(subproblem.params.beta)
            columns["omega"].append(subproblem.params.omega)
            columns["design_weight"].append(subproblem.feedback_weight)
            columns["eval_weight"].append(float(eval_weight))
            columns["max_effort"].append(
                float("nan")
                if subproblem.max_effort is None
                else float(subproblem.max_effort)
            )
            columns["e_mal"].append(float(model.malice.get(subject_id, 0.0)))
            columns["feedback_noise"].append(agent.feedback_noise)
            columns["rating_noise"].append(agent.rating_noise)
            columns["rating_bias"].append(float(getattr(agent, "rating_bias", 0.0)))
            type_codes.append(WORKER_TYPE_CODES[subproblem.params.worker_type])
            n_members.append(agent.n_members)
            if isinstance(agent, CollusiveCommunity):
                members = tuple(agent.member_ids)
                slot = community_index.get(members)
                if slot is None:
                    slot = len(communities)
                    communities.append(members)
                    community_index[members] = slot
                community_ids.append(slot)
            else:
                community_ids.append(-1)
            subject_ids.append(subject_id)
        return cls(
            type_codes=type_codes,
            n_members=n_members,
            community_ids=community_ids,
            communities=communities,
            subject_ids=subject_ids,
            class_functions=model.class_functions,
            deviations=dict(model.deviations),
            **columns,
        )

    def to_population(self) -> PopulationModel:
        """Materialize back into an object :class:`PopulationModel`.

        The round trip is value-faithful: subproblems, agents, weights
        and malice carry the same numbers (psi/params objects are the
        shared archetype objects, not the originals).
        """
        agents = {subject_id: self.agents[subject_id] for subject_id in self.agents}
        return PopulationModel(
            subproblems=list(self.subproblems),
            agents=agents,
            weights=dict(self.weights),
            class_functions=self.class_functions,
            deviations=dict(self.deviations),
            malice=dict(self.malice),
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def update_design_columns(
        self,
        *,
        r2: Optional[np.ndarray] = None,
        r1: Optional[np.ndarray] = None,
        r0: Optional[np.ndarray] = None,
        beta: Optional[np.ndarray] = None,
        omega: Optional[np.ndarray] = None,
        design_weight: Optional[np.ndarray] = None,
        eval_weight: Optional[np.ndarray] = None,
        max_effort: Optional[np.ndarray] = None,
    ) -> None:
        """Swap whole design columns and invalidate the derived caches.

        This is the supported mutation path: the delta-redesign state
        diffs the packed design matrix against its previous value, so
        columns must never be edited in place (they are frozen).  The
        behaviour (``act_*``) columns are deliberately not updatable —
        agents are stationary by the columnar contract.
        """
        updates = {
            "r2": r2, "r1": r1, "r0": r0, "beta": beta, "omega": omega,
            "design_weight": design_weight, "eval_weight": eval_weight,
            "max_effort": max_effort,
        }
        for name, column in updates.items():
            if column is None:
                continue
            setattr(self, name, _float_column(column, self._n, name))
        self._invalidate()

    def _invalidate(self) -> None:
        """Reset every cache derived from the columns."""
        self._design_matrix: Optional[np.ndarray] = None
        self._arch_codes: Optional[np.ndarray] = None
        self._arch_reps: Optional[np.ndarray] = None
        self._arch_subproblems: Optional[List[Subproblem]] = None
        self._arch_psis: Dict[int, QuadraticEffort] = {}
        self._arch_params: Dict[int, WorkerParameters] = {}
        self._resp_codes: Optional[np.ndarray] = None
        self._resp_reps: Optional[np.ndarray] = None
        self._resp_psis: Dict[int, QuadraticEffort] = {}
        self._resp_objects: Dict[int, Tuple[QuadraticEffort, WorkerParameters]] = {}
        self._subproblems: Optional[List[Subproblem]] = None
        self._agents: Optional[_LazyAgents] = None
        self._weights: Optional[Dict[str, float]] = None
        self._malice: Optional[Dict[str, float]] = None
        self._index_of: Optional[Dict[str, int]] = None


def synthetic_columnar(
    n_subjects: int,
    n_archetypes: int = 16,
    seed: int = 0,
    malicious_fraction: float = 0.25,
    feedback_noise: float = 0.0,
    rating_noise: float = 0.35,
) -> ColumnarPopulation:
    """The columnar twin of :func:`repro.workers.synthetic.synthetic_population`.

    Consumes the *identical* generator stream as
    :func:`repro.serving.workload.synthetic_subproblems` (archetype
    draws in the same order, then one ``integers`` assignment draw), so
    ``synthetic_columnar(...)`` and
    ``ColumnarPopulation.from_population(synthetic_population(...))``
    hold bit-identical columns — but this builder never materializes a
    per-subject object, which is what makes 10M-subject populations
    buildable in bounded memory.
    """
    if n_subjects < 1:
        raise ModelError(f"n_subjects must be >= 1, got {n_subjects!r}")
    if not 1 <= n_archetypes <= n_subjects:
        raise ModelError(
            f"n_archetypes must lie in [1, n_subjects], got {n_archetypes!r}"
        )
    if not 0.0 <= malicious_fraction <= 1.0:
        raise ModelError(
            f"malicious_fraction must lie in [0, 1], got {malicious_fraction!r}"
        )
    if feedback_noise < 0.0:
        raise ModelError(f"feedback_noise must be >= 0, got {feedback_noise!r}")
    generator = np.random.default_rng(seed)

    # Archetype draws, in synthetic_subproblems' exact order.
    arch_r2 = np.empty(n_archetypes)
    arch_r1 = np.empty(n_archetypes)
    arch_r0 = np.empty(n_archetypes)
    arch_beta = np.empty(n_archetypes)
    arch_omega = np.zeros(n_archetypes)
    arch_weight = np.empty(n_archetypes)
    arch_cap = np.empty(n_archetypes)
    arch_malicious = np.zeros(n_archetypes, dtype=bool)
    first_honest = first_malicious = -1
    for index in range(n_archetypes):
        r2 = -float(generator.uniform(0.3, 1.2))
        r1 = float(generator.uniform(6.0, 14.0))
        r0 = float(generator.uniform(0.0, 2.0))
        beta = float(generator.uniform(0.8, 1.5))
        malicious = bool(generator.random() < malicious_fraction)
        omega = float(generator.uniform(0.2, 0.5)) if malicious else 0.0
        weight = float(generator.uniform(0.5, 2.0))
        psi = QuadraticEffort(r2=r2, r1=r1, r0=r0)
        arch_r2[index] = r2
        arch_r1[index] = r1
        arch_r0[index] = r0
        arch_beta[index] = beta
        arch_omega[index] = omega
        arch_weight[index] = weight
        arch_cap[index] = 0.8 * psi.max_increasing_effort
        arch_malicious[index] = malicious
        if malicious and first_malicious < 0:
            first_malicious = index
        if not malicious and first_honest < 0:
            first_honest = index

    assignments = np.concatenate(
        [
            np.arange(n_archetypes, dtype=np.int64),
            generator.integers(
                0, n_archetypes, size=n_subjects - n_archetypes
            ).astype(np.int64),
        ]
    )

    malicious_mask = arch_malicious[assignments]
    type_codes = np.where(
        malicious_mask,
        WORKER_TYPE_CODES[WorkerType.NONCOLLUSIVE_MALICIOUS],
        WORKER_TYPE_CODES[WorkerType.HONEST],
    ).astype(np.int64)
    honest_psi = QuadraticEffort(
        r2=float(arch_r2[first_honest if first_honest >= 0 else 0]),
        r1=float(arch_r1[first_honest if first_honest >= 0 else 0]),
        r0=float(arch_r0[first_honest if first_honest >= 0 else 0]),
    )
    malicious_psi = QuadraticEffort(
        r2=float(arch_r2[first_malicious if first_malicious >= 0 else 0]),
        r1=float(arch_r1[first_malicious if first_malicious >= 0 else 0]),
        r0=float(arch_r0[first_malicious if first_malicious >= 0 else 0]),
    )
    r2_column = arch_r2[assignments]
    r1_column = arch_r1[assignments]
    r0_column = arch_r0[assignments]
    return ColumnarPopulation(
        r2=r2_column,
        r1=r1_column,
        r0=r0_column,
        act_r2=r2_column,
        act_r1=r1_column,
        act_r0=r0_column,
        beta=arch_beta[assignments],
        omega=arch_omega[assignments],
        design_weight=arch_weight[assignments],
        eval_weight=arch_weight[assignments],
        max_effort=arch_cap[assignments],
        type_codes=type_codes,
        e_mal=malicious_mask.astype(np.float64),
        feedback_noise=np.full(n_subjects, float(feedback_noise)),
        rating_noise=np.full(n_subjects, float(rating_noise)),
        rating_bias=np.where(malicious_mask, 2.0, 0.0),
        n_members=np.ones(n_subjects, dtype=np.int64),
        community_ids=np.full(n_subjects, -1, dtype=np.int64),
        communities=(),
        subject_ids=None,
        id_format="w{index:05d}",
        class_functions=ClassEffortFunctions(
            honest=honest_psi,
            noncollusive=malicious_psi,
            collusive_member=malicious_psi,
        ),
    )
