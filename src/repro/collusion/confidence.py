"""Statistical confidence of detected collusive communities.

Section IV-A's clustering declares two malicious workers collusive when
they share a target product, and the paper asserts the approach
distinguishes collusive workers "with a given probability".  This module
quantifies that probability: under a null model where each of the two
workers picks its products independently and uniformly from a catalog
of size ``N``, the chance of at least one shared product is

    P(collision) = 1 - C(N - a, b) / C(N, b)

for workers with ``a`` and ``b`` products.  A detected edge's confidence
is ``1 - P(collision)`` — near 1 on Amazon-sized catalogs, which is why
the simple rule works there, and measurably lower on small catalogs.
Community-level confidence aggregates edge evidence over a spanning set
of the component.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Set, Tuple

from ..errors import DataError
from .clustering import CollusionClusters

__all__ = [
    "edge_collision_probability",
    "edge_confidence",
    "CommunityConfidence",
    "community_confidences",
]


def edge_collision_probability(
    n_products: int, n_targets_a: int, n_targets_b: int
) -> float:
    """P(two independent uniform workers share >= 1 product).

    Args:
        n_products: catalog size ``N``.
        n_targets_a: products targeted by the first worker.
        n_targets_b: products targeted by the second worker.

    Returns:
        The null-model collision probability in ``[0, 1]``.
    """
    if n_products < 1:
        raise DataError(f"n_products must be >= 1, got {n_products!r}")
    for name, value in (("n_targets_a", n_targets_a), ("n_targets_b", n_targets_b)):
        if value < 0:
            raise DataError(f"{name} must be >= 0, got {value!r}")
    if n_targets_a == 0 or n_targets_b == 0:
        return 0.0
    if n_targets_a + n_targets_b > n_products:
        # Pigeonhole: a shared product is unavoidable.
        return 1.0
    # log C(N - a, b) - log C(N, b) = sum_{i=0..b-1} log((N-a-i)/(N-i))
    log_no_collision = 0.0
    for index in range(n_targets_b):
        log_no_collision += math.log(
            (n_products - n_targets_a - index) / (n_products - index)
        )
    return 1.0 - math.exp(log_no_collision)


def edge_confidence(
    n_products: int, n_targets_a: int, n_targets_b: int
) -> float:
    """Confidence that a shared-target edge reflects true collusion.

    ``1 - P(collision under independence)``: the probability the edge
    would *not* arise by chance.
    """
    return 1.0 - edge_collision_probability(n_products, n_targets_a, n_targets_b)


@dataclass(frozen=True)
class CommunityConfidence:
    """Confidence assessment of one detected community.

    Attributes:
        community: the member set.
        edge_confidences: per detected shared-target pair, the chance the
            pair is not coincidental.
        confidence: community-level confidence — the probability that
            none of the (size - 1) linking edges of a spanning set is
            coincidental (edges treated as independent).
    """

    community: FrozenSet[Hashable]
    edge_confidences: Tuple[float, ...]
    confidence: float

    @property
    def size(self) -> int:
        """Community size."""
        return len(self.community)


def community_confidences(
    clusters: CollusionClusters,
    worker_targets: Mapping[Hashable, Iterable[Hashable]],
    n_products: int,
) -> List[CommunityConfidence]:
    """Score every detected community against the independence null.

    For each community, (size - 1) linking edges suffice to connect it;
    we take the *strongest* (highest-confidence) spanning edges — the
    clustering would have found the community via those even if the
    weaker coincidental-looking edges were discarded.

    Args:
        clusters: the Section IV-A clustering result.
        worker_targets: the same worker -> targets mapping it was built
            from.
        n_products: catalog size for the null model.
    """
    target_counts: Dict[Hashable, int] = {
        worker: len(set(targets)) for worker, targets in worker_targets.items()
    }
    results: List[CommunityConfidence] = []
    for community in clusters.communities:
        members = sorted(community, key=str)
        edges: List[float] = []
        target_sets = {
            member: set(worker_targets.get(member, ())) for member in members
        }
        for index, left in enumerate(members):
            for right in members[index + 1 :]:
                if target_sets[left] & target_sets[right]:
                    edges.append(
                        edge_confidence(
                            n_products,
                            target_counts.get(left, 0),
                            target_counts.get(right, 0),
                        )
                    )
        if not edges:
            raise DataError(
                f"community {members!r} has no shared-target edge; "
                "it cannot have come from this worker_targets mapping"
            )
        edges.sort(reverse=True)
        spanning = edges[: len(members) - 1]
        confidence = 1.0
        for edge in spanning:
            confidence *= edge
        results.append(
            CommunityConfidence(
                community=community,
                edge_confidences=tuple(edges),
                confidence=confidence,
            )
        )
    return results
