"""Collusive-worker clustering from shared targets (Section IV-A).

Two malicious workers are assumed collusive when they target the same
product ([13]'s observation: collusive workers are recruited from the
same source and paid to hit the same task).  Building the auxiliary
graph ``G = (U, H)`` — one node per malicious worker, one edge per
shared target — reduces community detection to connected components.

A *collusive community* then is a connected component of size >= 2; a
malicious worker in a singleton component is non-collusive malicious.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Set, Tuple

from ..errors import DataError
from ..obs.trace import get_tracer
from .graph import Graph, UnionFind

__all__ = [
    "CollusionClusters",
    "StreamingClusterer",
    "build_auxiliary_graph",
    "cluster_collusive_workers",
    "cluster_streaming",
]


@dataclass(frozen=True)
class CollusionClusters:
    """The result of collusive-worker clustering.

    Attributes:
        communities: collusive communities (components of size >= 2),
            sorted descending by size then by smallest member for
            deterministic output.
        noncollusive: malicious workers in singleton components.
    """

    communities: Tuple[FrozenSet[Hashable], ...]
    noncollusive: FrozenSet[Hashable]

    @property
    def n_communities(self) -> int:
        """Number of collusive communities (paper reports 47)."""
        return len(self.communities)

    @property
    def n_collusive_workers(self) -> int:
        """Total workers inside communities (paper reports 212)."""
        return sum(len(community) for community in self.communities)

    def _membership(self) -> Dict[Hashable, int]:
        """Worker -> community-index map, built once and cached.

        The instance is frozen and the communities are immutable, so the
        map is computed lazily on first lookup and reused; this turns
        :meth:`community_of`/:meth:`partners_of` from per-call scans over
        every community into dictionary lookups.
        """
        cached = getattr(self, "_membership_cache", None)
        if cached is None:
            cached = {}
            for index, community in enumerate(self.communities):
                for worker in community:
                    cached[worker] = index
            object.__setattr__(self, "_membership_cache", cached)
        return cached

    def community_of(self, worker: Hashable) -> FrozenSet[Hashable]:
        """The community containing ``worker``.

        Raises:
            DataError: if the worker is not in any community.
        """
        index = self._membership().get(worker)
        if index is None:
            raise DataError(
                f"worker {worker!r} is not in any collusive community"
            )
        return self.communities[index]

    def partners_of(self, worker: Hashable) -> int:
        """Number of collusive partners ``A_i`` of ``worker`` (Eq. 5).

        Non-collusive workers have zero partners.
        """
        index = self._membership().get(worker)
        if index is None:
            return 0
        return len(self.communities[index]) - 1

    def membership(self) -> Dict[Hashable, int]:
        """Map each collusive worker to its community index."""
        return dict(self._membership())

    def size_histogram(self) -> Dict[int, int]:
        """Community-size histogram (basis of Table II)."""
        histogram: Dict[int, int] = {}
        for community in self.communities:
            histogram[len(community)] = histogram.get(len(community), 0) + 1
        return dict(sorted(histogram.items()))


def build_auxiliary_graph(
    worker_targets: Mapping[Hashable, Iterable[Hashable]],
) -> Graph:
    """Build the auxiliary graph of Fig. 5.

    Args:
        worker_targets: mapping from malicious worker id to the products
            the worker targeted.

    Returns:
        The undirected graph with an edge between every pair of workers
        sharing at least one target.  Edge construction goes through a
        product -> workers inverted index, so the cost is linear in the
        index plus the produced edges rather than quadratic in workers.
    """
    graph = Graph()
    by_product: Dict[Hashable, List[Hashable]] = {}
    for worker, targets in worker_targets.items():
        graph.add_node(worker)
        for product in targets:
            by_product.setdefault(product, []).append(worker)
    for workers in by_product.values():
        for left, right in combinations(workers, 2):
            graph.add_edge(left, right)
    return graph


def cluster_collusive_workers(
    worker_targets: Mapping[Hashable, Iterable[Hashable]],
) -> CollusionClusters:
    """Cluster malicious workers into collusive communities.

    This is the complete Section IV-A pipeline: auxiliary graph, DFS
    connected components, then splitting singleton components (workers
    with no shared target) from true communities.

    Args:
        worker_targets: mapping from malicious worker id to targeted
            product ids.  Pass *only* malicious workers — the paper's
            assumption applies to workers already labelled malicious.

    Returns:
        The :class:`CollusionClusters` partition.
    """
    with get_tracer().span(
        "collusion.cluster", n_workers=len(worker_targets)
    ) as span:
        graph = build_auxiliary_graph(worker_targets)
        components = graph.connected_components()
        communities = [frozenset(c) for c in components if len(c) >= 2]
        communities.sort(key=lambda c: (-len(c), min(str(w) for w in c)))
        noncollusive = frozenset(
            next(iter(c)) for c in components if len(c) == 1
        )
        clusters = CollusionClusters(
            communities=tuple(communities), noncollusive=noncollusive
        )
        span.set("n_communities", clusters.n_communities)
        span.set("n_collusive", clusters.n_collusive_workers)
        span.set(
            "largest_community",
            len(clusters.communities[0]) if clusters.communities else 0,
        )
        return clusters


def cluster_streaming(
    review_pairs: Iterable[Tuple[Hashable, Hashable]],
    malicious_workers: Set[Hashable],
) -> CollusionClusters:
    """One-pass clustering over a (worker, product) review stream.

    Functionally identical to :func:`cluster_collusive_workers` but
    consumes an edge stream with a union-find, so a large trace never
    needs its per-worker target sets materialized.

    Args:
        review_pairs: iterable of (worker, product) pairs, e.g. straight
            from a review trace.
        malicious_workers: the set of workers labelled malicious; pairs
            from other workers are skipped.
    """
    with get_tracer().span(
        "collusion.cluster_streaming", n_workers=len(malicious_workers)
    ) as span:
        sets = UnionFind()
        last_reviewer_of: Dict[Hashable, Hashable] = {}
        for worker, product in review_pairs:
            if worker not in malicious_workers:
                continue
            sets.add(worker)
            if product in last_reviewer_of:
                sets.union(last_reviewer_of[product], worker)
            last_reviewer_of[product] = worker
        clusters = _clusters_from_sets(sets, malicious_workers)
        span.set("n_communities", clusters.n_communities)
        span.set("n_collusive", clusters.n_collusive_workers)
        span.set(
            "largest_community",
            len(clusters.communities[0]) if clusters.communities else 0,
        )
        return clusters


def _clusters_from_sets(
    sets: UnionFind, malicious_workers: Set[Hashable]
) -> CollusionClusters:
    """Partition a populated union-find into :class:`CollusionClusters`."""
    groups = sets.groups()
    communities = [frozenset(g) for g in groups if len(g) >= 2]
    communities.sort(key=lambda c: (-len(c), min(str(w) for w in c)))
    singletons = frozenset(next(iter(g)) for g in groups if len(g) == 1)
    # Malicious workers with no reviews at all are trivially non-collusive.
    unseen = frozenset(
        w for w in malicious_workers if w not in _seen_items(sets)
    )
    return CollusionClusters(
        communities=tuple(communities), noncollusive=singletons | unseen
    )


def _seen_items(sets: UnionFind) -> Set[Hashable]:
    """All items a union-find has ever seen (helper for streaming mode)."""
    return {item for group in sets.groups() for item in group}


class StreamingClusterer:
    """Incrementally maintained collusive communities over a review stream.

    Where :func:`cluster_streaming` re-consumes the whole stream on each
    call, this keeps the union-find, the per-product last-reviewer map
    and the malicious label set alive between updates, so feeding the
    next batch of review pairs costs only those pairs — the delta path
    the simulation's redesign loop uses when the observed stream grows
    round over round.  Feeding the same stream in any batching yields a
    :class:`CollusionClusters` identical to the one-shot function.

    Pairs are filtered against the malicious set *at the time they are
    added*, exactly like the one-shot scan over a fixed label set; add
    all known labels via :meth:`add_malicious` before streaming pairs.
    """

    def __init__(
        self, malicious_workers: Iterable[Hashable] = ()
    ) -> None:
        self._sets = UnionFind()
        self._last_reviewer_of: Dict[Hashable, Hashable] = {}
        self._malicious: Set[Hashable] = set(malicious_workers)
        self._cached: "CollusionClusters | None" = None

    @property
    def n_pairs_retained(self) -> int:
        """Number of malicious workers currently tracked."""
        return len(self._sets)

    def add_malicious(self, workers: Iterable[Hashable]) -> None:
        """Extend the malicious label set (affects future pairs only)."""
        before = len(self._malicious)
        self._malicious.update(workers)
        if len(self._malicious) != before:
            self._cached = None

    def add_pair(self, worker: Hashable, product: Hashable) -> None:
        """Ingest one (worker, product) review pair."""
        if worker not in self._malicious:
            return
        self._sets.add(worker)
        if product in self._last_reviewer_of:
            self._sets.union(self._last_reviewer_of[product], worker)
        self._last_reviewer_of[product] = worker
        self._cached = None

    def add_pairs(
        self, review_pairs: Iterable[Tuple[Hashable, Hashable]]
    ) -> None:
        """Ingest a batch of review pairs in stream order."""
        for worker, product in review_pairs:
            self.add_pair(worker, product)

    def clusters(self) -> CollusionClusters:
        """The current partition (cached until the next update)."""
        if self._cached is None:
            with get_tracer().span(
                "collusion.cluster_incremental", n_workers=len(self._malicious)
            ) as span:
                self._cached = _clusters_from_sets(self._sets, self._malicious)
                span.set("n_communities", self._cached.n_communities)
                span.set("n_collusive", self._cached.n_collusive_workers)
        return self._cached
