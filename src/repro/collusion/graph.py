"""Minimal graph substrate: adjacency lists, DFS components, union-find.

Section IV-A reduces collusive-community detection to finding connected
components of an auxiliary graph and cites CLRS depth-first search.  We
implement the substrate from scratch (no networkx dependency in the
library proper; networkx is only used in tests as a cross-check):

* :class:`Graph` — an undirected graph over hashable node ids.
* :meth:`Graph.connected_components` — iterative DFS (explicit stack, so
  hundred-thousand-node traces cannot hit the recursion limit).
* :class:`UnionFind` — path-halving + union-by-size disjoint sets, used
  as an independent second implementation for property tests and for
  streaming construction where edges arrive one at a time.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

from ..errors import DataError

__all__ = ["Graph", "UnionFind"]


class Graph:
    """An undirected graph with hashable node identifiers.

    Self-loops are permitted but ignored by traversal; parallel edges
    collapse (adjacency is a set).
    """

    def __init__(self) -> None:
        self._adjacency: Dict[Hashable, Set[Hashable]] = {}

    def add_node(self, node: Hashable) -> None:
        """Add an isolated node (no-op if present)."""
        self._adjacency.setdefault(node, set())

    def add_edge(self, left: Hashable, right: Hashable) -> None:
        """Add an undirected edge, creating endpoints as needed."""
        self.add_node(left)
        self.add_node(right)
        if left != right:
            self._adjacency[left].add(right)
            self._adjacency[right].add(left)

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Bulk :meth:`add_edge`."""
        for left, right in edges:
            self.add_edge(left, right)

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def nodes(self) -> Iterator[Hashable]:
        """Iterate over all node ids."""
        return iter(self._adjacency)

    def neighbors(self, node: Hashable) -> Set[Hashable]:
        """The neighbor set of ``node``."""
        if node not in self._adjacency:
            raise DataError(f"unknown node {node!r}")
        return set(self._adjacency[node])

    def has_edge(self, left: Hashable, right: Hashable) -> bool:
        """Whether an undirected edge connects the two nodes."""
        return left in self._adjacency and right in self._adjacency[left]

    def degree(self, node: Hashable) -> int:
        """Number of neighbors of ``node``."""
        if node not in self._adjacency:
            raise DataError(f"unknown node {node!r}")
        return len(self._adjacency[node])

    def connected_components(self) -> List[Set[Hashable]]:
        """All connected components via iterative depth-first search.

        Returns components as node sets; the order follows first
        discovery over the (insertion-ordered) node iteration, and is
        therefore deterministic for a deterministic construction order.
        """
        visited: Set[Hashable] = set()
        components: List[Set[Hashable]] = []
        for start in self._adjacency:
            if start in visited:
                continue
            component: Set[Hashable] = set()
            stack = [start]
            visited.add(start)
            while stack:
                node = stack.pop()
                component.add(node)
                for neighbor in self._adjacency[node]:
                    if neighbor not in visited:
                        visited.add(neighbor)
                        stack.append(neighbor)
            components.append(component)
        return components

    def component_of(self, node: Hashable) -> Set[Hashable]:
        """The connected component containing ``node``."""
        if node not in self._adjacency:
            raise DataError(f"unknown node {node!r}")
        visited = {node}
        stack = [node]
        while stack:
            current = stack.pop()
            for neighbor in self._adjacency[current]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    stack.append(neighbor)
        return visited


class UnionFind:
    """Disjoint-set forest with union by size and path halving.

    An independent second route to connected components: tests assert it
    always agrees with :meth:`Graph.connected_components`, and streaming
    consumers use it to cluster while scanning a trace in one pass.
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}

    def add(self, item: Hashable) -> None:
        """Register ``item`` as its own singleton set (no-op if known)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """The canonical representative of ``item``'s set."""
        if item not in self._parent:
            raise DataError(f"unknown item {item!r}")
        root = item
        while self._parent[root] != root:
            # Path halving: point every other node at its grandparent.
            self._parent[root] = self._parent[self._parent[root]]
            root = self._parent[root]
        return root

    def union(self, left: Hashable, right: Hashable) -> Hashable:
        """Merge the sets of the two items; returns the new root."""
        self.add(left)
        self.add(right)
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return root_left
        if self._size[root_left] < self._size[root_right]:
            root_left, root_right = root_right, root_left
        self._parent[root_right] = root_left
        self._size[root_left] += self._size[root_right]
        return root_left

    def connected(self, left: Hashable, right: Hashable) -> bool:
        """Whether the two items are in the same set."""
        return self.find(left) == self.find(right)

    def groups(self) -> List[Set[Hashable]]:
        """All sets, as a list of member sets (singletons included)."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)
