"""Collusive-worker clustering (Section IV-A of the paper)."""

from .clustering import (
    CollusionClusters,
    StreamingClusterer,
    build_auxiliary_graph,
    cluster_collusive_workers,
    cluster_streaming,
)
from .communities import CommunitySizeTable, community_size_table, community_summary
from .confidence import (
    CommunityConfidence,
    community_confidences,
    edge_collision_probability,
    edge_confidence,
)
from .graph import Graph, UnionFind

__all__ = [
    "CollusionClusters",
    "StreamingClusterer",
    "build_auxiliary_graph",
    "cluster_collusive_workers",
    "cluster_streaming",
    "CommunityConfidence",
    "community_confidences",
    "edge_collision_probability",
    "edge_confidence",
    "CommunitySizeTable",
    "community_size_table",
    "community_summary",
    "Graph",
    "UnionFind",
]
