"""Community statistics: the Table II view of a clustering result.

Table II of the paper reports the distribution of collusive-community
sizes over buckets ``2, 3, 4, 5, 6, >=10`` as percentages of the 47
communities found in the Amazon trace.  This module turns a
:class:`~repro.collusion.clustering.CollusionClusters` into exactly that
table, plus general summary statistics used by the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import DataError
from .clustering import CollusionClusters

__all__ = ["CommunitySizeTable", "community_size_table", "community_summary"]

#: The size buckets Table II reports.  Sizes 7-9 fall outside every
#: printed bucket (the paper's percentages sum to 97.6%); we expose them
#: in the ``other`` field rather than silently dropping them.
TABLE_II_BUCKETS: Tuple[int, ...] = (2, 3, 4, 5, 6)
TABLE_II_TAIL_MIN: int = 10


@dataclass(frozen=True)
class CommunitySizeTable:
    """Distribution of community sizes in Table II's bucketing.

    Attributes:
        counts: number of communities per exact-size bucket (2..6).
        tail_count: communities with size >= 10.
        other_count: communities of sizes 7-9 (outside the paper's
            printed buckets).
        n_communities: total number of communities.
    """

    counts: Dict[int, int]
    tail_count: int
    other_count: int
    n_communities: int

    def percentage(self, size: int) -> float:
        """Percentage of communities with the exact ``size`` (2..6)."""
        if size not in self.counts:
            raise DataError(
                f"size must be one of {sorted(self.counts)}, got {size!r}"
            )
        return self._pct(self.counts[size])

    @property
    def tail_percentage(self) -> float:
        """Percentage of communities of size >= 10."""
        return self._pct(self.tail_count)

    @property
    def other_percentage(self) -> float:
        """Percentage of communities of sizes 7-9."""
        return self._pct(self.other_count)

    def _pct(self, count: int) -> float:
        if self.n_communities == 0:
            return 0.0
        return 100.0 * count / self.n_communities

    def as_rows(self) -> List[Tuple[str, float]]:
        """The table rows, paper order: sizes 2..6 then ``>=10``."""
        rows = [(str(size), self.percentage(size)) for size in TABLE_II_BUCKETS]
        rows.append((f">={TABLE_II_TAIL_MIN}", self.tail_percentage))
        return rows

    def format(self) -> str:
        """Human-readable rendering mirroring Table II."""
        header = "Size          " + "".join(f"{label:>8}" for label, _ in self.as_rows())
        values = "Percentage (%)" + "".join(
            f"{pct:8.1f}" for _, pct in self.as_rows()
        )
        return header + "\n" + values


def community_size_table(clusters: CollusionClusters) -> CommunitySizeTable:
    """Bucket a clustering result the way Table II does."""
    counts = {size: 0 for size in TABLE_II_BUCKETS}
    tail = 0
    other = 0
    for community in clusters.communities:
        size = len(community)
        if size in counts:
            counts[size] += 1
        elif size >= TABLE_II_TAIL_MIN:
            tail += 1
        else:
            other += 1
    return CommunitySizeTable(
        counts=counts,
        tail_count=tail,
        other_count=other,
        n_communities=clusters.n_communities,
    )


def community_summary(clusters: CollusionClusters) -> Dict[str, float]:
    """Headline statistics of a clustering (counts the paper quotes)."""
    sizes = [len(community) for community in clusters.communities]
    return {
        "n_communities": float(len(sizes)),
        "n_collusive_workers": float(sum(sizes)),
        "n_noncollusive_malicious": float(len(clusters.noncollusive)),
        "max_size": float(max(sizes)) if sizes else 0.0,
        "mean_size": float(sum(sizes)) / len(sizes) if sizes else 0.0,
    }
