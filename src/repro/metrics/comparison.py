"""Paper-vs-measured comparison helpers for EXPERIMENTS.md reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ExperimentError
from ..numerics import is_zero

__all__ = ["ComparisonRow", "ComparisonTable"]


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured line.

    Attributes:
        label: what is being compared.
        paper: the value the paper reports (``None`` when the paper only
            shows a figure without numbers).
        measured: the value this reproduction measured.
        note: free-form remark (units, caveats).
    """

    label: str
    paper: Optional[float]
    measured: float
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """measured / paper, when both are available and paper != 0."""
        if self.paper is None or is_zero(self.paper):
            return None
        return self.measured / self.paper


@dataclass
class ComparisonTable:
    """A titled collection of comparison rows with text rendering."""

    title: str
    rows: List[ComparisonRow]

    def add(
        self,
        label: str,
        measured: float,
        paper: Optional[float] = None,
        note: str = "",
    ) -> None:
        """Append one row."""
        self.rows.append(
            ComparisonRow(label=label, paper=paper, measured=measured, note=note)
        )

    def format(self) -> str:
        """Monospace rendering for console output and EXPERIMENTS.md."""
        if not self.rows:
            raise ExperimentError(f"comparison table {self.title!r} is empty")
        header = f"== {self.title} =="
        label_width = max(len(row.label) for row in self.rows)
        lines = [header]
        lines.append(
            f"{'metric'.ljust(label_width)}  {'paper':>12}  {'measured':>12}  note"
        )
        for row in self.rows:
            paper_text = "-" if row.paper is None else f"{row.paper:12.4g}"
            lines.append(
                f"{row.label.ljust(label_width)}  {paper_text:>12}  "
                f"{row.measured:12.4g}  {row.note}"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Tuple[Optional[float], float]]:
        """``label -> (paper, measured)`` for programmatic checks."""
        return {row.label: (row.paper, row.measured) for row in self.rows}
