"""Metrics: distribution summaries and paper-vs-measured tables."""

from .comparison import ComparisonRow, ComparisonTable
from .percentiles import DistributionSummary, summarize

__all__ = [
    "ComparisonRow",
    "ComparisonTable",
    "DistributionSummary",
    "summarize",
]
