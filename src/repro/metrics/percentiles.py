"""Distribution summaries used by the Fig. 8 experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ExperimentError

__all__ = ["DistributionSummary", "summarize"]


@dataclass(frozen=True)
class DistributionSummary:
    """Mean plus the 5th/95th percentiles (Fig. 8b's error bars).

    Attributes:
        mean: arithmetic mean.
        p5: 5th percentile.
        p95: 95th percentile.
        n: sample count.
    """

    mean: float
    p5: float
    p95: float
    n: int

    @property
    def spread(self) -> float:
        """The p95 - p5 width."""
        return self.p95 - self.p5


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Summarize a sample the way Fig. 8b reports compensation.

    Raises:
        ExperimentError: on an empty sample.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ExperimentError("cannot summarize an empty sample")
    return DistributionSummary(
        mean=float(array.mean()),
        p5=float(np.percentile(array, 5)),
        p95=float(np.percentile(array, 95)),
        n=int(array.size),
    )
