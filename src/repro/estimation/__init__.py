"""Requester-side estimation: expertise, effort proxies, malice."""

from .expertise import EffortProxy, estimate_expertise
from .malice import DeviationMaliceEstimator, OracleMaliceEstimator

__all__ = [
    "EffortProxy",
    "estimate_expertise",
    "DeviationMaliceEstimator",
    "OracleMaliceEstimator",
]
