"""Requester-side expertise and effort estimation (Section V).

The paper parametrizes its pipeline with observable proxies:

* *expertise* of a worker — "the average feedback (upvotes) over all
  reviews written by that worker";
* *effort level* of a review — "the product of the worker's expertise
  and the length of the review".

These run on observables only (no oracle fields), exactly as a real
requester would.  Proxies are normalized by corpus means so downstream
effort grids stay O(1) regardless of raw upvote and character scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from ..data.dataset import ReviewTrace
from ..errors import EstimationError

__all__ = ["EffortProxy", "estimate_expertise"]


def estimate_expertise(trace: ReviewTrace) -> Dict[str, float]:
    """Per-worker expertise: mean upvotes over the worker's reviews.

    Workers with no reviews get zero expertise.
    """
    expertise: Dict[str, float] = {}
    for worker_id in trace.reviewers:
        series = trace.series_of(worker_id)
        expertise[worker_id] = series.mean_feedback
    return expertise


@dataclass(frozen=True)
class EffortProxy:
    """Effort estimator: normalized expertise x normalized length.

    Attributes:
        expertise: per-worker expertise (mean upvotes).
        mean_expertise: corpus mean of positive expertise values.
        mean_length: corpus mean review length.
    """

    expertise: Dict[str, float]
    mean_expertise: float
    mean_length: float

    @staticmethod
    def from_trace(trace: ReviewTrace) -> "EffortProxy":
        """Fit the proxy's normalizers from a trace."""
        if trace.n_reviews == 0:
            raise EstimationError("cannot build an effort proxy from an empty trace")
        expertise = estimate_expertise(trace)
        positive = [value for value in expertise.values() if value > 0.0]
        mean_expertise = float(np.mean(positive)) if positive else 1.0
        mean_length = float(
            np.mean([review.text_length for review in trace.reviews])
        )
        return EffortProxy(
            expertise=expertise,
            mean_expertise=max(mean_expertise, 1e-9),
            mean_length=max(mean_length, 1.0),
        )

    def effort_of(self, worker_id: str, text_length: float) -> float:
        """Estimated effort of one review."""
        if worker_id not in self.expertise:
            raise EstimationError(f"unknown worker {worker_id!r}")
        if text_length <= 0.0:
            raise EstimationError(f"text_length must be positive, got {text_length!r}")
        normalized_expertise = self.expertise[worker_id] / self.mean_expertise
        normalized_length = text_length / self.mean_length
        return normalized_expertise * normalized_length

    def worker_points(
        self, trace: ReviewTrace, worker_id: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(estimated efforts, upvotes) for one worker's reviews.

        This is the per-worker scatter Fig. 8a's per-worker fits use.
        """
        reviews = trace.reviews_of(worker_id)
        efforts = np.array(
            [self.effort_of(worker_id, review.text_length) for review in reviews]
        )
        upvotes = np.array([review.upvotes for review in reviews], dtype=float)
        return efforts, upvotes

    def class_points(
        self, trace: ReviewTrace, worker_ids: Iterable[str]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One (mean effort, mean feedback) point per worker.

        These are the "data points ... from honest workers" the paper
        feeds the Table III order sweep: one aggregated point per worker.
        Workers without reviews are skipped.
        """
        efforts = []
        feedbacks = []
        for worker_id in worker_ids:
            reviews = trace.reviews_of(worker_id)
            if not reviews:
                continue
            per_review = [
                self.effort_of(worker_id, review.text_length) for review in reviews
            ]
            efforts.append(float(np.mean(per_review)))
            feedbacks.append(float(np.mean([r.upvotes for r in reviews])))
        return np.asarray(efforts), np.asarray(feedbacks)
