"""Malice-probability estimation (the ``e_mal`` of Eq. 5).

The paper assumes the requester "can estimate an individual worker's
performance and expected behavior with some ease, e.g. by comparing a
worker's response with the estimated true response from a small number
of experts" ([14], [15]).  We implement that deviation-based estimator,
plus an oracle that reads the generator's planted labels — both produce
the same ``worker -> e_mal in [0, 1]`` interface the designer consumes,
so experiments can quantify how much estimator noise costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..data.dataset import ReviewTrace
from ..errors import EstimationError

__all__ = ["DeviationMaliceEstimator", "OracleMaliceEstimator", "deviation_to_malice"]


def deviation_to_malice(
    deviation: float,
    honest_deviation: float = 0.4,
    malicious_deviation: float = 1.5,
    steepness: float = 4.0,
) -> float:
    """Logistic ramp from rating deviation to a malice probability.

    Deviations around ``honest_deviation`` map near 0, around
    ``malicious_deviation`` near 1.  Shared by the offline estimator and
    the online (per-round) re-estimator.
    """
    if not 0.0 < honest_deviation < malicious_deviation:
        raise EstimationError(
            "need 0 < honest_deviation < malicious_deviation, got "
            f"{honest_deviation!r} / {malicious_deviation!r}"
        )
    if steepness <= 0.0:
        raise EstimationError(f"steepness must be positive, got {steepness!r}")
    midpoint = 0.5 * (honest_deviation + malicious_deviation)
    width = malicious_deviation - honest_deviation
    z = steepness * (deviation - midpoint) / width
    return 1.0 / (1.0 + math.exp(-z))


@dataclass(frozen=True)
class DeviationMaliceEstimator:
    """Estimates ``e_mal`` from rating deviation against expert scores.

    A worker whose mean absolute deviation from the expert consensus is
    at or below ``honest_deviation`` scores ~0; deviations at or above
    ``malicious_deviation`` score ~1; a logistic ramp interpolates in
    between.  Shrinkage pulls small-sample workers toward the prior
    (few reviews say little about intent).

    Attributes:
        honest_deviation: deviation typical of honest raters.
        malicious_deviation: deviation typical of planted bias.
        prior: e_mal assigned to workers with no reviews.
        shrinkage_reviews: pseudo-count of prior-weighted reviews.
        steepness: logistic steepness of the ramp.
    """

    honest_deviation: float = 0.4
    malicious_deviation: float = 1.5
    prior: float = 0.1
    shrinkage_reviews: float = 2.0
    steepness: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.honest_deviation < self.malicious_deviation:
            raise EstimationError(
                "need 0 < honest_deviation < malicious_deviation, got "
                f"{self.honest_deviation!r} / {self.malicious_deviation!r}"
            )
        if not 0.0 <= self.prior <= 1.0:
            raise EstimationError(f"prior must lie in [0, 1], got {self.prior!r}")
        if self.shrinkage_reviews < 0.0 or self.steepness <= 0.0:
            raise EstimationError("shrinkage_reviews >= 0 and steepness > 0 required")

    def estimate(self, trace: ReviewTrace) -> Dict[str, float]:
        """``worker -> e_mal`` over every reviewer in the trace."""
        estimates: Dict[str, float] = {}
        for worker_id in trace.reviewers:
            reviews = trace.reviews_of(worker_id)
            if not reviews:
                estimates[worker_id] = self.prior
                continue
            deviations = [
                abs(review.rating - trace.products[review.product_id].expert_score)
                for review in reviews
            ]
            mean_deviation = float(np.mean(deviations))
            raw = self._ramp(mean_deviation)
            weight = len(reviews) / (len(reviews) + self.shrinkage_reviews)
            estimates[worker_id] = weight * raw + (1.0 - weight) * self.prior
        return estimates

    def _ramp(self, deviation: float) -> float:
        """Logistic ramp mapping deviation to [0, 1]."""
        return deviation_to_malice(
            deviation,
            honest_deviation=self.honest_deviation,
            malicious_deviation=self.malicious_deviation,
            steepness=self.steepness,
        )


@dataclass(frozen=True)
class OracleMaliceEstimator:
    """Reads the planted labels (stands in for [13]'s crawled ground
    truth, which the original study possessed).

    Attributes:
        certainty: the e_mal assigned to labelled-malicious workers;
            honest workers get ``1 - certainty`` complement scaled by
            ``honest_floor``.
        honest_floor: the e_mal assigned to labelled-honest workers.
    """

    certainty: float = 0.95
    honest_floor: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.honest_floor <= self.certainty <= 1.0:
            raise EstimationError(
                "need 0 <= honest_floor <= certainty <= 1, got "
                f"{self.honest_floor!r} / {self.certainty!r}"
            )

    def estimate(self, trace: ReviewTrace) -> Dict[str, float]:
        """``worker -> e_mal`` from the planted labels."""
        return {
            worker_id: (self.certainty if reviewer.is_malicious else self.honest_floor)
            for worker_id, reviewer in trace.reviewers.items()
        }
