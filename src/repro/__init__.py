"""repro — reproduction of "Dynamic Contract Design for Heterogenous
Workers in Crowdsourcing for Quality Control" (ICDCS 2017).

The package implements the paper's dynamic-contract algorithm together
with every substrate its evaluation depends on: a calibrated synthetic
Amazon review trace, collusive-community clustering, effort-function
fitting, a round-based crowdsourcing marketplace simulator, baselines,
and one experiment driver per table/figure of the paper.

Quickstart::

    from repro import ContractDesigner, QuadraticEffort, WorkerParameters

    psi = QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)
    designer = ContractDesigner(mu=1.0)
    result = designer.design(psi, WorkerParameters.honest(beta=1.0))
    print(result.k_opt, result.requester_utility, result.bounds.gap)
"""

from .core import (
    BestResponse,
    CandidateContract,
    Contract,
    ContractDesigner,
    DesignerConfig,
    DesignResult,
    PiecewiseLinear,
    QuadraticEffort,
    RoundOutcome,
    Subproblem,
    UtilityBounds,
    build_candidate,
    play_round,
    solve_best_response,
    solve_subproblems,
)
from .errors import ReproError
from .serving import (
    ContractCache,
    ContractServer,
    ServingStats,
    SolverPool,
    design_fingerprint,
    subproblem_fingerprint,
)
from .types import (
    DiscretizationGrid,
    FeedbackWeightParameters,
    RequesterParameters,
    WorkerParameters,
    WorkerType,
)

__version__ = "1.0.0"

__all__ = [
    "BestResponse",
    "CandidateContract",
    "Contract",
    "ContractDesigner",
    "DesignerConfig",
    "DesignResult",
    "PiecewiseLinear",
    "QuadraticEffort",
    "RoundOutcome",
    "Subproblem",
    "UtilityBounds",
    "build_candidate",
    "play_round",
    "solve_best_response",
    "solve_subproblems",
    "ReproError",
    "ContractCache",
    "ContractServer",
    "ServingStats",
    "SolverPool",
    "design_fingerprint",
    "subproblem_fingerprint",
    "DiscretizationGrid",
    "FeedbackWeightParameters",
    "RequesterParameters",
    "WorkerParameters",
    "WorkerType",
    "__version__",
]
