"""The review-trace container and its query surface.

:class:`ReviewTrace` bundles products, reviewers and reviews and exposes
exactly the derived views the paper's pipeline needs: per-worker review
series, malicious workers' target sets (input to collusive clustering),
per-class aggregates (Fig. 7), worker filters (Fig. 8a selects honest
workers with at least 20 reviews) and JSON-lines (de)serialization.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..errors import DataError
from ..types import WorkerType
from .schema import Product, Review, Reviewer

__all__ = ["ReviewTrace", "WorkerSeries"]


@dataclass(frozen=True)
class WorkerSeries:
    """All of one worker's reviews as aligned numpy arrays.

    Attributes:
        worker_id: the reviewer's identifier.
        efforts: latent efforts (generator oracle), one per review.
        upvotes: feedback counts, one per review.
        ratings: star ratings, one per review.
        text_lengths: character counts, one per review.
        product_ids: reviewed products, one per review.
    """

    worker_id: str
    efforts: np.ndarray
    upvotes: np.ndarray
    ratings: np.ndarray
    text_lengths: np.ndarray
    product_ids: Tuple[str, ...]

    @property
    def n_reviews(self) -> int:
        """Number of reviews in the series."""
        return len(self.product_ids)

    @property
    def mean_feedback(self) -> float:
        """Average upvotes — the paper's *expertise* proxy."""
        return float(self.upvotes.mean()) if self.n_reviews else 0.0


class ReviewTrace:
    """An immutable-by-convention review trace.

    Args:
        products: all products, keyed consistency-checked against reviews.
        reviewers: all reviewers.
        reviews: all reviews; every referenced reviewer/product must
            exist, and a reviewer may review a product at most once.
    """

    def __init__(
        self,
        products: Sequence[Product],
        reviewers: Sequence[Reviewer],
        reviews: Sequence[Review],
    ) -> None:
        self.products: Dict[str, Product] = {p.product_id: p for p in products}
        self.reviewers: Dict[str, Reviewer] = {r.reviewer_id: r for r in reviewers}
        if len(self.products) != len(products):
            raise DataError("duplicate product ids in trace")
        if len(self.reviewers) != len(reviewers):
            raise DataError("duplicate reviewer ids in trace")
        self.reviews: List[Review] = list(reviews)
        self._by_worker: Dict[str, List[Review]] = {}
        seen_pairs: Set[Tuple[str, str]] = set()
        for review in self.reviews:
            if review.reviewer_id not in self.reviewers:
                raise DataError(
                    f"review {review.review_id!r} references unknown reviewer "
                    f"{review.reviewer_id!r}"
                )
            if review.product_id not in self.products:
                raise DataError(
                    f"review {review.review_id!r} references unknown product "
                    f"{review.product_id!r}"
                )
            pair = (review.reviewer_id, review.product_id)
            if pair in seen_pairs:
                raise DataError(
                    f"reviewer {review.reviewer_id!r} reviews product "
                    f"{review.product_id!r} more than once"
                )
            seen_pairs.add(pair)
            self._by_worker.setdefault(review.reviewer_id, []).append(review)

    # ------------------------------------------------------------------
    # Counting / headline statistics
    # ------------------------------------------------------------------

    @property
    def n_reviews(self) -> int:
        """Total number of reviews (paper: 118,142)."""
        return len(self.reviews)

    @property
    def n_reviewers(self) -> int:
        """Total number of reviewers (paper: 19,686)."""
        return len(self.reviewers)

    @property
    def n_products(self) -> int:
        """Total number of products (paper: 75,508)."""
        return len(self.products)

    def worker_ids(self, worker_type: Optional[WorkerType] = None) -> List[str]:
        """All reviewer ids, optionally filtered by class."""
        if worker_type is None:
            return list(self.reviewers)
        return [
            worker_id
            for worker_id, reviewer in self.reviewers.items()
            if reviewer.worker_type is worker_type
        ]

    def malicious_ids(self) -> List[str]:
        """Reviewers with a malicious planted label (paper: 1,524)."""
        return [
            worker_id
            for worker_id, reviewer in self.reviewers.items()
            if reviewer.is_malicious
        ]

    def stats(self) -> Dict[str, int]:
        """Headline counts matching the paper's dataset description."""
        by_type = {worker_type: 0 for worker_type in WorkerType}
        for reviewer in self.reviewers.values():
            by_type[reviewer.worker_type] += 1
        return {
            "n_reviews": self.n_reviews,
            "n_reviewers": self.n_reviewers,
            "n_products": self.n_products,
            "n_honest": by_type[WorkerType.HONEST],
            "n_noncollusive_malicious": by_type[WorkerType.NONCOLLUSIVE_MALICIOUS],
            "n_collusive_malicious": by_type[WorkerType.COLLUSIVE_MALICIOUS],
            "n_malicious": by_type[WorkerType.NONCOLLUSIVE_MALICIOUS]
            + by_type[WorkerType.COLLUSIVE_MALICIOUS],
        }

    # ------------------------------------------------------------------
    # Per-worker views
    # ------------------------------------------------------------------

    def reviews_of(self, worker_id: str) -> List[Review]:
        """All reviews by one worker (empty list if none)."""
        if worker_id not in self.reviewers:
            raise DataError(f"unknown reviewer {worker_id!r}")
        return list(self._by_worker.get(worker_id, []))

    def series_of(self, worker_id: str) -> WorkerSeries:
        """The worker's reviews as aligned arrays."""
        reviews = self.reviews_of(worker_id)
        return WorkerSeries(
            worker_id=worker_id,
            efforts=np.array([r.latent_effort for r in reviews], dtype=float),
            upvotes=np.array([r.upvotes for r in reviews], dtype=float),
            ratings=np.array([r.rating for r in reviews], dtype=float),
            text_lengths=np.array([r.text_length for r in reviews], dtype=float),
            product_ids=tuple(r.product_id for r in reviews),
        )

    def workers_with_min_reviews(
        self, min_reviews: int, worker_type: Optional[WorkerType] = None
    ) -> List[str]:
        """Workers with at least ``min_reviews`` reviews (Fig. 8a filter).

        Sorted by descending review count, then id, for determinism.
        """
        if min_reviews < 0:
            raise DataError(f"min_reviews must be >= 0, got {min_reviews!r}")
        candidates = self.worker_ids(worker_type)
        eligible = [
            worker_id
            for worker_id in candidates
            if len(self._by_worker.get(worker_id, [])) >= min_reviews
        ]
        eligible.sort(key=lambda w: (-len(self._by_worker.get(w, [])), w))
        return eligible

    # ------------------------------------------------------------------
    # Clustering / estimation inputs
    # ------------------------------------------------------------------

    def malicious_targets(self) -> Dict[str, Set[str]]:
        """``worker -> targeted products`` over malicious workers only.

        This is precisely the input of Section IV-A's clustering.
        """
        targets: Dict[str, Set[str]] = {}
        for worker_id in self.malicious_ids():
            targets[worker_id] = {
                review.product_id for review in self._by_worker.get(worker_id, [])
            }
        return targets

    def planted_communities(self) -> Dict[str, Set[str]]:
        """``community_id -> member workers`` from the planted labels."""
        communities: Dict[str, Set[str]] = {}
        for worker_id, reviewer in self.reviewers.items():
            if reviewer.community_id is not None:
                communities.setdefault(reviewer.community_id, set()).add(worker_id)
        return communities

    def class_aggregates(self) -> Dict[WorkerType, Dict[str, float]]:
        """Per-class mean effort and mean feedback (the Fig. 7 bars).

        Means are per-worker means averaged across workers, so prolific
        reviewers do not dominate their class.
        """
        sums: Dict[WorkerType, List[Tuple[float, float]]] = {
            worker_type: [] for worker_type in WorkerType
        }
        for worker_id, reviewer in self.reviewers.items():
            reviews = self._by_worker.get(worker_id)
            if not reviews:
                continue
            mean_effort = float(np.mean([r.latent_effort for r in reviews]))
            mean_feedback = float(np.mean([r.upvotes for r in reviews]))
            sums[reviewer.worker_type].append((mean_effort, mean_feedback))
        aggregates: Dict[WorkerType, Dict[str, float]] = {}
        for worker_type, entries in sums.items():
            if entries:
                efforts, feedbacks = zip(*entries)
                aggregates[worker_type] = {
                    "mean_effort": float(np.mean(efforts)),
                    "mean_feedback": float(np.mean(feedbacks)),
                    "n_workers": float(len(entries)),
                }
            else:
                aggregates[worker_type] = {
                    "mean_effort": 0.0,
                    "mean_feedback": 0.0,
                    "n_workers": 0.0,
                }
        return aggregates

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines (one record per line)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for product in self.products.values():
                handle.write(
                    json.dumps({"kind": "product", **asdict(product)}) + "\n"
                )
            for reviewer in self.reviewers.values():
                record = asdict(reviewer)
                record["worker_type"] = reviewer.worker_type.value
                handle.write(json.dumps({"kind": "reviewer", **record}) + "\n")
            for review in self.reviews:
                handle.write(json.dumps({"kind": "review", **asdict(review)}) + "\n")

    @staticmethod
    def load(path: Union[str, Path]) -> "ReviewTrace":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        products: List[Product] = []
        reviewers: List[Reviewer] = []
        reviews: List[Review] = []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.pop("kind", None)
                if kind == "product":
                    products.append(Product(**record))
                elif kind == "reviewer":
                    record["worker_type"] = WorkerType(record["worker_type"])
                    reviewers.append(Reviewer(**record))
                elif kind == "review":
                    reviews.append(Review(**record))
                else:
                    raise DataError(
                        f"{path}:{line_number}: unknown record kind {kind!r}"
                    )
        return ReviewTrace(products=products, reviewers=reviewers, reviews=reviews)
