"""Record types of the review trace.

The evaluation consumes an Amazon-style review trace.  Records carry
exactly the fields the paper's pipeline reads: reviewer identity and
malice label, targeted product, star rating, review length (the effort
proxy's second factor), upvotes ("helpful" endorsements — the feedback
signal), plus the synthetic-oracle fields our generator adds (latent
effort, planted community) that stand in for information the original
study obtained from crawled ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import DataError
from ..types import WorkerType

__all__ = ["Product", "Reviewer", "Review"]

#: Star ratings are constrained to the Amazon scale.
MIN_RATING = 1.0
MAX_RATING = 5.0


@dataclass(frozen=True)
class Product:
    """A reviewable product.

    Attributes:
        product_id: unique identifier.
        true_quality: the latent quality the synthetic generator planted
            (stands in for reality; drives honest ratings).
        expert_score: the expert-consensus review score ``l_bar`` used as
            ground truth by the requester (Section II).
        category: coarse product category (the paper mentions
            electronics, books, beauty products and medications).
    """

    product_id: str
    true_quality: float
    expert_score: float
    category: str = "general"

    def __post_init__(self) -> None:
        if not self.product_id:
            raise DataError("product_id must be non-empty")
        for name, value in (
            ("true_quality", self.true_quality),
            ("expert_score", self.expert_score),
        ):
            if not MIN_RATING <= value <= MAX_RATING:
                raise DataError(
                    f"{name} must lie in [{MIN_RATING}, {MAX_RATING}], got {value!r}"
                )


@dataclass(frozen=True)
class Reviewer:
    """A worker in the trace.

    Attributes:
        reviewer_id: unique identifier.
        worker_type: honest / non-collusive malicious / collusive
            malicious (the generator's planted ground truth, standing in
            for the crawled labels of [13]).
        community_id: planted collusive-community identifier, or ``None``
            for workers outside any community.
        latent_expertise: the generator's latent skill factor (oracle
            field; the estimation substrate recomputes expertise from
            observables instead).
    """

    reviewer_id: str
    worker_type: WorkerType
    community_id: Optional[str] = None
    latent_expertise: float = 1.0

    def __post_init__(self) -> None:
        if not self.reviewer_id:
            raise DataError("reviewer_id must be non-empty")
        if self.latent_expertise <= 0.0:
            raise DataError(
                f"latent_expertise must be positive, got {self.latent_expertise!r}"
            )
        is_collusive = self.worker_type is WorkerType.COLLUSIVE_MALICIOUS
        if is_collusive and self.community_id is None:
            raise DataError(
                f"collusive reviewer {self.reviewer_id!r} needs a community_id"
            )
        if not is_collusive and self.community_id is not None:
            raise DataError(
                f"non-collusive reviewer {self.reviewer_id!r} must not have a "
                f"community_id (got {self.community_id!r})"
            )

    @property
    def is_malicious(self) -> bool:
        """Whether the planted label marks this reviewer malicious."""
        return self.worker_type.is_malicious


@dataclass(frozen=True)
class Review:
    """A single posted review.

    Attributes:
        review_id: unique identifier.
        reviewer_id: the posting worker.
        product_id: the reviewed product.
        rating: star rating in ``[1, 5]``.
        text_length: review length in characters (paper's parametrization
            item 3).
        upvotes: "helpful" endorsements received (the feedback ``q``).
        latent_effort: the generator's true effort level behind the
            review (oracle field for tests; the estimation substrate
            derives its own effort proxy from observables).
    """

    review_id: str
    reviewer_id: str
    product_id: str
    rating: float
    text_length: int
    upvotes: int
    latent_effort: float = 0.0

    def __post_init__(self) -> None:
        if not self.review_id or not self.reviewer_id or not self.product_id:
            raise DataError("review_id, reviewer_id and product_id must be non-empty")
        if not MIN_RATING <= self.rating <= MAX_RATING:
            raise DataError(
                f"rating must lie in [{MIN_RATING}, {MAX_RATING}], got {self.rating!r}"
            )
        if self.text_length <= 0:
            raise DataError(f"text_length must be positive, got {self.text_length!r}")
        if self.upvotes < 0:
            raise DataError(f"upvotes must be >= 0, got {self.upvotes!r}")
        if self.latent_effort < 0.0:
            raise DataError(
                f"latent_effort must be >= 0, got {self.latent_effort!r}"
            )
