"""Review-trace substrate: schema, calibrated synthetic generator,
endorsement model, expert panel and the trace container."""

from .csvio import export_csv, import_csv
from .dataset import ReviewTrace, WorkerSeries
from .endorsements import EndorsementModel
from .experts import ExpertPanel
from .schema import Product, Review, Reviewer
from .synthetic import PAPER_COMMUNITY_SIZES, AmazonTraceGenerator, TraceConfig
from .validation import CalibrationCheck, CalibrationReport, validate_trace

__all__ = [
    "export_csv",
    "import_csv",
    "ReviewTrace",
    "WorkerSeries",
    "EndorsementModel",
    "ExpertPanel",
    "Product",
    "Review",
    "Reviewer",
    "PAPER_COMMUNITY_SIZES",
    "AmazonTraceGenerator",
    "TraceConfig",
    "CalibrationCheck",
    "CalibrationReport",
    "validate_trace",
]
