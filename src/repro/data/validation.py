"""Trace calibration validation.

Users generating custom traces (different counts, noise levels, ring
structures) need to know whether the result still carries the structure
the paper's pipeline assumes.  This module centralizes those checks into
one report: exact-count calibration, planted-ring recoverability, the
Fig. 7 feedback signature, and enough long-history honest workers for
per-worker fitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..collusion.clustering import cluster_collusive_workers
from ..types import WorkerType
from .dataset import ReviewTrace
from .synthetic import TraceConfig

__all__ = ["CalibrationCheck", "CalibrationReport", "validate_trace"]


@dataclass(frozen=True)
class CalibrationCheck:
    """One named validation with its verdict.

    Attributes:
        name: what was checked.
        passed: the verdict.
        detail: measured-vs-expected context for failures.
    """

    name: str
    passed: bool
    detail: str = ""


@dataclass(frozen=True)
class CalibrationReport:
    """All checks for one trace.

    Attributes:
        checks: the individual verdicts.
    """

    checks: Tuple[CalibrationCheck, ...]

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(check.passed for check in self.checks)

    def failures(self) -> List[CalibrationCheck]:
        """The failing checks."""
        return [check for check in self.checks if not check.passed]

    def format(self) -> str:
        """Console rendering."""
        lines = []
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            suffix = f"  ({check.detail})" if check.detail else ""
            lines.append(f"[{mark}] {check.name}{suffix}")
        return "\n".join(lines)


def validate_trace(
    trace: ReviewTrace,
    config: Optional[TraceConfig] = None,
    feedback_dominance: float = 1.5,
    effort_similarity: float = 1.5,
    min_prolific_fraction: float = 0.5,
) -> CalibrationReport:
    """Validate a trace against its config and the pipeline's assumptions.

    Args:
        trace: the trace to validate.
        config: the calibration it was generated from; count checks are
            skipped when omitted.
        feedback_dominance: required ratio of collusive mean feedback
            over the best other class (Fig. 7 signature).
        effort_similarity: max allowed ratio between class mean efforts.
        min_prolific_fraction: fraction of the configured prolific count
            that must actually clear the review floor.

    Returns:
        The :class:`CalibrationReport`.
    """
    checks: List[CalibrationCheck] = []
    stats = trace.stats()

    if config is not None:
        for name, expected, actual in (
            ("n_reviews", config.n_reviews, stats["n_reviews"]),
            ("n_reviewers", config.n_reviewers, stats["n_reviewers"]),
            ("n_products", config.n_products, stats["n_products"]),
            ("n_malicious", config.n_malicious, stats["n_malicious"]),
            (
                "n_collusive",
                config.n_collusive,
                stats["n_collusive_malicious"],
            ),
        ):
            checks.append(
                CalibrationCheck(
                    name=f"count_{name}",
                    passed=expected == actual,
                    detail=f"expected {expected}, got {actual}",
                )
            )
        planted_sizes = sorted(
            len(members) for members in trace.planted_communities().values()
        )
        checks.append(
            CalibrationCheck(
                name="community_sizes_match_config",
                passed=planted_sizes == sorted(config.community_sizes),
                detail=f"planted {planted_sizes}",
            )
        )
        prolific = trace.workers_with_min_reviews(
            config.prolific_min_reviews, WorkerType.HONEST
        )
        needed = int(min_prolific_fraction * config.n_prolific_honest)
        checks.append(
            CalibrationCheck(
                name="enough_prolific_honest_workers",
                passed=len(prolific) >= needed,
                detail=f"{len(prolific)} with >= {config.prolific_min_reviews} reviews",
            )
        )

    # Ring recoverability: clustering on shared targets must reproduce
    # the planted communities exactly.
    clusters = cluster_collusive_workers(trace.malicious_targets())
    planted = {
        frozenset(members) for members in trace.planted_communities().values()
    }
    checks.append(
        CalibrationCheck(
            name="clustering_recovers_planted_rings",
            passed=set(clusters.communities) == planted,
            detail=(
                f"found {clusters.n_communities} communities, "
                f"planted {len(planted)}"
            ),
        )
    )

    # Fig. 7 signature.
    aggregates = trace.class_aggregates()
    efforts = [
        aggregates[worker_type]["mean_effort"]
        for worker_type in WorkerType
        if aggregates[worker_type]["n_workers"] > 0
    ]
    if efforts and min(efforts) > 0:
        checks.append(
            CalibrationCheck(
                name="efforts_similar_across_classes",
                passed=max(efforts) <= effort_similarity * min(efforts),
                detail=f"spread {max(efforts) / min(efforts):.2f}x",
            )
        )
    cm = aggregates[WorkerType.COLLUSIVE_MALICIOUS]["mean_feedback"]
    others = max(
        aggregates[WorkerType.HONEST]["mean_feedback"],
        aggregates[WorkerType.NONCOLLUSIVE_MALICIOUS]["mean_feedback"],
    )
    if others > 0:
        checks.append(
            CalibrationCheck(
                name="collusive_feedback_dominates",
                passed=cm >= feedback_dominance * others,
                detail=f"ratio {cm / others:.2f}x",
            )
        )

    # Malicious rating bias: required for Eq. (5) weights to separate.
    honest_dev, malicious_dev = [], []
    for review in trace.reviews:
        reviewer = trace.reviewers[review.reviewer_id]
        expert = trace.products[review.product_id].expert_score
        target = malicious_dev if reviewer.is_malicious else honest_dev
        target.append(abs(review.rating - expert))
    if honest_dev and malicious_dev:
        checks.append(
            CalibrationCheck(
                name="malicious_ratings_deviate_more",
                passed=float(np.mean(malicious_dev))
                > float(np.mean(honest_dev)),
                detail=(
                    f"malicious {np.mean(malicious_dev):.2f} vs honest "
                    f"{np.mean(honest_dev):.2f}"
                ),
            )
        )
    return CalibrationReport(checks=tuple(checks))
