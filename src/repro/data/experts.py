"""Expert panel: ground-truth review scores (Section II).

The paper measures review accuracy against "the average review score
given by experts", treating that consensus as the task's ground truth.
This module models the panel: experts observe a product's true quality
with small independent errors and the consensus is their mean, clipped
to the rating scale.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from .schema import MAX_RATING, MIN_RATING

__all__ = ["ExpertPanel"]


class ExpertPanel:
    """A panel of expert reviewers producing consensus scores.

    Args:
        n_experts: panel size; the consensus error shrinks as
            ``score_noise / sqrt(n_experts)``.
        score_noise: standard deviation of one expert's error.
        rng: numpy random generator (seeded by the caller).
    """

    def __init__(
        self,
        n_experts: int = 5,
        score_noise: float = 0.2,
        rng: np.random.Generator = None,
    ) -> None:
        if n_experts < 1:
            raise DataError(f"n_experts must be >= 1, got {n_experts!r}")
        if score_noise < 0.0:
            raise DataError(f"score_noise must be >= 0, got {score_noise!r}")
        self.n_experts = n_experts
        self.score_noise = score_noise
        self._rng = rng if rng is not None else np.random.default_rng()

    def consensus(self, true_quality: float) -> float:
        """The panel's mean score for a product of given true quality."""
        if not MIN_RATING <= true_quality <= MAX_RATING:
            raise DataError(
                f"true_quality must lie in [{MIN_RATING}, {MAX_RATING}], "
                f"got {true_quality!r}"
            )
        errors = self._rng.normal(0.0, self.score_noise, size=self.n_experts)
        score = true_quality + float(np.mean(errors))
        return float(np.clip(score, MIN_RATING, MAX_RATING))

    def consensus_batch(self, true_qualities: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`consensus` over many products."""
        qualities = np.asarray(true_qualities, dtype=float)
        if qualities.size and (
            qualities.min() < MIN_RATING or qualities.max() > MAX_RATING
        ):
            raise DataError("true qualities must lie within the rating scale")
        errors = self._rng.normal(
            0.0, self.score_noise, size=(qualities.size, self.n_experts)
        )
        scores = qualities + errors.mean(axis=1)
        return np.clip(scores, MIN_RATING, MAX_RATING)
