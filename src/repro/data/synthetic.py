"""Calibrated synthetic Amazon review trace (dataset substitution).

The paper evaluates on a private Amazon trace ([13]) with ground-truth
malice labels crawled from underground recruiting sites.  That dataset
is not publicly distributable, so this module generates a synthetic
trace calibrated to every statistic the paper publishes:

* 118,142 reviews by 19,686 reviewers over 75,508 products;
* 1,524 malicious reviewers, of which 212 collusive in 47 communities;
* the Table II community-size histogram (matched as closely as 47
  integer community sizes allow — see ``PAPER_COMMUNITY_SIZES``);
* concave-quadratic feedback-vs-effort relations per worker class
  (what makes the Table III order sweep favor quadratics);
* similar effort distributions across classes but strongly inflated
  collusive feedback via intra-community upvoting (the Fig. 7
  signature);
* honest ratings near the expert consensus, malicious ratings biased
  upward — with a *subtle* malicious minority whose bias is small
  ("biased but still accurate within a certain acceptable range"),
  which is what makes the dynamic contract beat the exclusion baseline
  in Fig. 8c.

Every draw flows from one seeded :class:`numpy.random.Generator`, so a
``(config, seed)`` pair pins the trace exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.effort import QuadraticEffort
from ..errors import TraceCalibrationError
from ..types import WorkerType
from .dataset import ReviewTrace
from .endorsements import EndorsementModel
from .experts import ExpertPanel
from .schema import MAX_RATING, MIN_RATING, Product, Review, Reviewer

__all__ = ["TraceConfig", "AmazonTraceGenerator", "PAPER_COMMUNITY_SIZES"]

#: 47 community sizes summing to 212 workers, matching Table II's
#: histogram as closely as integers allow: 24 pairs (51.1% vs paper's
#: 51.2%), 10 triples (21.3% / 22.0%), 3 of size 4 (6.4% / 7.3%), 1 of
#: size 5 (2.1% / 2.4%), 5 of size 6 (10.6% / 9.8%), 2 in 7-9 (the
#: paper's percentages only sum to 97.6%), and 2 of size >= 10
#: (4.3% / 4.9%).
PAPER_COMMUNITY_SIZES: Tuple[int, ...] = (
    (40, 32, 8, 7) + (6,) * 5 + (5,) + (4,) * 3 + (3,) * 10 + (2,) * 24
)

#: Product categories the paper mentions.
CATEGORIES: Tuple[str, ...] = ("electronics", "books", "beauty", "medications")


@dataclass(frozen=True)
class TraceConfig:
    """All calibration knobs of the synthetic trace.

    The defaults reproduce the paper's full-scale dataset; use
    :meth:`small` for test-sized traces with the same structure.

    Attributes:
        n_reviewers: total reviewers.
        n_malicious: reviewers with a malicious planted label.
        community_sizes: collusive community sizes (sum <= n_malicious).
        n_products: total products.
        n_reviews: total reviews (matched exactly).
        n_prolific_honest: honest workers guaranteed many reviews
            (Fig. 8a needs 200 honest workers with >= 20 reviews).
        prolific_min_reviews: review floor for prolific workers.
        prolific_extra_mean: Poisson mean of reviews beyond the floor.
        mean_text_length: median review length in characters.
        length_sigma: lognormal sigma of review length.
        expertise_sigma: lognormal sigma of worker latent expertise.
        effort_scale: converts expertise x normalized length to effort.
        honest_psi / ncm_psi / cm_psi: per-class organic feedback curves.
        honest_noise / ncm_noise / cm_noise: organic upvote noise std.
        honest_worker_spread / ncm_worker_spread / cm_worker_spread: std
            of the per-worker popularity offset shared by all of one
            worker's reviews — the idiosyncratic spread that dominates
            the Table III residual norms in the real trace.
        boost_rate / boost_cap: collusive upvote model (per partner).
        rating_noise: honest rating noise around true quality.
        subtle_fraction: fraction of malicious workers with small bias.
        subtle_bias: rating bias of subtle malicious workers.
        bias_range: rating-bias range of blatant malicious workers.
        ncm_reviews: (min, max) reviews per non-collusive malicious
            worker (each on a distinct private target product).
        cm_reviews: (min, max) reviews per collusive member (always
            including the community's anchor product).
    """

    n_reviewers: int = 19_686
    n_malicious: int = 1_524
    community_sizes: Tuple[int, ...] = PAPER_COMMUNITY_SIZES
    n_products: int = 75_508
    n_reviews: int = 118_142
    n_prolific_honest: int = 300
    prolific_min_reviews: int = 20
    prolific_extra_mean: float = 8.0
    mean_text_length: float = 400.0
    length_sigma: float = 0.5
    expertise_sigma: float = 0.35
    effort_scale: float = 2.0
    honest_psi: QuadraticEffort = field(
        default_factory=lambda: QuadraticEffort(r2=-0.05, r1=1.2, r0=0.5)
    )
    ncm_psi: QuadraticEffort = field(
        default_factory=lambda: QuadraticEffort(r2=-0.04, r1=0.9, r0=0.3)
    )
    cm_psi: QuadraticEffort = field(
        default_factory=lambda: QuadraticEffort(r2=-0.04, r1=0.9, r0=0.3)
    )
    honest_noise: float = 0.25
    ncm_noise: float = 0.18
    cm_noise: float = 0.8
    honest_worker_spread: float = 0.6
    ncm_worker_spread: float = 0.35
    cm_worker_spread: float = 1.2
    boost_rate: float = 0.8
    boost_cap: int = 15
    rating_noise: float = 0.35
    subtle_fraction: float = 0.3
    subtle_bias: float = 0.5
    bias_range: Tuple[float, float] = (1.5, 3.0)
    ncm_reviews: Tuple[int, int] = (2, 8)
    cm_reviews: Tuple[int, int] = (2, 6)

    def __post_init__(self) -> None:
        if self.n_reviewers < 1 or self.n_products < 1 or self.n_reviews < 1:
            raise TraceCalibrationError("counts must be positive")
        if not 0 <= self.n_malicious <= self.n_reviewers:
            raise TraceCalibrationError(
                f"n_malicious={self.n_malicious} exceeds n_reviewers="
                f"{self.n_reviewers}"
            )
        if any(size < 2 for size in self.community_sizes):
            raise TraceCalibrationError("community sizes must all be >= 2")
        if sum(self.community_sizes) > self.n_malicious:
            raise TraceCalibrationError(
                f"community sizes sum to {sum(self.community_sizes)} > "
                f"n_malicious={self.n_malicious}"
            )
        if self.n_prolific_honest > self.n_honest:
            raise TraceCalibrationError(
                f"n_prolific_honest={self.n_prolific_honest} exceeds the "
                f"{self.n_honest} honest workers"
            )
        if not 0.0 <= self.subtle_fraction <= 1.0:
            raise TraceCalibrationError("subtle_fraction must lie in [0, 1]")
        for name in ("honest_worker_spread", "ncm_worker_spread", "cm_worker_spread"):
            if getattr(self, name) < 0.0:
                raise TraceCalibrationError(f"{name} must be >= 0")
        for name, (low, high) in (
            ("ncm_reviews", self.ncm_reviews),
            ("cm_reviews", self.cm_reviews),
        ):
            if not 1 <= low <= high:
                raise TraceCalibrationError(f"{name} bounds are invalid: {low}..{high}")
        min_reviews = self._min_total_reviews()
        if self.n_reviews < min_reviews:
            raise TraceCalibrationError(
                f"n_reviews={self.n_reviews} cannot cover the structural "
                f"minimum of {min_reviews}"
            )
        reserved = self._reserved_products()
        if reserved > self.n_products:
            raise TraceCalibrationError(
                f"need {reserved} reserved target products but only "
                f"{self.n_products} exist"
            )

    @property
    def n_collusive(self) -> int:
        """Workers inside collusive communities."""
        return sum(self.community_sizes)

    @property
    def n_noncollusive_malicious(self) -> int:
        """Malicious workers outside any community."""
        return self.n_malicious - self.n_collusive

    @property
    def n_honest(self) -> int:
        """Honest workers."""
        return self.n_reviewers - self.n_malicious

    def _min_total_reviews(self) -> int:
        """Structural floor: every worker writes at least one review,
        prolific workers write their floor, malicious their minimum."""
        return (
            (self.n_honest - self.n_prolific_honest)
            + self.n_prolific_honest * self.prolific_min_reviews
            + self.n_noncollusive_malicious * self.ncm_reviews[0]
            + self.n_collusive * self.cm_reviews[0]
        )

    def _reserved_products(self) -> int:
        """Products reserved as malicious targets (disjoint blocks, so
        planted communities are exactly recoverable by clustering)."""
        community_pool = sum(max(3, size) for size in self.community_sizes)
        ncm_pool = self.n_noncollusive_malicious * self.ncm_reviews[1]
        return community_pool + ncm_pool

    @staticmethod
    def paper() -> "TraceConfig":
        """The full-scale configuration matching the paper's counts."""
        return TraceConfig()

    @staticmethod
    def small(seed_sizes: Sequence[int] = (10, 6, 4, 3, 3, 2, 2, 2)) -> "TraceConfig":
        """A test-sized trace preserving all structure (~6k reviews)."""
        return TraceConfig(
            n_reviewers=1_000,
            n_malicious=110,
            community_sizes=tuple(seed_sizes),
            n_products=4_000,
            n_reviews=6_000,
            n_prolific_honest=40,
        )


class AmazonTraceGenerator:
    """Seeded generator of calibrated synthetic review traces.

    Args:
        config: calibration targets; defaults to the paper's counts.
        seed: seed of the single numpy generator driving every draw.
    """

    def __init__(self, config: TraceConfig = None, seed: int = 0) -> None:
        self.config = config if config is not None else TraceConfig()
        self.seed = seed

    def generate(self) -> ReviewTrace:
        """Produce the full trace."""
        rng = np.random.default_rng(self.seed)
        config = self.config

        products = self._make_products(rng)
        reviewers, communities = self._make_reviewers(rng)
        counts = self._review_counts(rng, reviewers, communities)

        reviews: List[Review] = []
        review_counter = 0

        # Disjoint target-product blocks: community pools first, then
        # per-NCM private blocks; honest workers roam the whole catalog.
        next_block = 0
        community_pools: Dict[str, List[int]] = {}
        for community_id, members in communities.items():
            pool_size = max(3, len(members))
            community_pools[community_id] = list(
                range(next_block, next_block + pool_size)
            )
            next_block += pool_size

        endorsements = {
            WorkerType.HONEST: EndorsementModel(
                config.honest_psi, noise_std=config.honest_noise
            ),
            WorkerType.NONCOLLUSIVE_MALICIOUS: EndorsementModel(
                config.ncm_psi, noise_std=config.ncm_noise
            ),
            WorkerType.COLLUSIVE_MALICIOUS: EndorsementModel(
                config.cm_psi,
                noise_std=config.cm_noise,
                boost_rate=config.boost_rate,
                boost_cap=config.boost_cap,
            ),
        }

        community_size = {cid: len(m) for cid, m in communities.items()}
        bias_of = self._malicious_biases(rng, reviewers)
        worker_spread = {
            WorkerType.HONEST: config.honest_worker_spread,
            WorkerType.NONCOLLUSIVE_MALICIOUS: config.ncm_worker_spread,
            WorkerType.COLLUSIVE_MALICIOUS: config.cm_worker_spread,
        }

        for reviewer in reviewers:
            n_worker_reviews = counts[reviewer.reviewer_id]
            if n_worker_reviews == 0:
                continue
            worker_type = reviewer.worker_type
            if worker_type is WorkerType.HONEST:
                product_indices = self._honest_products(rng, n_worker_reviews)
            elif worker_type is WorkerType.NONCOLLUSIVE_MALICIOUS:
                product_indices = list(
                    range(next_block, next_block + n_worker_reviews)
                )
                next_block += n_worker_reviews
            else:
                pool = community_pools[reviewer.community_id]
                anchor = pool[0]
                extras = [p for p in pool[1:]]
                rng.shuffle(extras)
                product_indices = [anchor] + extras[: n_worker_reviews - 1]

            n_actual = len(product_indices)
            lengths = np.maximum(
                rng.lognormal(
                    math.log(config.mean_text_length),
                    config.length_sigma,
                    size=n_actual,
                ),
                30.0,
            )
            psi = endorsements[worker_type].effort_function
            efforts = (
                reviewer.latent_expertise
                * (lengths / config.mean_text_length)
                * config.effort_scale
            )
            efforts = np.minimum(efforts, 0.95 * psi.max_increasing_effort)
            n_partners = (
                community_size[reviewer.community_id] - 1
                if worker_type is WorkerType.COLLUSIVE_MALICIOUS
                else 0
            )
            worker_offset = float(rng.normal(0.0, worker_spread[worker_type]))
            upvotes = endorsements[worker_type].sample_upvotes(
                efforts, n_partners, rng, worker_offset=worker_offset
            )
            ratings = self._ratings(
                rng,
                [products[index] for index in product_indices],
                bias_of.get(reviewer.reviewer_id),
            )
            for position, product_index in enumerate(product_indices):
                reviews.append(
                    Review(
                        review_id=f"r{review_counter:07d}",
                        reviewer_id=reviewer.reviewer_id,
                        product_id=products[product_index].product_id,
                        rating=float(ratings[position]),
                        text_length=int(lengths[position]),
                        upvotes=int(upvotes[position]),
                        latent_effort=float(efforts[position]),
                    )
                )
                review_counter += 1

        return ReviewTrace(products=products, reviewers=reviewers, reviews=reviews)

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------

    def _make_products(self, rng: np.random.Generator) -> List[Product]:
        config = self.config
        qualities = np.clip(
            rng.normal(3.6, 0.7, size=config.n_products), MIN_RATING, MAX_RATING
        )
        panel = ExpertPanel(n_experts=5, score_noise=0.2, rng=rng)
        expert_scores = panel.consensus_batch(qualities)
        categories = rng.choice(len(CATEGORIES), size=config.n_products)
        return [
            Product(
                product_id=f"p{index:06d}",
                true_quality=float(qualities[index]),
                expert_score=float(expert_scores[index]),
                category=CATEGORIES[categories[index]],
            )
            for index in range(config.n_products)
        ]

    def _make_reviewers(
        self, rng: np.random.Generator
    ) -> Tuple[List[Reviewer], Dict[str, List[str]]]:
        config = self.config
        expertise = rng.lognormal(0.0, config.expertise_sigma, size=config.n_reviewers)
        reviewers: List[Reviewer] = []
        communities: Dict[str, List[str]] = {}
        index = 0
        for _ in range(config.n_honest):
            reviewers.append(
                Reviewer(
                    reviewer_id=f"w{index:05d}",
                    worker_type=WorkerType.HONEST,
                    latent_expertise=float(expertise[index]),
                )
            )
            index += 1
        for _ in range(config.n_noncollusive_malicious):
            reviewers.append(
                Reviewer(
                    reviewer_id=f"w{index:05d}",
                    worker_type=WorkerType.NONCOLLUSIVE_MALICIOUS,
                    latent_expertise=float(expertise[index]),
                )
            )
            index += 1
        for community_index, size in enumerate(config.community_sizes):
            community_id = f"c{community_index:03d}"
            members: List[str] = []
            for _ in range(size):
                reviewer = Reviewer(
                    reviewer_id=f"w{index:05d}",
                    worker_type=WorkerType.COLLUSIVE_MALICIOUS,
                    community_id=community_id,
                    latent_expertise=float(expertise[index]),
                )
                reviewers.append(reviewer)
                members.append(reviewer.reviewer_id)
                index += 1
            communities[community_id] = members
        return reviewers, communities

    def _review_counts(
        self,
        rng: np.random.Generator,
        reviewers: Sequence[Reviewer],
        communities: Dict[str, List[str]],
    ) -> Dict[str, int]:
        """Per-worker review counts summing exactly to ``n_reviews``."""
        config = self.config
        counts: Dict[str, int] = {}
        honest_ids: List[str] = []
        malicious_total = 0
        for reviewer in reviewers:
            if reviewer.worker_type is WorkerType.HONEST:
                honest_ids.append(reviewer.reviewer_id)
            elif reviewer.worker_type is WorkerType.NONCOLLUSIVE_MALICIOUS:
                low, high = config.ncm_reviews
                counts[reviewer.reviewer_id] = int(rng.integers(low, high + 1))
                malicious_total += counts[reviewer.reviewer_id]
            else:
                low, high = config.cm_reviews
                # A member cannot review more products than its
                # community's pool holds (one review per product).
                pool_size = max(3, len(communities[reviewer.community_id]))
                draw = int(rng.integers(low, high + 1))
                counts[reviewer.reviewer_id] = min(draw, pool_size)
                malicious_total += counts[reviewer.reviewer_id]

        honest_budget = config.n_reviews - malicious_total
        n_prolific = config.n_prolific_honest
        prolific = honest_ids[:n_prolific]
        regular = honest_ids[n_prolific:]
        for worker_id in prolific:
            counts[worker_id] = config.prolific_min_reviews + int(
                rng.poisson(config.prolific_extra_mean)
            )
        remaining = honest_budget - sum(counts[w] for w in prolific)
        if regular:
            if remaining < len(regular):
                raise TraceCalibrationError(
                    "review budget too small for every honest worker to review once"
                )
            mean_rest = remaining / len(regular)
            draws = rng.geometric(min(1.0, 1.0 / mean_rest), size=len(regular))
            for worker_id, draw in zip(regular, draws):
                counts[worker_id] = int(draw)
        # Exactly hit the target: push the residual onto random regular
        # honest workers, one review at a time (never below one review).
        pool = regular if regular else prolific
        residual = config.n_reviews - sum(counts.values())
        while residual != 0:
            step = 1 if residual > 0 else -1
            batch = min(abs(residual), len(pool))
            chosen = rng.choice(len(pool), size=batch, replace=False)
            for position in chosen:
                worker_id = pool[position]
                if step < 0 and counts[worker_id] <= 1:
                    continue
                counts[worker_id] += step
                residual -= step
                if residual == 0:
                    break
        return counts

    def _honest_products(self, rng: np.random.Generator, count: int) -> List[int]:
        """Catalog-wide product picks, distinct within the worker."""
        chosen = rng.integers(0, self.config.n_products, size=count)
        unique = list(dict.fromkeys(int(p) for p in chosen))
        while len(unique) < count:
            extra = int(rng.integers(0, self.config.n_products))
            if extra not in unique:
                unique.append(extra)
        return unique

    def _malicious_biases(
        self, rng: np.random.Generator, reviewers: Sequence[Reviewer]
    ) -> Dict[str, float]:
        """Planted rating bias per malicious worker.

        A ``subtle_fraction`` of malicious workers carries a small bias —
        the "biased but still accurate within a certain acceptable range"
        population whose feedback the dynamic contract can still harvest
        (Fig. 8c).
        """
        config = self.config
        biases: Dict[str, float] = {}
        for reviewer in reviewers:
            if not reviewer.is_malicious:
                continue
            if rng.random() < config.subtle_fraction:
                biases[reviewer.reviewer_id] = config.subtle_bias
            else:
                low, high = config.bias_range
                biases[reviewer.reviewer_id] = float(rng.uniform(low, high))
        return biases

    def _ratings(
        self,
        rng: np.random.Generator,
        reviewed: Sequence[Product],
        bias: float = None,
    ) -> np.ndarray:
        config = self.config
        qualities = np.array([product.true_quality for product in reviewed])
        noise = rng.normal(0.0, config.rating_noise, size=len(reviewed))
        if bias is None:
            ratings = qualities + noise
        else:
            ratings = qualities + bias + 0.85 * noise
        return np.clip(ratings, MIN_RATING, MAX_RATING)
