"""CSV interoperability for review traces.

JSON-lines (see :meth:`~repro.data.dataset.ReviewTrace.save`) is the
native format; this module adds three-file CSV export/import so traces
can round-trip through spreadsheet tools and dataframe libraries:

    <stem>.products.csv    product_id,true_quality,expert_score,category
    <stem>.reviewers.csv   reviewer_id,worker_type,community_id,latent_expertise
    <stem>.reviews.csv     review_id,reviewer_id,product_id,rating,
                           text_length,upvotes,latent_effort
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

from ..errors import DataError
from ..types import WorkerType
from .dataset import ReviewTrace
from .schema import Product, Review, Reviewer

__all__ = ["export_csv", "import_csv"]

_PRODUCT_FIELDS = ["product_id", "true_quality", "expert_score", "category"]
_REVIEWER_FIELDS = [
    "reviewer_id",
    "worker_type",
    "community_id",
    "latent_expertise",
]
_REVIEW_FIELDS = [
    "review_id",
    "reviewer_id",
    "product_id",
    "rating",
    "text_length",
    "upvotes",
    "latent_effort",
]


def _paths(stem) -> dict:
    stem = Path(stem)
    return {
        "products": stem.with_suffix(".products.csv"),
        "reviewers": stem.with_suffix(".reviewers.csv"),
        "reviews": stem.with_suffix(".reviews.csv"),
    }


def export_csv(trace: ReviewTrace, stem: Union[str, Path]) -> Dict[str, Path]:
    """Write the trace to three CSV files; returns the paths used."""
    paths = _paths(stem)
    with paths["products"].open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_PRODUCT_FIELDS)
        writer.writeheader()
        for product in trace.products.values():
            writer.writerow(
                {
                    "product_id": product.product_id,
                    "true_quality": product.true_quality,
                    "expert_score": product.expert_score,
                    "category": product.category,
                }
            )
    with paths["reviewers"].open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_REVIEWER_FIELDS)
        writer.writeheader()
        for reviewer in trace.reviewers.values():
            writer.writerow(
                {
                    "reviewer_id": reviewer.reviewer_id,
                    "worker_type": reviewer.worker_type.value,
                    "community_id": reviewer.community_id or "",
                    "latent_expertise": reviewer.latent_expertise,
                }
            )
    with paths["reviews"].open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_REVIEW_FIELDS)
        writer.writeheader()
        for review in trace.reviews:
            writer.writerow(
                {
                    "review_id": review.review_id,
                    "reviewer_id": review.reviewer_id,
                    "product_id": review.product_id,
                    "rating": review.rating,
                    "text_length": review.text_length,
                    "upvotes": review.upvotes,
                    "latent_effort": review.latent_effort,
                }
            )
    return paths


def import_csv(stem: Union[str, Path]) -> ReviewTrace:
    """Read a trace previously written by :func:`export_csv`.

    Raises:
        DataError: when a file is missing or a header does not match.
    """
    paths = _paths(stem)
    for name, path in paths.items():
        if not path.exists():
            raise DataError(f"missing CSV file for {name}: {path}")

    products: List[Product] = []
    with paths["products"].open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        _check_header(reader.fieldnames, _PRODUCT_FIELDS, paths["products"])
        for row in reader:
            products.append(
                Product(
                    product_id=row["product_id"],
                    true_quality=float(row["true_quality"]),
                    expert_score=float(row["expert_score"]),
                    category=row["category"],
                )
            )

    reviewers: List[Reviewer] = []
    with paths["reviewers"].open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        _check_header(reader.fieldnames, _REVIEWER_FIELDS, paths["reviewers"])
        for row in reader:
            reviewers.append(
                Reviewer(
                    reviewer_id=row["reviewer_id"],
                    worker_type=WorkerType(row["worker_type"]),
                    community_id=row["community_id"] or None,
                    latent_expertise=float(row["latent_expertise"]),
                )
            )

    reviews: List[Review] = []
    with paths["reviews"].open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        _check_header(reader.fieldnames, _REVIEW_FIELDS, paths["reviews"])
        for row in reader:
            reviews.append(
                Review(
                    review_id=row["review_id"],
                    reviewer_id=row["reviewer_id"],
                    product_id=row["product_id"],
                    rating=float(row["rating"]),
                    text_length=int(row["text_length"]),
                    upvotes=int(row["upvotes"]),
                    latent_effort=float(row["latent_effort"]),
                )
            )
    return ReviewTrace(products=products, reviewers=reviewers, reviews=reviews)


def _check_header(actual, expected, path) -> None:
    if list(actual or []) != expected:
        raise DataError(
            f"{path}: unexpected header {actual!r}; expected {expected!r}"
        )
