"""Endorsement (upvote) model: organic quality-driven plus collusive.

Feedback in the paper is the number of "helpful" upvotes a review
collects.  Our model has two components, mirroring the paper's Fig. 7
diagnosis ("collusive malicious workers have much higher feedback ...
a result of malicious workers in the same collusive community upvoting
each others' reviews"):

* an *organic* component: the class effort function ``psi`` evaluated at
  the review's effort, plus zero-mean noise — genuine readers reward
  effortful reviews with diminishing returns; and
* a *collusive boost*: community members upvote each other, adding
  roughly ``boost_rate`` upvotes per partner, saturating at
  ``boost_cap`` partners (even a 40-member ring cannot put unbounded
  upvotes on one review without detection).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.effort import QuadraticEffort
from ..errors import DataError

__all__ = ["EndorsementModel"]


@dataclass(frozen=True)
class EndorsementModel:
    """Upvote generator for one worker class.

    Attributes:
        effort_function: the class's organic feedback curve ``psi``.
        noise_std: standard deviation of the organic noise.
        boost_rate: expected extra upvotes per collusive partner.
        boost_cap: partners beyond this add no further boost.
    """

    effort_function: QuadraticEffort
    noise_std: float = 0.3
    boost_rate: float = 0.0
    boost_cap: int = 15

    def __post_init__(self) -> None:
        if self.noise_std < 0.0:
            raise DataError(f"noise_std must be >= 0, got {self.noise_std!r}")
        if self.boost_rate < 0.0:
            raise DataError(f"boost_rate must be >= 0, got {self.boost_rate!r}")
        if self.boost_cap < 0:
            raise DataError(f"boost_cap must be >= 0, got {self.boost_cap!r}")

    def expected_upvotes(self, effort: float, n_partners: int = 0) -> float:
        """Mean upvote count for a review at the given effort."""
        if effort < 0.0:
            raise DataError(f"effort must be >= 0, got {effort!r}")
        if n_partners < 0:
            raise DataError(f"n_partners must be >= 0, got {n_partners!r}")
        organic = float(self.effort_function(effort))
        boost = self.boost_rate * min(n_partners, self.boost_cap)
        return max(organic, 0.0) + boost

    def sample_upvotes(
        self,
        efforts: np.ndarray,
        n_partners: int,
        rng: np.random.Generator,
        worker_offset: float = 0.0,
    ) -> np.ndarray:
        """Sample integer upvote counts for a batch of reviews.

        Args:
            efforts: per-review effort levels (non-negative).
            n_partners: the worker's collusive partner count.
            rng: numpy random generator.
            worker_offset: a per-worker popularity offset shared by all
                of the worker's reviews (real reviewers have persistent
                audiences; this is what keeps the Table III residual
                norms dominated by idiosyncratic spread, as in the real
                trace, rather than by proxy curvature).

        Returns:
            Integer upvote counts, clipped at zero.
        """
        efforts_arr = np.asarray(efforts, dtype=float)
        if efforts_arr.size and efforts_arr.min() < 0.0:
            raise DataError("efforts must be non-negative")
        organic = np.maximum(self.effort_function(efforts_arr), 0.0)
        boost = self.boost_rate * min(n_partners, self.boost_cap)
        noisy = (
            organic
            + boost
            + worker_offset
            + rng.normal(0.0, self.noise_std, size=efforts_arr.shape)
        )
        return np.maximum(np.rint(noisy), 0.0).astype(int)
