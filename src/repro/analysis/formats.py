"""Output renderers for ``repro lint``: text, JSON, and SARIF 2.1.0.

The JSON format is a small stable schema for scripting; the SARIF
document targets the subset GitHub code scanning consumes (driver
rules, results with ``ruleId``/``message``/``locations`` and a
``partialFingerprints`` entry carrying the theory-lint baseline
fingerprint), built with the stdlib only.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from .engine import Diagnostic

__all__ = ["LINT_FORMATS", "render_json", "render_sarif", "render_text"]

#: Formats accepted by ``repro lint --format``.
LINT_FORMATS = ("text", "json", "sarif")

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_TOOL_NAME = "theory-lint"


class RuleLike:
    """Minimal shape shared by per-file rules and flow passes."""

    code: str
    name: str
    summary: str
    rationale: str


def render_text(
    new: Sequence[Diagnostic],
    stale: Iterable[str],
    suppressed: int,
    baseline_path: object,
) -> str:
    """The classic human-readable report (one finding per line)."""
    lines: List[str] = [diag.format() for diag in new]
    if suppressed:
        lines.append(
            f"({suppressed} grandfathered finding(s) suppressed by {baseline_path})"
        )
    for fingerprint in sorted(stale):
        lines.append(f"stale baseline entry (no longer found): {fingerprint}")
    if new:
        lines.append(f"{len(new)} new finding(s)")
    return "\n".join(lines)


def render_json(
    new: Sequence[Diagnostic],
    stale: Iterable[str],
    suppressed: int,
) -> str:
    """Findings as one JSON document (stable schema for scripting)."""
    document = {
        "tool": _TOOL_NAME,
        "findings": [
            {
                "path": diag.path,
                "line": diag.line,
                "column": diag.column + 1,
                "code": diag.code,
                "message": diag.message,
                "context": diag.context,
                "fingerprint": diag.fingerprint,
            }
            for diag in new
        ],
        "suppressed": suppressed,
        "stale_baseline_entries": sorted(stale),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(
    new: Sequence[Diagnostic],
    rules: Sequence[RuleLike],
) -> str:
    """Findings as a SARIF 2.1.0 document (GitHub code-scanning subset)."""
    used_codes = {diag.code for diag in new}
    driver_rules: List[Dict[str, object]] = []
    indices: Dict[str, int] = {}
    for rule in rules:
        if rule.code not in used_codes:
            continue
        indices[rule.code] = len(driver_rules)
        driver_rules.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results: List[Dict[str, object]] = []
    for diag in new:
        result: Dict[str, object] = {
            "ruleId": diag.code,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.column + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"theoryLintFingerprint/v1": diag.fingerprint},
        }
        if diag.code in indices:
            result["ruleIndex"] = indices[diag.code]
        results.append(result)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
