"""REPRO010: fast kernels must stay on the batch path.

PR 4's ``fast_step`` and PR 5's ``vectorized_sweep`` earn their speedups
by replacing the per-subject object path (one ``respond``/
``realize_feedback``/``rating_deviation`` call and one generator draw
per subject) with stacked numpy operations.  The equivalence contracts
guarantee *correctness* of that split but not *performance*: nothing
stops a later edit from quietly re-introducing an O(population) Python
loop of scalar calls inside the fast kernel, which keeps tests green
while silently regressing the round cost back to the object path.

This pass flags, inside registered fast kernels and batch helpers:

* scalar object-path calls (``agent.respond(...)``,
  ``.realize_feedback(...)``, ``.rating_deviation(...)``,
  ``solve_best_response(...)``, ...) under any loop or comprehension;
* per-element generator draws (``rng.normal(...)`` under a loop) —
  fast kernels draw one stacked block per round;
* construction of designer-layer objects (``Contract``,
  ``PiecewiseLinear``, ...) inside loops over populations.

Columnar kernels (PR 12's ``fast_columnar_step`` family — any
registered kernel with ``columnar`` in its name) are held to a stricter
standard still: indexing the lazy ``.agents``/``.subproblems`` views
(``population.agents[...]``) materializes one Python object per subject,
and reading ``.effort_function``/``.params`` inside a loop re-routes the
psi coefficients and worker parameters through object attribute dispatch
— both defeat the structure-of-arrays layout even when no scalar call is
made, so the pass flags them in columnar kernels specifically.

Sharded parallel kernels (``parallel_*`` functions fronting a shard
pool over ``multiprocessing.shared_memory``) are scanned with the same
checks plus one of their own: attaching a ``SharedMemory`` segment — or
``.close()``/``.unlink()``-ing one — inside a loop churns one mmap
syscall pair per element where the engine attaches once per worker
process; the pass flags per-element segment lifecycle calls so the
attach-once discipline survives refactors.

Loops over fixed small structures (contract pieces, partitions) are
fine; only population-shaped iteration is held to the batch discipline.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..engine import Diagnostic
from .base import FlowPass
from .index import FunctionInfo, ProjectIndex, rng_parameter_names

__all__ = ["PurityPass"]

#: Scalar object-path calls that have batched counterparts (or are the
#: per-subject solve the fast path exists to avoid).
_SCALAR_CALLS: Tuple[str, ...] = (
    "respond",
    "realize_feedback",
    "rating_deviation",
    "pay_for_feedback",
    "solve_best_response",
    "build_candidate",
    "as_feedback_function",
)

#: Designer-layer classes whose per-element construction inside a
#: population loop marks a regression to the object path.
_DESIGN_CLASSES: Tuple[str, ...] = (
    "Contract",
    "CandidateContract",
    "PiecewiseLinear",
    "ContractDesigner",
)

#: Lazy per-subject views whose subscripting inside a columnar kernel
#: materializes one Python object per subject.
_COLUMNAR_VIEW_ATTRS: Tuple[str, ...] = (
    "agents",
    "subproblems",
)

#: Object attributes whose per-element load inside a columnar-kernel
#: loop regresses the psi/parameter reads to attribute dispatch.
_COLUMNAR_OBJECT_ATTRS: Tuple[str, ...] = (
    "effort_function",
    "params",
)

#: Constructors that attach a shared-memory segment; calling one inside
#: a loop churns an mmap per element instead of attaching once.
_SHARED_MEMORY_CONSTRUCTORS: Tuple[str, ...] = ("SharedMemory",)

#: Segment lifecycle methods whose per-element invocation marks a
#: detach-per-element regression.
_SHARED_MEMORY_METHODS: Tuple[str, ...] = (
    "close",
    "unlink",
)

#: Substrings of a receiver that mark it as a shared-memory segment, so
#: `segment.close()` is flagged while `file.close()` is not.
_SHARED_MEMORY_HINTS: Tuple[str, ...] = (
    "shm",
    "segment",
    "shared_memory",
)

#: Substrings of a loop iterable that mark it as population-shaped.
_POPULATION_HINTS: Tuple[str, ...] = (
    "population",
    "subproblem",
    "agents",
    "subjects",
    "workers",
)


class PurityPass(FlowPass):
    """Flag object-path regressions inside registered fast kernels."""

    code = "REPRO010"
    name = "fast-path-purity"
    summary = "fast kernels must not loop scalar object-path work over populations"
    rationale = (
        "Fast kernels (fast_*/vectorized_* functions and workers/ *_batch\n"
        "helpers) replace the per-subject object path with stacked numpy\n"
        "kernels; the require_*_agree contracts pin their results to the\n"
        "legacy path bit-for-bit, so a per-subject Python loop of scalar\n"
        "calls (agent.respond, realize_feedback, rating_deviation,\n"
        "solve_best_response, ...), a per-element generator draw, or\n"
        "designer-object construction inside a population loop keeps every\n"
        "test green while regressing the round cost back to O(population)\n"
        "Python dispatch.  Columnar kernels additionally must not index\n"
        "the lazy .agents/.subproblems views or read\n"
        ".effort_function/.params per element — the columns ARE that\n"
        "data.  Sharded parallel_* kernels must not attach (SharedMemory\n"
        "construction) or detach (.close()/.unlink()) segments inside a\n"
        "loop — the engine attaches once per worker process.  Such work\n"
        "belongs in the legacy kernel or a batched helper.  Deliberate\n"
        "scalar fallbacks (e.g. the memoized solve inside respond_batch)\n"
        "carry `# noqa: REPRO010` with a justifying comment."
    )

    def check(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Scan every registered fast, parallel kernel and batch helper."""
        kernels: List[FunctionInfo] = [
            *index.fast_kernels(),
            *index.parallel_kernels(),
            *index.batch_helpers(),
        ]
        for fn in kernels:
            rng_names = rng_parameter_names(fn.node)
            findings: List[Diagnostic] = []
            self._scan(index, fn, fn.node, rng_names, 0, 0, findings)
            yield from findings

    def _scan(
        self,
        index: ProjectIndex,
        fn: FunctionInfo,
        node: ast.AST,
        rng_names: Set[str],
        loop_depth: int,
        population_depth: int,
        out: List[Diagnostic],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.For, ast.AsyncFor)):
                self._scan(index, fn, child.iter, rng_names, loop_depth, population_depth, out)
                self._scan(index, fn, child.target, rng_names, loop_depth, population_depth, out)
                inner_pop = population_depth + (1 if _is_population_iter(child.iter) else 0)
                for stmt in [*child.body, *child.orelse]:
                    self._scan(index, fn, stmt, rng_names, loop_depth + 1, inner_pop, out)
            elif isinstance(child, ast.While):
                self._scan(index, fn, child.test, rng_names, loop_depth, population_depth, out)
                for stmt in [*child.body, *child.orelse]:
                    self._scan(index, fn, stmt, rng_names, loop_depth + 1, population_depth, out)
            elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                inner_pop = population_depth
                for comp in child.generators:
                    self._scan(index, fn, comp.iter, rng_names, loop_depth, population_depth, out)
                    if _is_population_iter(comp.iter):
                        inner_pop += 1
                elements: List[ast.AST] = []
                if isinstance(child, ast.DictComp):
                    elements = [child.key, child.value]
                else:
                    elements = [child.elt]
                for comp in child.generators:
                    elements.extend(comp.ifs)
                for element in elements:
                    self._scan(index, fn, element, rng_names, loop_depth + 1, inner_pop, out)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested defs are separate kernels only if registered.
                continue
            else:
                if isinstance(child, ast.Call):
                    self._check_call(index, fn, child, rng_names, loop_depth, population_depth, out)
                if "columnar" in fn.name:
                    self._check_columnar(index, fn, child, loop_depth, out)
                self._scan(index, fn, child, rng_names, loop_depth, population_depth, out)

    def _check_columnar(
        self,
        index: ProjectIndex,
        fn: FunctionInfo,
        node: ast.AST,
        loop_depth: int,
        out: List[Diagnostic],
    ) -> None:
        """Columnar kernels must read columns, not per-subject objects."""
        if isinstance(node, ast.Subscript):
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr in _COLUMNAR_VIEW_ATTRS
            ):
                out.append(
                    self.diagnostic(
                        index,
                        fn.relpath,
                        node,
                        f"columnar kernel `{fn.qualname}` indexes the lazy "
                        f"`.{value.attr}` view per subject; read the "
                        "population columns instead",
                        context=fn.qualname,
                    )
                )
        elif (
            loop_depth > 0
            and isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and node.attr in _COLUMNAR_OBJECT_ATTRS
        ):
            out.append(
                self.diagnostic(
                    index,
                    fn.relpath,
                    node,
                    f"columnar kernel `{fn.qualname}` reads `.{node.attr}` "
                    "per element inside a loop; psi coefficients and worker "
                    "parameters are columns",
                    context=fn.qualname,
                )
            )

    def _check_call(
        self,
        index: ProjectIndex,
        fn: FunctionInfo,
        call: ast.Call,
        rng_names: Set[str],
        loop_depth: int,
        population_depth: int,
        out: List[Diagnostic],
    ) -> None:
        func = call.func
        if loop_depth > 0 and isinstance(func, ast.Attribute):
            if func.attr in _SCALAR_CALLS:
                out.append(
                    self.diagnostic(
                        index,
                        fn.relpath,
                        call,
                        f"fast kernel `{fn.qualname}` calls scalar `{func.attr}(...)` "
                        "inside a loop; use the batched path",
                        context=fn.qualname,
                    )
                )
                return
            root = func.value
            if isinstance(root, ast.Name) and root.id in rng_names:
                out.append(
                    self.diagnostic(
                        index,
                        fn.relpath,
                        call,
                        f"fast kernel `{fn.qualname}` draws `{root.id}.{func.attr}(...)` "
                        "per element inside a loop; draw one stacked block instead",
                        context=fn.qualname,
                    )
                )
                return
        if loop_depth > 0 and (
            (isinstance(func, ast.Name) and func.id in _SHARED_MEMORY_CONSTRUCTORS)
            or (
                isinstance(func, ast.Attribute)
                and func.attr in _SHARED_MEMORY_CONSTRUCTORS
            )
        ):
            out.append(
                self.diagnostic(
                    index,
                    fn.relpath,
                    call,
                    f"kernel `{fn.qualname}` attaches a `SharedMemory` segment "
                    "per element inside a loop; attach once per worker process "
                    "outside the loop",
                    context=fn.qualname,
                )
            )
            return
        if (
            loop_depth > 0
            and isinstance(func, ast.Attribute)
            and func.attr in _SHARED_MEMORY_METHODS
            and _is_shared_memory_receiver(func.value)
        ):
            out.append(
                self.diagnostic(
                    index,
                    fn.relpath,
                    call,
                    f"kernel `{fn.qualname}` calls segment `.{func.attr}()` "
                    "per element inside a loop; detach once per worker process "
                    "outside the loop",
                    context=fn.qualname,
                )
            )
            return
        if loop_depth > 0 and isinstance(func, ast.Name) and func.id in _SCALAR_CALLS:
            out.append(
                self.diagnostic(
                    index,
                    fn.relpath,
                    call,
                    f"fast kernel `{fn.qualname}` calls scalar `{func.id}(...)` "
                    "inside a loop; use the batched path",
                    context=fn.qualname,
                )
            )
            return
        if (
            population_depth > 0
            and isinstance(func, ast.Name)
            and func.id in _DESIGN_CLASSES
        ):
            out.append(
                self.diagnostic(
                    index,
                    fn.relpath,
                    call,
                    f"fast kernel `{fn.qualname}` constructs `{func.id}` per element "
                    "of a population loop; build arrays and assemble outside",
                    context=fn.qualname,
                )
            )


def _is_shared_memory_receiver(receiver: ast.AST) -> bool:
    """Whether a ``.close()``/``.unlink()`` receiver looks like a segment.

    Matches on name hints (``shm``, ``segment``, ``shared_memory``)
    anywhere in the unparsed receiver expression, so ``segment.close()``
    and ``self._shm.unlink()`` both count while ``file.close()`` and a
    pipe's ``conn.close()`` do not.
    """
    try:
        text = ast.unparse(receiver)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return False
    lowered = text.lower()
    return any(hint in lowered for hint in _SHARED_MEMORY_HINTS)


def _is_population_iter(iterable: ast.AST) -> bool:
    """Whether a loop iterable looks population-shaped.

    Matches on name hints (``population``, ``subproblems``, ``agents``,
    ...) anywhere in the unparsed iterable expression, so
    ``population.subproblems.items()`` and ``zip(agents, contracts)``
    both count while ``range(1, n_pieces + 1)`` does not.
    """
    try:
        text = ast.unparse(iterable)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return False
    lowered = text.lower()
    return any(hint in lowered for hint in _POPULATION_HINTS)
