"""REPRO013: serving classes must mutate shared state under their lock.

The serving tier (``serving/``) is the one place in the repository where
real concurrency exists: the LRU contract cache is shared across
server worker tasks and guards its map and statistics with a
``threading.Lock``.  The discipline is structural — *every* mutation of
instance state in a lock-owning class happens inside ``with
self._lock:`` (or ``async with``) — but nothing enforced it: a new
method that bumps a counter or evicts an entry outside the guard is a
data race that no single-threaded test will ever catch.

This pass finds classes in ``serving/`` modules that assign a
``threading.Lock``/``RLock`` or ``asyncio.Lock`` to an attribute in
``__init__``, then flags any method statement that mutates another
``self.*`` attribute (assignment, augmented assignment, deletion, or a
mutating container-method call such as ``.clear()``/``.pop()``/
``.move_to_end()``) outside a ``with``-block on one of the lock
attributes.  ``__init__`` itself is exempt — construction happens
before the object is shared.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..engine import Diagnostic
from .base import FlowPass
from .index import ProjectIndex

__all__ = ["ConcurrencyPass"]

#: Container/method calls that mutate their receiver in place.
_MUTATING_METHODS: Tuple[str, ...] = (
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
)

#: Methods that run before the instance can be shared across threads.
_CONSTRUCTION_METHODS: Tuple[str, ...] = ("__init__", "__post_init__", "__new__")

_LOCK_FACTORIES: Tuple[str, ...] = ("Lock", "RLock")


class ConcurrencyPass(FlowPass):
    """Flag unguarded shared-state mutations in lock-owning serving classes."""

    code = "REPRO013"
    name = "serving-lock-discipline"
    summary = "serving classes owning a lock must mutate shared attributes under it"
    rationale = (
        "serving/ is the only genuinely concurrent tier: caches and pools\n"
        "are shared across server worker tasks and guard their state with\n"
        "threading/asyncio locks.  The invariant is structural — every\n"
        "mutation of instance state in a lock-owning class happens inside\n"
        "`with self._lock:` — but a single-threaded test cannot catch a\n"
        "method that bumps a counter or evicts an entry outside the guard.\n"
        "This pass flags assignments, augmented assignments, deletions and\n"
        "mutating container calls (`.clear()`, `.pop()`, `.move_to_end()`,\n"
        "...) on self attributes outside a with-block on the lock, in any\n"
        "serving/ class that assigns a Lock in __init__ (construction\n"
        "itself is exempt)."
    )

    def check(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Scan every class in ``serving/`` modules that owns a lock."""
        for relpath, info in sorted(index.modules.items()):
            if not relpath.startswith("serving/"):
                continue
            for node in ast.walk(info.ctx.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(index, relpath, node)

    def _check_class(
        self, index: ProjectIndex, relpath: str, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        lock_names = _lock_attributes(cls)
        if not lock_names:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _CONSTRUCTION_METHODS:
                continue
            self_name = _self_parameter(item)
            if self_name is None:
                continue
            findings: List[Diagnostic] = []
            self._scan_method(
                index,
                relpath,
                f"{cls.name}.{item.name}",
                item,
                self_name,
                lock_names,
                guarded=False,
                out=findings,
            )
            yield from findings

    def _scan_method(
        self,
        index: ProjectIndex,
        relpath: str,
        qualname: str,
        node: ast.AST,
        self_name: str,
        lock_names: Set[str],
        guarded: bool,
        out: List[Diagnostic],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.With, ast.AsyncWith)):
                inner_guarded = guarded or any(
                    _is_lock_expr(item.context_expr, self_name, lock_names)
                    for item in child.items
                )
                for item in child.items:
                    self._scan_method(
                        index, relpath, qualname, item, self_name, lock_names, guarded, out
                    )
                for stmt in child.body:
                    self._scan_method(
                        index, relpath, qualname, stmt, self_name, lock_names, inner_guarded, out
                    )
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not guarded:
                attr = _mutated_attribute(child, self_name, lock_names)
                if attr is not None:
                    out.append(
                        self.diagnostic(
                            index,
                            relpath,
                            child,
                            f"`{qualname}` mutates shared attribute `self.{attr}` "
                            "outside `with self._lock`",
                            context=qualname,
                        )
                    )
            self._scan_method(
                index, relpath, qualname, child, self_name, lock_names, guarded, out
            )


def _lock_attributes(cls: ast.ClassDef) -> Set[str]:
    """Attribute names assigned a Lock/RLock anywhere in the class body."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        value: Optional[ast.AST] = None
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            value = node.value
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value = node.value
            targets = [node.target]
        if value is None or not _is_lock_factory_call(value):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks.add(target.attr)
    return locks


def _is_lock_factory_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    return False


def _self_parameter(method: ast.AST) -> Optional[str]:
    args = getattr(method, "args", None)
    if args is None:
        return None
    positional = [*args.posonlyargs, *args.args]
    if not positional:
        return None
    return positional[0].arg


def _is_lock_expr(expr: ast.AST, self_name: str, lock_names: Set[str]) -> bool:
    """Whether ``expr`` is ``self.<lock>`` (or a call on it, e.g. RLock)."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == self_name
        and expr.attr in lock_names
    )


def _mutated_attribute(
    node: ast.AST, self_name: str, lock_names: Set[str]
) -> Optional[str]:
    """The ``self.<attr>`` a statement mutates, or ``None``.

    Covers plain/augmented/annotated assignment, ``del``, and mutating
    container-method calls whose receiver is rooted at ``self``.
    """
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.AnnAssign):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            attr = _self_rooted_attribute(func.value, self_name)
            if attr is not None and attr not in lock_names:
                return attr
        return None
    for target in targets:
        attr = _self_rooted_attribute(target, self_name)
        if attr is not None and attr not in lock_names:
            return attr
    return None


def _self_rooted_attribute(node: ast.AST, self_name: str) -> Optional[str]:
    """First attribute above ``self`` in an attribute/subscript chain.

    ``self.stats.misses`` → ``stats``; ``self._entries[key]`` →
    ``_entries``; returns ``None`` for chains not rooted at ``self``.
    """
    attr: Optional[str] = None
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            attr = current.attr
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        else:
            break
    if isinstance(current, ast.Name) and current.id == self_name and attr is not None:
        return attr
    return None
