"""Base class and runner for cross-module flow passes.

A :class:`FlowPass` is the whole-program analogue of the per-file
:class:`repro.analysis.engine.Rule`: same ``code``/``name``/``summary``/
``rationale`` surface (so ``--explain``, ``--select`` and the baseline
machinery treat both uniformly), but :meth:`FlowPass.check` receives the
:class:`~repro.analysis.flow.index.ProjectIndex` instead of a single
module context.  Findings are ordinary :class:`Diagnostic` records and
honour inline ``# noqa`` suppression via the owning module's context.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from ..engine import Diagnostic, repo_relative
from .index import ProjectIndex

__all__ = ["FlowPass", "run_flow"]


class FlowPass:
    """Base class for project-wide analysis passes (REPRO010+)."""

    code: str = "REPRO010"
    name: str = "abstract-flow-pass"
    summary: str = ""
    rationale: str = ""

    def check(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield diagnostics over the whole indexed tree."""
        raise NotImplementedError
        yield  # pragma: no cover

    def diagnostic(
        self,
        index: ProjectIndex,
        relpath: str,
        node: ast.AST,
        message: str,
        context: Optional[str] = None,
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node`` in module ``relpath``."""
        info = index.modules.get(relpath)
        if context is None:
            context = info.ctx.scope_of(node) if info is not None else "<module>"
        display = info.ctx.display if info is not None else repo_relative(Path(relpath))
        return Diagnostic(
            path=display,
            relpath=relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            context=context,
        )


def run_flow(
    paths: Optional[Sequence[Path]] = None,
    *,
    index: Optional[ProjectIndex] = None,
    passes: Optional[Sequence[FlowPass]] = None,
) -> List[Diagnostic]:
    """Run flow passes over a tree and return suppression-filtered findings.

    Either ``paths`` (a tree to index) or a prebuilt ``index`` must be
    given.  ``# noqa: REPROxxx`` comments on the flagged line suppress a
    finding exactly as they do for per-file rules.
    """
    if index is None:
        if paths is None:
            raise ValueError("run_flow needs either paths or a prebuilt index")
        index = ProjectIndex.build(list(paths))
    if passes is None:
        from . import FLOW_PASSES

        passes = FLOW_PASSES
    diagnostics: List[Diagnostic] = []
    for flow_pass in passes:
        for diag in flow_pass.check(index):
            info = index.modules.get(diag.relpath)
            if info is not None and info.ctx.suppressed(diag.line, diag.code):
                continue
            diagnostics.append(diag)
    diagnostics.sort(key=lambda d: (d.relpath, d.line, d.column, d.code))
    return diagnostics
