"""REPRO011: RNG draw order in kernels must match the checked-in manifest.

The fast/legacy equivalence proof (docs/PERFORMANCE.md, "The RNG
draw-order guarantee") rests on both kernels consuming generator draws
in exactly the same order: per round, subjects in ``population.
subproblems`` order, feedback draw before rating draw, zero-noise and
excluded subjects consuming nothing.  ``fast_step`` compresses all of
that into one ``standard_normal`` block, so *any* new, removed or
reordered generator call in either kernel silently changes every
downstream realization while each path remains internally consistent —
the worst kind of drift, invisible to most tests.

This pass extracts every generator-consuming call site from each
rng-taking kernel (direct ``rng.method(...)`` draws and calls that
*forward* the generator, e.g. ``agent.realize_feedback(effort,
rng=rng)``) in source order, and compares the sequence against the
checked-in manifest ``analysis/draw_order.toml``.  Changing a kernel's
draw behaviour therefore requires touching the manifest — and the
manifest names the regression test that must reference every manifested
kernel, so the test is updated in the same commit.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..engine import Diagnostic
from .base import FlowPass
from .index import (
    FAST_KERNEL_PREFIXES,
    LEGACY_KERNEL_PREFIX,
    PARALLEL_KERNEL_PREFIXES,
    FunctionInfo,
    ProjectIndex,
    ordered_calls,
    rng_parameter_names,
)

__all__ = [
    "DrawOrderManifest",
    "DrawOrderPass",
    "DrawSite",
    "extract_draw_order",
    "load_manifest",
    "manifest_path",
]

_MANIFEST_RELPATH = ("analysis", "draw_order.toml")


@dataclass(frozen=True)
class DrawSite:
    """One generator-consuming call site inside a kernel."""

    #: ``rng.standard_normal`` sites record the method name; calls that
    #: forward the generator (``agent.realize_feedback(..., rng=rng)``)
    #: record the callee name.
    name: str
    node: ast.Call


@dataclass(frozen=True)
class DrawOrderManifest:
    """Parsed ``draw_order.toml``: pinned draw sequences per kernel."""

    kernels: Dict[str, Tuple[str, ...]]
    regression_test: Optional[str] = None


class DrawOrderPass(FlowPass):
    """Check kernel draw sequences against ``analysis/draw_order.toml``."""

    code = "REPRO011"
    name = "rng-draw-order"
    summary = "generator draws in fast/legacy kernels must match analysis/draw_order.toml"
    rationale = (
        "Fast and legacy kernels are bit-equal only because they consume\n"
        "generator draws in an identical pinned order (subjects in\n"
        "population.subproblems order, feedback before rating, non-drawing\n"
        "subjects consuming nothing; fast_step collapses the round into one\n"
        "standard_normal block).  A new, removed or reordered rng.* call\n"
        "shifts every later draw and silently changes all downstream\n"
        "realizations.  Every rng-taking fast_*/vectorized_*/parallel_*/\n"
        "legacy_* kernel\n"
        "therefore has its draw sequence pinned in analysis/draw_order.toml;\n"
        "changing draw behaviour requires updating the manifest and the\n"
        "regression test it names (tests/simulation/test_rng_order.py) in\n"
        "the same commit."
    )

    def check(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Compare every rng-taking kernel against the manifest."""
        kernels = _draw_kernels(index)
        path = manifest_path(index)
        if path is None or not path.is_file():
            for fn in kernels:
                if extract_draw_order(fn.node):
                    yield self.diagnostic(
                        index,
                        fn.relpath,
                        fn.node,
                        f"kernel `{fn.qualname}` consumes generator draws but no "
                        "draw-order manifest (analysis/draw_order.toml) exists",
                        context=fn.qualname,
                    )
            return
        try:
            manifest = load_manifest(path)
        except ValueError as exc:
            yield Diagnostic(
                path=str(path),
                relpath="/".join(_MANIFEST_RELPATH),
                line=1,
                column=0,
                code=self.code,
                message=f"could not parse draw-order manifest: {exc}",
                context="<manifest>",
            )
            return

        seen_keys = set()
        for fn in kernels:
            sites = extract_draw_order(fn.node)
            found = tuple(site.name for site in sites)
            expected = manifest.kernels.get(fn.key)
            seen_keys.add(fn.key)
            if expected is None:
                if found:
                    yield self.diagnostic(
                        index,
                        fn.relpath,
                        sites[0].node,
                        f"kernel `{fn.qualname}` consumes draws {list(found)} but has "
                        "no entry in analysis/draw_order.toml; pin the order there "
                        "and update the regression test",
                        context=fn.qualname,
                    )
                continue
            if found != expected:
                anchor_node: ast.AST = fn.node
                for position, site in enumerate(sites):
                    if position >= len(expected) or site.name != expected[position]:
                        anchor_node = site.node
                        break
                yield self.diagnostic(
                    index,
                    fn.relpath,
                    anchor_node,
                    f"kernel `{fn.qualname}` draw order {list(found)} does not match "
                    f"manifest {list(expected)}; update analysis/draw_order.toml and "
                    "the regression test together",
                    context=fn.qualname,
                )

        for key in sorted(manifest.kernels):
            relpath = key.split("::", 1)[0]
            if relpath in index.modules and key not in seen_keys:
                info = index.modules[relpath]
                yield self.diagnostic(
                    index,
                    relpath,
                    info.ctx.tree,
                    f"stale manifest entry `{key}`: no such rng-taking kernel; "
                    "remove it from analysis/draw_order.toml",
                    context=key.split("::", 1)[1],
                )

        yield from self._check_regression_test(index, manifest, kernels)

    def _check_regression_test(
        self,
        index: ProjectIndex,
        manifest: DrawOrderManifest,
        kernels: List[FunctionInfo],
    ) -> Iterator[Diagnostic]:
        if manifest.regression_test is None:
            return
        root = index.repo_root
        test_path = (
            root / manifest.regression_test if root is not None else Path(manifest.regression_test)
        )
        manifested = [fn for fn in kernels if fn.key in manifest.kernels]
        if not test_path.is_file():
            if manifested:
                fn = manifested[0]
                yield self.diagnostic(
                    index,
                    fn.relpath,
                    fn.node,
                    f"draw-order regression test `{manifest.regression_test}` "
                    "named by the manifest does not exist",
                    context=fn.qualname,
                )
            return
        try:
            test_source = test_path.read_text(encoding="utf-8")
        except (UnicodeDecodeError, OSError):  # pragma: no cover - unreadable test
            test_source = ""
        for fn in manifested:
            if fn.name not in test_source:
                yield self.diagnostic(
                    index,
                    fn.relpath,
                    fn.node,
                    f"manifested kernel `{fn.qualname}` is not referenced by the "
                    f"draw-order regression test `{manifest.regression_test}`",
                    context=fn.qualname,
                )


def manifest_path(index: ProjectIndex) -> Optional[Path]:
    """Location of ``analysis/draw_order.toml`` for the indexed tree."""
    if index.package_root is None:
        return None
    return index.package_root.joinpath(*_MANIFEST_RELPATH)


def extract_draw_order(fn: ast.AST) -> List[DrawSite]:
    """Generator-consuming call sites of ``fn`` in source order.

    Two shapes count as consuming a draw: a direct method call on a
    generator parameter (``rng.standard_normal(...)`` → site name
    ``standard_normal``) and a call that forwards the generator as an
    argument or keyword (``agent.realize_feedback(effort, rng=rng)`` →
    site name ``realize_feedback``).
    """
    rng_names = rng_parameter_names(fn)
    if not rng_names:
        return []
    sites: List[DrawSite] = []
    for call in ordered_calls(fn):
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in rng_names
        ):
            sites.append(DrawSite(name=func.attr, node=call))
            continue
        forwards = any(
            isinstance(arg, ast.Name) and arg.id in rng_names for arg in call.args
        ) or any(
            isinstance(kw.value, ast.Name) and kw.value.id in rng_names
            for kw in call.keywords
        )
        if forwards:
            if isinstance(func, ast.Attribute):
                sites.append(DrawSite(name=func.attr, node=call))
            elif isinstance(func, ast.Name):
                sites.append(DrawSite(name=func.id, node=call))
    return sites


def load_manifest(path: Path) -> DrawOrderManifest:
    """Parse ``draw_order.toml`` (tomllib, or a bundled subset parser).

    The CI matrix still includes Python 3.9, which lacks ``tomllib``;
    the fallback parser understands exactly the subset the manifest
    uses: top-level ``key = "value"`` pairs and ``[[kernel]]``
    array-of-tables entries with string and single-line string-array
    values.

    Raises:
        ValueError: if the file cannot be parsed or is missing fields.
    """
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib
    except ModuleNotFoundError:
        data = _parse_toml_subset(text)
    else:
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(str(exc)) from exc
    kernels: Dict[str, Tuple[str, ...]] = {}
    for entry in data.get("kernel", []):
        if not isinstance(entry, dict) or "name" not in entry:
            raise ValueError("each [[kernel]] table needs a `name` key")
        draws = entry.get("draws", [])
        if not isinstance(draws, list):
            raise ValueError(f"kernel {entry['name']!r}: `draws` must be an array")
        kernels[str(entry["name"])] = tuple(str(d) for d in draws)
    regression = data.get("regression_test")
    return DrawOrderManifest(
        kernels=kernels,
        regression_test=str(regression) if regression is not None else None,
    )


def _draw_kernels(index: ProjectIndex) -> List[FunctionInfo]:
    """Module-level kernels (fast, vectorized, parallel, legacy) taking
    a generator."""
    prefixes = (*FAST_KERNEL_PREFIXES, *PARALLEL_KERNEL_PREFIXES, LEGACY_KERNEL_PREFIX)
    return [
        fn
        for fn in index.functions()
        if "." not in fn.qualname
        and fn.name.startswith(prefixes)
        and rng_parameter_names(fn.node)
    ]


_STRING_RE = re.compile(r'^"((?:[^"\\]|\\.)*)"')
_ARRAY_RE = re.compile(r"^\[[^\]]*\]")


def _parse_toml_subset(text: str) -> Dict[str, object]:
    """Minimal TOML-subset parser for ``draw_order.toml`` on Python 3.9.

    Supports blank lines, ``#`` comments, ``[[kernel]]`` array-of-tables
    headers, and ``key = value`` pairs where the value is a basic string
    or a single-line array of basic strings.
    """
    data: Dict[str, object] = {}
    tables: List[Dict[str, object]] = []
    current: Optional[Dict[str, object]] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[kernel]]":
            current = {}
            tables.append(current)
            continue
        if line.startswith("["):
            raise ValueError(f"line {lineno}: unsupported table header {line!r}")
        if "=" not in line:
            raise ValueError(f"line {lineno}: expected `key = value`")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        parsed: object
        remainder: str
        array_match = _ARRAY_RE.match(value)
        string_match = _STRING_RE.match(value)
        if array_match is not None:
            parsed = re.findall(r'"((?:[^"\\]|\\.)*)"', array_match.group(0))
            remainder = value[array_match.end():].strip()
        elif string_match is not None:
            parsed = string_match.group(1)
            remainder = value[string_match.end():].strip()
        else:
            raise ValueError(f"line {lineno}: unsupported value {value!r}")
        if remainder and not remainder.startswith("#"):
            raise ValueError(f"line {lineno}: trailing content {remainder!r}")
        target = current if current is not None else data
        target[key] = parsed
    if tables:
        data["kernel"] = tables
    return data
