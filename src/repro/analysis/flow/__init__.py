"""Cross-module flow passes for the theory-lint analyzer.

Where :mod:`repro.analysis.rules` checks one module at a time, this
package loads the whole ``src/repro`` tree into a single
:class:`~repro.analysis.flow.index.ProjectIndex` and enforces the
*cross-module* disciplines the fast/legacy kernel split depends on:

* ``REPRO010`` — fast kernels stay on the batch path (no per-subject
  object-path loops);
* ``REPRO011`` — generator draw order matches the checked-in manifest
  ``analysis/draw_order.toml``;
* ``REPRO012`` — every fast kernel keeps its legacy twin, a
  ``require_*_agree`` contract call site, and a two-path test;
* ``REPRO013`` — serving classes owning a lock mutate shared state only
  under it.

Run them with ``repro lint --flow`` (or :func:`run_flow`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .base import FlowPass, run_flow
from .concurrency import ConcurrencyPass
from .contracts import ContractCoveragePass
from .draworder import (
    DrawOrderManifest,
    DrawOrderPass,
    extract_draw_order,
    load_manifest,
    manifest_path,
)
from .index import FunctionInfo, ModuleInfo, ProjectIndex
from .purity import PurityPass

__all__ = [
    "FLOW_PASSES",
    "PASSES_BY_CODE",
    "ConcurrencyPass",
    "ContractCoveragePass",
    "DrawOrderManifest",
    "DrawOrderPass",
    "FlowPass",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "PurityPass",
    "extract_draw_order",
    "get_flow_pass",
    "load_manifest",
    "manifest_path",
    "run_flow",
]

#: All registered flow passes, in code order.
FLOW_PASSES: Tuple[FlowPass, ...] = (
    PurityPass(),
    DrawOrderPass(),
    ContractCoveragePass(),
    ConcurrencyPass(),
)

#: Passes indexed by their REPRO code.
PASSES_BY_CODE: Dict[str, FlowPass] = {p.code: p for p in FLOW_PASSES}


def get_flow_pass(code: str) -> Optional[FlowPass]:
    """Look up a flow pass by code (case-insensitive)."""
    return PASSES_BY_CODE.get(code.upper())
