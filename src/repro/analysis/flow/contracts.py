"""REPRO012: every fast kernel needs its equivalence contract and tests.

The repository's fast-path discipline (docs/PERFORMANCE.md) is that a
``fast_*``/``vectorized_*`` kernel is only trustworthy while three
artifacts exist together: the ``legacy_*`` twin it is measured against,
a ``require_*_agree`` contract call in the code path that routes between
them (so ``REPRO_CHECK_INVARIANTS`` cross-verifies in production code,
not just in tests), and at least one test module exercising both paths
by name.  Deleting any leg — most insidiously the ``require_*_agree``
call inside the router — leaves a fast kernel whose equivalence is
asserted by nothing.

This pass statically rebuilds that registry:

* each fast kernel must have a same-module ``legacy_*`` twin;
* some source function must reference the fast kernel *and* call a
  ``require_*_agree`` contract (the router/verifier);
* some test or benchmark module must reference both the fast and the
  legacy kernel names;
* each ``require_*_agree`` definition must have at least one call site
  (in source, tests, or benchmarks) — a dead contract guards nothing.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set

from ..engine import Diagnostic
from .base import FlowPass
from .index import (
    FunctionInfo,
    ProjectIndex,
    legacy_twin_name,
    referenced_names,
)

__all__ = ["ContractCoveragePass"]

_REQUIRE_RE = re.compile(r"^require_\w+_agree$")


class ContractCoveragePass(FlowPass):
    """Verify the fast kernel / contract / test triangle is closed."""

    code = "REPRO012"
    name = "equivalence-contract-coverage"
    summary = "fast kernels need a legacy twin, a require_*_agree call site, and tests"
    rationale = (
        "A fast_*/vectorized_* kernel is only trustworthy while (1) its\n"
        "legacy_* reference twin exists in the same module, (2) a source\n"
        "function that routes to the fast kernel also calls a\n"
        "require_*_agree equivalence contract — so REPRO_CHECK_INVARIANTS\n"
        "cross-verifies the pair in production code paths — and (3) at\n"
        "least one test or benchmark module references both kernel names.\n"
        "Deleting the require_*_agree call (or the twin, or the test)\n"
        "leaves an unverified fast path whose drift nothing can catch;\n"
        "this pass rebuilds the registry statically so the gate fails\n"
        "instead."
    )

    def check(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Check every fast kernel and every contract definition."""
        contract_callers = _functions_calling_contracts(index)
        test_sources = index.test_sources()
        for fn in index.fast_kernels():
            twin = legacy_twin_name(fn.name)
            module_functions = index.module_functions(fn.relpath)
            if twin not in module_functions:
                yield self.diagnostic(
                    index,
                    fn.relpath,
                    fn.node,
                    f"fast kernel `{fn.qualname}` has no `{twin}` reference twin "
                    "in the same module",
                    context=fn.qualname,
                )
            if not _has_contract_coverage(fn, contract_callers):
                yield self.diagnostic(
                    index,
                    fn.relpath,
                    fn.node,
                    f"fast kernel `{fn.qualname}` is not covered by a "
                    "require_*_agree equivalence contract: no source function "
                    "references it and calls a contract",
                    context=fn.qualname,
                )
            if twin in module_functions and not _has_test_coverage(
                fn.name, twin, test_sources
            ):
                yield self.diagnostic(
                    index,
                    fn.relpath,
                    fn.node,
                    f"no test or benchmark module references both `{fn.name}` "
                    f"and `{twin}`; add an equivalence test exercising both paths",
                    context=fn.qualname,
                )
        yield from self._check_dead_contracts(index, test_sources)

    def _check_dead_contracts(
        self, index: ProjectIndex, test_sources: Dict
    ) -> Iterator[Diagnostic]:
        definitions = [
            fn
            for fn in index.functions()
            if "." not in fn.qualname and _REQUIRE_RE.match(fn.name)
        ]
        for definition in definitions:
            called_in_src = any(
                definition.name in _called_names(other.node)
                for other in index.functions()
                if other.key != definition.key
            )
            called_in_tests = any(
                f"{definition.name}(" in source for source in test_sources.values()
            )
            if not called_in_src and not called_in_tests:
                yield self.diagnostic(
                    index,
                    definition.relpath,
                    definition.node,
                    f"equivalence contract `{definition.qualname}` is never called "
                    "from source, tests, or benchmarks; a dead contract guards "
                    "nothing",
                    context=definition.qualname,
                )


def _functions_calling_contracts(index: ProjectIndex) -> List[FunctionInfo]:
    """Source functions that contain at least one ``require_*_agree`` call."""
    callers = []
    for fn in index.functions():
        if any(_REQUIRE_RE.match(name) for name in _called_names(fn.node)):
            callers.append(fn)
    return callers


def _called_names(fn: ast.AST) -> Set[str]:
    """Bare and attribute callee names of every call inside ``fn``."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                names.add(node.func.id)
            elif isinstance(node.func, ast.Attribute):
                names.add(node.func.attr)
    return names


def _has_contract_coverage(
    fast: FunctionInfo, contract_callers: List[FunctionInfo]
) -> bool:
    """Whether some contract-calling function also references the kernel."""
    for caller in contract_callers:
        if caller.key == fast.key:
            continue
        if fast.name in referenced_names(caller.node):
            return True
    return False


def _has_test_coverage(fast_name: str, twin_name: str, test_sources: Dict) -> bool:
    """Whether any test/benchmark module names both kernel paths."""
    return any(
        fast_name in source and twin_name in source
        for source in test_sources.values()
    )
