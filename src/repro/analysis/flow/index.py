"""Whole-program AST/symbol index backing the cross-module flow passes.

The per-file rules in :mod:`repro.analysis.rules` see one module at a
time; the disciplines introduced by the fast/legacy kernel split —
pinned RNG draw order, equivalence contracts, lock-guarded serving
state — are *cross-module* properties.  :class:`ProjectIndex` parses an
entire source tree once, keys every module by its package-relative path,
and exposes the symbol-level views (functions by qualname, kernel
registries discovered by naming convention, referenced-name sets, test
sources) that the REPRO010–REPRO013 passes consume.

Kernel discovery follows the repository's conventions:

* fast kernels are module-level functions named ``fast_*`` or
  ``vectorized_*``;
* each fast kernel's reference twin is the ``legacy_*`` function with
  the same stem in the same module;
* batch helpers are ``*_batch`` functions (or static methods) inside
  ``workers/`` modules;
* sharded parallel kernels are module-level ``parallel_*`` functions —
  held to the same draw-order and batch-purity discipline as fast
  kernels, but exempt from the legacy-twin demand (their reference is
  the fast kernel they shard, pinned by ``require_parallel_*_agree``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..engine import LintContext, package_relative

__all__ = [
    "BATCH_HELPER_SUFFIX",
    "FAST_KERNEL_PREFIXES",
    "LEGACY_KERNEL_PREFIX",
    "PARALLEL_KERNEL_PREFIXES",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "legacy_twin_name",
    "ordered_calls",
    "referenced_names",
    "rng_parameter_names",
]

#: Module-level functions with these name prefixes are fast kernels.
FAST_KERNEL_PREFIXES: Tuple[str, ...] = ("fast_", "vectorized_")

#: The reference twin of a fast kernel carries this prefix.
LEGACY_KERNEL_PREFIX: str = "legacy_"

#: Module-level functions with these prefixes are sharded parallel
#: kernels (multi-process front ends over a fast kernel).
PARALLEL_KERNEL_PREFIXES: Tuple[str, ...] = ("parallel_",)

#: Batch helpers in ``workers/`` modules end with this suffix.
BATCH_HELPER_SUFFIX: str = "_batch"

#: Parameter names treated as numpy generators for draw extraction.
_RNG_PARAM_NAMES = ("rng",)
_RNG_PARAM_SUFFIX = "_rng"


@dataclass(frozen=True)
class FunctionInfo:
    """One function (or method) definition somewhere in the tree."""

    relpath: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef

    @property
    def name(self) -> str:
        """The bare (unqualified) function name."""
        return getattr(self.node, "name", "")

    @property
    def key(self) -> str:
        """Stable cross-module identity, ``relpath::qualname``."""
        return f"{self.relpath}::{self.qualname}"


@dataclass
class ModuleInfo:
    """One parsed module plus its symbol table."""

    ctx: LintContext
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def relpath(self) -> str:
        """Package-relative path of the module."""
        return self.ctx.relpath


class ProjectIndex:
    """Parsed view of a whole source tree for cross-module analysis."""

    def __init__(self, modules: Dict[str, ModuleInfo], package_root: Optional[Path]) -> None:
        self.modules = modules
        self.package_root = package_root
        self._repo_root: Optional[Path] = None
        self._test_sources: Optional[Dict[Path, str]] = None

    @classmethod
    def build(cls, paths: Sequence[Path]) -> "ProjectIndex":
        """Parse every ``.py`` file under ``paths`` into one index.

        Unparsable files are skipped — the per-file engine already
        reports them as ``REPRO000``, and a flow pass cannot reason
        about a module it cannot parse.
        """
        modules: Dict[str, ModuleInfo] = {}
        files = list(_iter_files(paths))
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue
            ctx = LintContext(
                path=path,
                relpath=package_relative(path),
                tree=tree,
                source=source,
            )
            info = ModuleInfo(ctx=ctx)
            _collect_functions(tree, ctx.relpath, info.functions)
            modules[ctx.relpath] = info
        return cls(modules=modules, package_root=_package_root(files))

    def functions(self) -> Iterator[FunctionInfo]:
        """Every function/method definition across all indexed modules."""
        for info in self.modules.values():
            yield from info.functions.values()

    def module_functions(self, relpath: str) -> Dict[str, FunctionInfo]:
        """Functions of one module (empty when the module is absent)."""
        info = self.modules.get(relpath)
        return info.functions if info is not None else {}

    def fast_kernels(self) -> List[FunctionInfo]:
        """Module-level ``fast_*``/``vectorized_*`` functions."""
        return [
            fn
            for fn in self.functions()
            if "." not in fn.qualname and fn.name.startswith(FAST_KERNEL_PREFIXES)
        ]

    def parallel_kernels(self) -> List[FunctionInfo]:
        """Module-level ``parallel_*`` sharded kernels."""
        return [
            fn
            for fn in self.functions()
            if "." not in fn.qualname and fn.name.startswith(PARALLEL_KERNEL_PREFIXES)
        ]

    def legacy_kernels(self) -> List[FunctionInfo]:
        """Module-level ``legacy_*`` reference kernels."""
        return [
            fn
            for fn in self.functions()
            if "." not in fn.qualname and fn.name.startswith(LEGACY_KERNEL_PREFIX)
        ]

    def batch_helpers(self) -> List[FunctionInfo]:
        """``*_batch`` helpers defined under ``workers/``."""
        return [
            fn
            for fn in self.functions()
            if fn.relpath.startswith("workers/") and fn.name.endswith(BATCH_HELPER_SUFFIX)
        ]

    @property
    def repo_root(self) -> Optional[Path]:
        """Nearest ancestor of the package root that looks like a repo.

        A directory qualifies when it carries a ``pyproject.toml`` or
        ``.git`` marker or contains a ``tests`` directory.  Used to
        locate the test/benchmark trees for coverage checks.
        """
        if self._repo_root is None and self.package_root is not None:
            root = self.package_root
            for directory in [root, *root.parents]:
                if (
                    (directory / "pyproject.toml").is_file()
                    or (directory / ".git").exists()
                    or (directory / "tests").is_dir()
                ):
                    self._repo_root = directory
                    break
        return self._repo_root

    def test_sources(self) -> Dict[Path, str]:
        """Source text of every ``.py`` file under ``<repo>/tests``.

        Read lazily once per index; used for the "a test references both
        kernel paths" coverage checks.  Benchmarks count too — a
        contract exercised only from ``benchmarks/`` is still exercised.
        """
        if self._test_sources is None:
            sources: Dict[Path, str] = {}
            root = self.repo_root
            if root is not None:
                for name in ("tests", "benchmarks"):
                    tree = root / name
                    if tree.is_dir():
                        for path in sorted(tree.rglob("*.py")):
                            try:
                                sources[path] = path.read_text(encoding="utf-8")
                            except (UnicodeDecodeError, OSError):
                                continue
            self._test_sources = sources
        return self._test_sources


def legacy_twin_name(fast_name: str) -> str:
    """The expected ``legacy_*`` twin of a fast kernel name."""
    for prefix in FAST_KERNEL_PREFIXES:
        if fast_name.startswith(prefix):
            return LEGACY_KERNEL_PREFIX + fast_name[len(prefix):]
    return LEGACY_KERNEL_PREFIX + fast_name


def rng_parameter_names(fn: ast.AST) -> Set[str]:
    """Parameter names of ``fn`` that carry a numpy generator.

    Matches by convention: a parameter named ``rng`` or ending in
    ``_rng``.  (Annotations are not required on internal helpers, so a
    purely syntactic convention keeps the pass dependency-free.)
    """
    names: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is None:
        return names
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg in _RNG_PARAM_NAMES or arg.arg.endswith(_RNG_PARAM_SUFFIX):
            names.add(arg.arg)
    return names


def ordered_calls(fn: ast.AST) -> List[ast.Call]:
    """Every :class:`ast.Call` inside ``fn`` in source order.

    ``ast.walk`` is breadth-first; draw-order extraction needs calls in
    the order the interpreter reaches them, so sort by position.
    """
    calls = [node for node in ast.walk(fn) if isinstance(node, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def referenced_names(fn: ast.AST) -> Set[str]:
    """All bare :class:`ast.Name` identifiers read or written in ``fn``."""
    return {node.id for node in ast.walk(fn) if isinstance(node, ast.Name)}


def _collect_functions(
    tree: ast.Module, relpath: str, out: Dict[str, FunctionInfo]
) -> None:
    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = child.name if not scope else f"{scope}.{child.name}"
                out[qualname] = FunctionInfo(relpath=relpath, qualname=qualname, node=child)
                visit(child, qualname)
            elif isinstance(child, ast.ClassDef):
                qualname = child.name if not scope else f"{scope}.{child.name}"
                visit(child, qualname)
            else:
                visit(child, scope)

    visit(tree, "")


def _package_root(files: Sequence[Path]) -> Optional[Path]:
    """The innermost ``repro`` package directory containing the files.

    Falls back to the deepest common parent when the tree is not a
    ``repro`` package (ad-hoc fixture trees under pytest tmpdirs).
    """
    for path in files:
        parts = path.resolve().parent.parts
        if "repro" in parts:
            index = len(parts) - 1 - parts[::-1].index("repro")
            return Path(*parts[: index + 1])
    if not files:
        return None
    common = files[0].resolve().parent
    for path in files[1:]:
        resolved = path.resolve()
        while common not in resolved.parents and common != resolved.parent:
            common = common.parent
    return common


def _iter_files(paths: Iterable[Path]) -> Iterator[Path]:
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            try:
                key = candidate.resolve()
            except OSError:  # pragma: no cover - filesystem race
                key = candidate
            if key not in seen:
                seen.add(key)
                yield candidate
