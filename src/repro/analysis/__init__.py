"""Theory-lint: static + runtime enforcement of the paper's invariants.

This subpackage machine-checks the fragile mathematical contracts the
reproduction depends on — Eq. (6) monotone compensations, the
Lemma 4.1 case windows, the Lemma 4.2/4.3 compensation bounds — in two
layers:

* a stdlib-only, AST-walking lint engine (:mod:`.engine`,
  :mod:`.rules`) with per-file domain rules ``REPRO001``-``REPRO009``,
  run as ``python -m repro.analysis`` or ``repro lint``;
* a cross-module flow layer (:mod:`.flow`) with whole-program passes
  ``REPRO010``-``REPRO013`` enforcing the fast/legacy kernel
  disciplines (batch-path purity, pinned RNG draw order, equivalence
  contract coverage, serving lock discipline), run with
  ``repro lint --flow``;
* a runtime layer (:mod:`.invariants`) whose :func:`check_bounds`
  decorator re-derives the Lemma 4.2/4.3 bounds on every candidate
  construction when ``REPRO_CHECK_INVARIANTS=1``.

See ``docs/ANALYSIS.md`` for the rule catalogue and baseline workflow.
"""

from __future__ import annotations

from .cache import FindingsCache, ruleset_fingerprint
from .cli import BASELINE_FILENAME, main, run_lint
from .engine import Diagnostic, LintEngine, load_baseline, package_relative
from .flow import FLOW_PASSES, ProjectIndex, get_flow_pass, run_flow
from .formats import render_json, render_sarif, render_text
from .invariants import (
    ENV_VAR,
    InvariantViolation,
    check_bounds,
    check_candidate_invariants,
    check_contract_monotone,
    invariants_enabled,
)
from .rules import ALL_RULES, get_rule

__all__ = [
    "ALL_RULES",
    "BASELINE_FILENAME",
    "Diagnostic",
    "ENV_VAR",
    "FLOW_PASSES",
    "FindingsCache",
    "InvariantViolation",
    "LintEngine",
    "ProjectIndex",
    "check_bounds",
    "check_candidate_invariants",
    "check_contract_monotone",
    "get_flow_pass",
    "get_rule",
    "invariants_enabled",
    "load_baseline",
    "main",
    "package_relative",
    "render_json",
    "render_sarif",
    "render_text",
    "ruleset_fingerprint",
    "run_flow",
    "run_lint",
]
