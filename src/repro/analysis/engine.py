"""AST-walking lint engine for the theory-lint analyzer.

The engine is deliberately dependency-free (stdlib ``ast`` only) so it
can run in CI images that carry nothing beyond the library itself.  It
parses each target file once, hands the tree to every registered
:class:`Rule`, collects :class:`Diagnostic` records, honours inline
``# noqa: REPROxxx`` suppressions, and subtracts a checked-in baseline
of grandfathered findings so the gate only fails on *new* violations.

Diagnostics are identified by a line-number-free *fingerprint*
(``relpath::CODE::context``) so that unrelated edits above a
grandfathered finding do not churn the baseline.
"""

from __future__ import annotations

import ast
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Protocol, Sequence, Tuple

__all__ = [
    "Diagnostic",
    "LintContext",
    "Rule",
    "LintEngine",
    "FindingsCacheProtocol",
    "dedupe_diagnostics",
    "load_baseline",
    "format_baseline",
    "package_relative",
    "repo_relative",
]

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a specific location.

    Attributes:
        path: the file the finding is in, normalized to a repository
            relative posix path (see :func:`repo_relative`) so output is
            identical regardless of the invocation directory.
        relpath: package-relative path used in fingerprints.
        line: 1-based line number.
        column: 0-based column offset.
        code: rule code, e.g. ``REPRO001``.
        message: human-readable description of the violation.
        context: the enclosing symbol (``Class.method``, function name,
            or ``<module>``) used to build a line-stable fingerprint.
    """

    path: str
    relpath: str
    line: int
    column: int
    code: str
    message: str
    context: str = "<module>"

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return f"{self.relpath}::{self.code}::{self.context}"

    def format(self) -> str:
        """Render as a ``file:line:col: CODE message`` diagnostic line."""
        return f"{self.path}:{self.line}:{self.column + 1}: {self.code} {self.message}"


@dataclass
class LintContext:
    """Everything a rule needs to inspect one module."""

    path: Path
    relpath: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)
    display: str = ""
    _scopes: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        if not self.display:
            self.display = repo_relative(self.path)
        self._scopes = _enclosing_scopes(self.tree)

    def scope_of(self, node: ast.AST) -> str:
        """The dotted name of the scope enclosing ``node`` (or ``<module>``)."""
        return self._scopes.get(id(node), "<module>")

    def suppressed(self, line: int, code: str) -> bool:
        """Whether ``# noqa`` on the physical line silences ``code``."""
        if not 1 <= line <= len(self.lines):
            return False
        match = _NOQA_RE.search(self.lines[line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True  # blanket noqa
        return code.upper() in {c.strip().upper() for c in codes.split(",")}


class Rule:
    """Base class for theory-lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` is the long-form explanation (with its paper
    equation/lemma reference) printed by ``repro lint --explain CODE``.
    """

    code: str = "REPRO000"
    name: str = "abstract-rule"
    summary: str = ""
    rationale: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on the module at ``relpath``."""
        return True

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for one module."""
        raise NotImplementedError
        yield  # pragma: no cover

    def diagnostic(
        self,
        ctx: LintContext,
        node: ast.AST,
        message: str,
        context: Optional[str] = None,
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node`` with scope context."""
        return Diagnostic(
            path=ctx.display,
            relpath=ctx.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            context=context if context is not None else ctx.scope_of(node),
        )


class FindingsCacheProtocol(Protocol):
    """Duck type of the per-file findings cache accepted by the engine."""

    def lookup(self, path: Path) -> Optional[List[Diagnostic]]:
        """Return cached findings for ``path``, or ``None`` on a miss."""

    def store(self, path: Path, findings: Sequence[Diagnostic]) -> None:
        """Record fresh findings for ``path``."""


class LintEngine:
    """Runs a set of rules over files and directories."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules)

    def lint_paths(
        self, paths: Iterable[Path], cache: Optional[FindingsCacheProtocol] = None
    ) -> List[Diagnostic]:
        """Lint every ``.py`` file under the given files/directories.

        Overlapping paths (a directory plus a file inside it, the same
        tree given twice, relative and absolute spellings) are deduped
        on the resolved file path, so each module is linted — and
        reported — exactly once.  With ``cache``, files whose
        ``(path, mtime, size)`` entry is still valid are answered from
        the cache instead of re-parsed.
        """
        diagnostics: List[Diagnostic] = []
        for path in _iter_python_files(paths):
            findings = cache.lookup(path) if cache is not None else None
            if findings is None:
                findings = self.lint_file(path)
                if cache is not None:
                    cache.store(path, findings)
            diagnostics.extend(findings)
        diagnostics.sort(key=lambda d: (d.relpath, d.line, d.column, d.code))
        return diagnostics

    def lint_file(self, path: Path) -> List[Diagnostic]:
        """Lint a single file; syntax errors surface as a diagnostic."""
        relpath = package_relative(path)
        display = repo_relative(path)
        try:
            with tokenize.open(path) as handle:
                source = handle.read()
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            return [
                Diagnostic(
                    path=display,
                    relpath=relpath,
                    line=line,
                    column=0,
                    code="REPRO000",
                    message=f"could not parse module: {exc}",
                )
            ]
        ctx = LintContext(path=path, relpath=relpath, tree=tree, source=source)
        findings: List[Diagnostic] = []
        for rule in self.rules:
            if not rule.applies_to(relpath):
                continue
            for diag in rule.check(ctx):
                if not ctx.suppressed(diag.line, diag.code):
                    findings.append(diag)
        return findings


def filter_baseline(
    diagnostics: Sequence[Diagnostic], baseline: Counter
) -> Tuple[List[Diagnostic], Counter]:
    """Split findings into (new, unused-baseline-entries).

    Each baseline fingerprint absorbs one matching diagnostic; anything
    left over on either side is reported (new findings fail the gate,
    stale baseline entries are surfaced so the file can be shrunk).
    """
    remaining = Counter(baseline)
    new: List[Diagnostic] = []
    for diag in diagnostics:
        if remaining.get(diag.fingerprint, 0) > 0:
            remaining[diag.fingerprint] -= 1
        else:
            new.append(diag)
    remaining = Counter({fp: n for fp, n in remaining.items() if n > 0})
    return new, remaining


def load_baseline(path: Path) -> Counter:
    """Load a baseline file into a fingerprint multiset.

    Lines are fingerprints (``relpath::CODE::context``); blank lines and
    ``#`` comments are ignored.
    """
    entries: Counter = Counter()
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        entries[line] += 1
    return entries


def format_baseline(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings as baseline file content (sorted fingerprints)."""
    header = (
        "# theory-lint baseline — grandfathered findings.\n"
        "# One fingerprint (relpath::CODE::context) per line; regenerate\n"
        "# with `repro lint --write-baseline` and keep this list shrinking.\n"
    )
    body = "".join(
        f"{fingerprint}\n"
        for fingerprint in sorted(d.fingerprint for d in diagnostics)
    )
    return header + body


def dedupe_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Drop exact-duplicate findings, preserving order.

    Two findings are duplicates when every identifying field matches —
    this protects the CLI when per-file rules and flow passes (or
    overlapping scan roots) would otherwise report the same violation
    twice.
    """
    seen = set()
    unique: List[Diagnostic] = []
    for diag in diagnostics:
        key = (diag.relpath, diag.line, diag.column, diag.code, diag.message)
        if key not in seen:
            seen.add(key)
            unique.append(diag)
    return unique


def repo_relative(path: Path) -> str:
    """Display path relative to the enclosing repository root.

    Walks up from the file looking for a ``pyproject.toml`` or ``.git``
    marker; the path is rendered relative to the first directory that
    has one, so ``repro lint`` output is identical no matter which
    directory it is invoked from.  Paths outside any repository (e.g.
    pytest tmp trees without markers) fall back to the path as given.
    """
    try:
        resolved = path.resolve()
    except OSError:  # pragma: no cover - filesystem race
        return path.as_posix()
    for directory in [resolved.parent, *resolved.parent.parents]:
        if (directory / "pyproject.toml").is_file() or (directory / ".git").exists():
            return resolved.relative_to(directory).as_posix()
    return path.as_posix()


def package_relative(path: Path) -> str:
    """Path relative to the ``repro`` package root, for stable fingerprints.

    ``src/repro/core/bounds.py`` becomes ``core/bounds.py`` regardless of
    where the checkout lives; files outside a ``repro`` directory keep
    their path as given (made posix-style).
    """
    parts = path.as_posix().split("/")
    if "repro" in parts[:-1]:
        # Use the *last* occurrence so fixture trees that nest a
        # ``repro`` package under the real repository still fingerprint
        # relative to the innermost package root.
        index = len(parts) - 2 - parts[:-1][::-1].index("repro")
        tail = parts[index + 1 :]
        if tail:
            return "/".join(tail)
    return path.as_posix().lstrip("./")


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            try:
                key = candidate.resolve()
            except OSError:  # pragma: no cover - filesystem race
                key = candidate
            if key not in seen:
                seen.add(key)
                yield candidate


def _enclosing_scopes(tree: ast.Module) -> Dict[int, str]:
    """Map ``id(node)`` to the dotted name of its enclosing scope."""
    scopes: Dict[int, str] = {}

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                child_scope = child.name if scope == "<module>" else f"{scope}.{child.name}"
                scopes[id(child)] = scope
                visit(child, child_scope)
            else:
                scopes[id(child)] = scope
                visit(child, scope)

    visit(tree, "<module>")
    return scopes
