"""Per-file findings cache for repeated ``repro lint`` runs.

Parsing and rule-walking every module dominates lint wall-clock; on a
warm tree almost nothing changes between runs.  The cache stores each
file's findings keyed by ``(resolved path, mtime_ns, size)`` under a
single JSON document in ``.theory-lint-cache/`` at the repository root,
and the whole document is discarded when the *rule set* changes — the
validity hash covers the source of the entire analysis package plus the
selected rule codes, so editing any rule, pass, or the draw-order
manifest safely invalidates every entry.

Flow-pass findings are never cached: they are cross-module properties,
so no single file's ``(mtime, size)`` can witness their validity.

``repro lint --no-cache`` bypasses the cache entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import Diagnostic

__all__ = ["CACHE_DIR_NAME", "FindingsCache", "ruleset_fingerprint"]

#: Directory (under the repo root) holding the cache document.
CACHE_DIR_NAME = ".theory-lint-cache"

_CACHE_FILE = "cache.json"
_VERSION = 1

_DIAG_FIELDS = ("path", "relpath", "line", "column", "code", "message", "context")


class FindingsCache:
    """Validity-checked per-file findings cache (JSON on disk)."""

    def __init__(self, directory: Path, ruleset_hash: str) -> None:
        self.directory = directory
        self.ruleset_hash = ruleset_hash
        self._entries: Dict[str, Dict] = {}
        self._dirty = False
        self._load()

    @property
    def path(self) -> Path:
        """The cache document location."""
        return self.directory / _CACHE_FILE

    def lookup(self, path: Path) -> Optional[List[Diagnostic]]:
        """Cached findings for ``path`` if its entry is still valid."""
        key, stat = self._key_and_stat(path)
        if key is None or stat is None:
            return None
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.get("mtime_ns") != stat.st_mtime_ns or entry.get("size") != stat.st_size:
            return None
        try:
            return [
                Diagnostic(**{field: record[field] for field in _DIAG_FIELDS})
                for record in entry.get("findings", [])
            ]
        except (KeyError, TypeError):
            return None

    def store(self, path: Path, findings: Sequence[Diagnostic]) -> None:
        """Record fresh findings for ``path``."""
        key, stat = self._key_and_stat(path)
        if key is None or stat is None:
            return
        self._entries[key] = {
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "findings": [
                {field: getattr(diag, field) for field in _DIAG_FIELDS}
                for diag in findings
            ],
        }
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache document (no-op when unchanged)."""
        if not self._dirty:
            return
        document = {
            "version": _VERSION,
            "ruleset": self.ruleset_hash,
            "entries": self._entries,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=_CACHE_FILE, dir=str(self.directory)
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            os.replace(tmp_name, self.path)
            self._dirty = False
        except OSError:  # pragma: no cover - read-only filesystems
            pass

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(document, dict):
            return
        if document.get("version") != _VERSION:
            return
        if document.get("ruleset") != self.ruleset_hash:
            return
        entries = document.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    @staticmethod
    def _key_and_stat(path: Path) -> Tuple[Optional[str], Optional[os.stat_result]]:
        try:
            resolved = path.resolve()
            return str(resolved), resolved.stat()
        except OSError:
            return None, None


def ruleset_fingerprint(codes: Sequence[str]) -> str:
    """Hash of the analysis package source plus the selected rule codes.

    Covers every ``.py`` and ``.toml`` file under ``repro/analysis`` so
    that editing any rule, flow pass, or the draw-order manifest
    invalidates the cache wholesale — the safe direction.
    """
    digest = hashlib.sha256()
    package = Path(__file__).resolve().parent
    for path in sorted([*package.rglob("*.py"), *package.rglob("*.toml")]):
        digest.update(path.relative_to(package).as_posix().encode("utf-8"))
        try:
            digest.update(path.read_bytes())
        except OSError:  # pragma: no cover - filesystem race
            continue
    digest.update(",".join(sorted(c.upper() for c in codes)).encode("utf-8"))
    return digest.hexdigest()
