"""REPRO009 — ad-hoc timing/printing bypasses the observability layer.

The hot pipeline packages (``core``, ``simulation``, ``serving`` —
including the sharded cluster — and the :mod:`repro.obs` layer itself)
are instrumented through :mod:`repro.obs`: spans carry monotonic timings,
metrics carry counters, and every CLI/exporter reads from those.  A
direct ``time.time()`` call or a stray ``print()`` in those packages
leaks a second, invisible channel — wall-clock-affected timings that
never reach a dump, and console output that corrupts machine-read
stdout (``repro obs report`` pipes, Prometheus scrapes).

Command-line front-ends (``*/cli.py``) are exempt: printing is their
job.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import Diagnostic, LintContext, Rule

__all__ = ["ObsDisciplineRule"]

_PACKAGES = ("core/", "simulation/", "serving/", "obs/")


class ObsDisciplineRule(Rule):
    code = "REPRO009"
    name = "obs-discipline"
    summary = (
        "time.time()/print() in core//simulation//serving//obs; use the "
        "repro.obs tracer clock / exporters"
    )
    rationale = (
        "The design pipeline, the marketplace simulation and the serving\n"
        "layer are traced through repro.obs: Tracer.clock is the one\n"
        "injectable monotonic time source (tests freeze it, dumps carry\n"
        "it), and reports flow through the exporters.  time.time() is\n"
        "wall-clock — NTP steps and DST make it jump, so latencies go\n"
        "negative and span trees interleave wrongly; use\n"
        "time.perf_counter() via the tracer/stats clock instead.  print()\n"
        "in library code writes around the ledger, the stats snapshot and\n"
        "the span dump, so whatever it says is lost to every consumer\n"
        "that matters (and garbles piped `repro obs report` output).\n"
        "CLI modules (*/cli.py) are exempt: rendering to stdout is their\n"
        "purpose."
    )

    def applies_to(self, relpath: str) -> bool:
        if not relpath.startswith(_PACKAGES):
            return False
        return not relpath.endswith("/cli.py")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            offender = _undisciplined_call(node.func)
            if offender == "print":
                yield self.diagnostic(
                    ctx,
                    node,
                    "print() in pipeline code; return data or record it "
                    "through repro.obs (metrics/spans), and render in cli.py",
                )
            elif offender == "time.time":
                yield self.diagnostic(
                    ctx,
                    node,
                    "time.time() is wall-clock; use the injected obs clock "
                    "(Tracer.clock / ServingStats.now, monotonic)",
                )


def _undisciplined_call(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name) and func.id == "print":
        return "print"
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "time"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        return "time.time"
    return None
