"""REPRO006 — numeric dataclass fields in core//workers/ need validation.

The paper's guarantees hold only on validated parameter ranges
(``beta > 0``, ``omega >= 0``, ``delta > 0``, monotone compensations).
A dataclass in the algorithmic layers that carries raw ``float``/``int``
fields without a ``__post_init__`` accepts NaN, negative costs, or
out-of-range pieces and defers the blow-up to a distant Fig. 8 curve.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Diagnostic, LintContext, Rule

__all__ = ["DataclassValidationRule"]

_NUMERIC_ANNOTATIONS = frozenset({"float", "int"})


class DataclassValidationRule(Rule):
    code = "REPRO006"
    name = "unvalidated-dataclass"
    summary = (
        "dataclass in core//workers/ has numeric fields but no "
        "__post_init__ validation"
    )
    rationale = (
        "Every theorem in the paper carries range preconditions: Eq. (11)\n"
        "needs beta > 0, Lemma 4.1 needs psi' > 0 on the grid, Eq. (9)\n"
        "needs monotone compensations.  types.WorkerParameters and\n"
        "DiscretizationGrid enforce theirs in __post_init__; any core/ or\n"
        "workers/ dataclass holding raw numeric fields must do the same\n"
        "(at minimum reject non-finite values), otherwise a NaN beta\n"
        "propagates through the Eq. (39) recursion and the designed\n"
        "contract is garbage with no traceback pointing at the cause."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(("core/", "workers/")) or relpath == "types.py"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
                continue
            numeric_fields = [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and _is_numeric_annotation(stmt.annotation)
            ]
            if not numeric_fields:
                continue
            has_post_init = any(
                isinstance(stmt, ast.FunctionDef) and stmt.name == "__post_init__"
                for stmt in node.body
            )
            if not has_post_init:
                fields = ", ".join(numeric_fields)
                yield self.diagnostic(
                    ctx,
                    node,
                    f"dataclass '{node.name}' has numeric fields ({fields}) but "
                    "no __post_init__ validation",
                    context=node.name,
                )


def _is_dataclass_decorator(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        return _is_dataclass_decorator(node.func)
    if isinstance(node, ast.Name):
        return node.id == "dataclass"
    if isinstance(node, ast.Attribute):
        return node.attr == "dataclass"
    return False


def _is_numeric_annotation(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _NUMERIC_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _NUMERIC_ANNOTATIONS
    return False
