"""REPRO007 — module-level RNG calls break reproducibility.

``random.random()`` / ``np.random.normal()`` draw from hidden global
state; two experiment runs with the same ``--seed`` then disagree
whenever an unrelated code path consumes a draw first.  All randomness
in the simulation and the synthetic-trace generator must flow through
an explicitly seeded ``random.Random`` / ``numpy.random.Generator``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import Diagnostic, LintContext, Rule

__all__ = ["RngDeterminismRule"]

# Constructing an explicit generator (then threading it) is the fix, so
# these attribute calls are allowed even on the module objects.
_ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence", "Random", "PCG64"})


class RngDeterminismRule(Rule):
    code = "REPRO007"
    name = "nondeterministic-rng"
    summary = (
        "global random.*/np.random.* call in simulation//data/synthetic.py; "
        "thread a seeded Generator instead"
    )
    rationale = (
        "Every experiment (Figs. 6-8, Tables II-III) is keyed by a single\n"
        "--seed so the synthetic Amazon trace and the marketplace rounds\n"
        "replay bit-identically.  A call into the process-global RNG\n"
        "(random.random, np.random.normal, np.random.seed) couples that\n"
        "replay to import order and to every other consumer of the global\n"
        "stream.  Construct numpy.random.default_rng(seed) (or\n"
        "random.Random(seed)) at the entry point and pass it down."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("simulation/") or relpath == "data/synthetic.py"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            offender = _global_rng_call(node.func)
            if offender is not None:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"call to global RNG '{offender}'; use an explicitly "
                    "seeded numpy.random.Generator / random.Random",
                )


def _global_rng_call(func: ast.AST) -> Optional[str]:
    if not isinstance(func, ast.Attribute) or func.attr in _ALLOWED:
        return None
    value = func.value
    # random.<fn>(...)
    if isinstance(value, ast.Name) and value.id == "random":
        return f"random.{func.attr}"
    # np.random.<fn>(...) / numpy.random.<fn>(...)
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in {"np", "numpy"}
    ):
        return f"{value.value.id}.random.{func.attr}"
    return None
