"""REPRO005 — bare ``except:`` clauses.

A bare except swallows everything, including ``KeyboardInterrupt``,
``SystemExit`` and the typed :mod:`repro.errors` hierarchy this library
maintains precisely so callers can catch failures by subsystem.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Diagnostic, LintContext, Rule

__all__ = ["BareExceptRule"]


class BareExceptRule(Rule):
    code = "REPRO005"
    name = "bare-except"
    summary = "bare except: clause; catch a ReproError subclass instead"
    rationale = (
        "The library raises a typed hierarchy (ModelError, ContractError,\n"
        "DesignError, SimulationError, ...) exactly so failures can be\n"
        "handled by subsystem.  A bare except: also traps\n"
        "KeyboardInterrupt/SystemExit and the InvariantViolation raised\n"
        "by the runtime Lemma 4.2/4.3 checks — silently discarding the\n"
        "one signal that the theory was violated.  Name the exception\n"
        "class you mean."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.diagnostic(
                    ctx,
                    node,
                    "bare except: clause; catch specific exceptions "
                    "(see repro.errors)",
                )
