"""REPRO003 — mutable default arguments.

A ``def f(rows=[])`` default is created once at import and shared by all
calls; accumulating experiment rows or worker histories into it corrupts
every later run in the same process.  Use ``None`` and construct inside.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Diagnostic, LintContext, Rule

__all__ = ["MutableDefaultRule"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "Counter", "deque"})


class MutableDefaultRule(Rule):
    code = "REPRO003"
    name = "mutable-default"
    summary = "mutable default argument (list/dict/set) shared across calls"
    rationale = (
        "Default values are evaluated once at function definition and\n"
        "shared by every call.  The simulation engine and experiment\n"
        "drivers are re-entrant (one process runs all of Figs. 6-8 and\n"
        "Tables II-III back to back), so a mutable default that\n"
        "accumulates rows or review histories leaks state from one\n"
        "experiment into the next and destroys reproducibility.  Use\n"
        "``None`` as the default and build the container in the body."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable(default):
                    yield self.diagnostic(
                        ctx,
                        default,
                        f"mutable default argument in '{node.name}'; default to "
                        "None and construct inside the function",
                        context=_context(ctx, node),
                    )


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _context(ctx: LintContext, node: ast.AST) -> str:
    scope = ctx.scope_of(node)
    name = getattr(node, "name", "<lambda>")
    return name if scope == "<module>" else f"{scope}.{name}"
