"""REPRO004 — public modules must declare ``__all__``.

The package's import surface is its API contract; ``__all__`` makes the
surface explicit, keeps ``from module import *`` safe, and lets the
REPRO002/REPRO008 rules (and mypy's ``--strict`` re-export checks)
reason about what is public.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Diagnostic, LintContext, Rule

__all__ = ["ModuleAllRule"]


class ModuleAllRule(Rule):
    code = "REPRO004"
    name = "missing-module-all"
    summary = "module defines public names but no __all__"
    rationale = (
        "Each subsystem (core algorithm, data substrate, simulation\n"
        "engine) exposes a deliberate API; everything else is free to\n"
        "change between PRs.  A module that defines public functions or\n"
        "classes without __all__ leaves its contract implicit, which is\n"
        "how helper functions ossify into de-facto API.  Declare __all__\n"
        "listing exactly the supported surface."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        has_public_defs = False
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_"):
                    has_public_defs = True
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        return
        if has_public_defs:
            yield self.diagnostic(
                ctx,
                ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                "module defines public names but declares no __all__",
                context="<module>",
            )
