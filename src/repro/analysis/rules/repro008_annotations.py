"""REPRO008 — public functions must be fully type-annotated.

The package ships a ``py.typed`` marker and is checked under strict
mypy; an unannotated public parameter or return type punches an ``Any``
hole through which a ``Contract`` can silently flow where a float
compensation was meant.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from ..engine import Diagnostic, LintContext, Rule

__all__ = ["AnnotationsRule"]


class AnnotationsRule(Rule):
    code = "REPRO008"
    name = "missing-annotations"
    summary = "public function is missing parameter or return annotations"
    rationale = (
        "The quantities this library passes around are dimensionful —\n"
        "efforts, feedbacks, compensations, slopes — and most of them are\n"
        "plain floats.  Annotations (checked by strict mypy, advertised\n"
        "by the py.typed marker) are the only machine-checked record of\n"
        "which float a parameter is.  Every public function must annotate\n"
        "all parameters and its return type; an Any hole here is how an\n"
        "effort gets passed where a feedback belongs."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node, qualname in _public_functions(ctx.tree):
            missing = _missing_annotations(node)
            if missing:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"public function '{node.name}' lacks annotations for: "
                    + ", ".join(missing),
                    context=qualname,
                )


def _public_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.FunctionDef, str]]:
    """Module-level public functions and public methods of public classes.

    Functions nested inside other functions are private implementation
    detail regardless of name and are not checked.
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node, node.name
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not stmt.name.startswith("_") or stmt.name == "__init__":
                        yield stmt, f"{node.name}.{stmt.name}"


def _missing_annotations(node: ast.FunctionDef) -> List[str]:
    missing: List[str] = []
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    if positional and positional[0].arg in {"self", "cls"}:
        positional = positional[1:]
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"*{args.vararg.arg}")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"**{args.kwarg.arg}")
    if node.returns is None:
        missing.append("return")
    return missing
