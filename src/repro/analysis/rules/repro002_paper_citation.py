"""REPRO002 — paper-equation citations in core/ and experiments/.

Every public module-level function in the algorithmic core and the
experiment drivers must say *which* numbered statement of the ICDCS'17
paper it implements ("Eq. (39)", "Lemma 4.2", "Fig. 8a", ...), or point
at the derivation notes (DESIGN.md / EQUATIONS.md).  The citation is
what lets a reviewer check code against theory line by line.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..engine import Diagnostic, LintContext, Rule

__all__ = ["PaperCitationRule"]

_CITATION_RE = re.compile(
    r"(Eqs?\.|Equation\s|Lemma\s*\d|Theorem\s*\d|Corollary|Proposition"
    r"|Algorithm\s*\d|Section\s+[IVX\d]|Sec\.\s|§|Figs?\.\s|Figure\s*\d"
    r"|Tables?\s+[IVX\d]|Case\s+I|DESIGN\.md|EQUATIONS\.md|PAPER\.md)"
)


class PaperCitationRule(Rule):
    code = "REPRO002"
    name = "paper-citation"
    summary = (
        "public function in core/ or experiments/ lacks a paper citation "
        "(Eq./Lemma/Theorem/Fig./DESIGN.md) in its docstring"
    )
    rationale = (
        "This repository is a reproduction: every algorithmic entry point\n"
        "implements a numbered statement of the ICDCS'17 paper (Eqs. 30-42,\n"
        "Lemmas 4.1-4.3, Theorem 4.1) or a documented correction in\n"
        "DESIGN.md §2.  A public core/experiments function whose docstring\n"
        "names no equation cannot be audited against the theory, and\n"
        "silent drift between code and paper is exactly the failure mode\n"
        "this analyzer exists to prevent.  Cite the equation, lemma,\n"
        "figure or design note the function realizes."
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(("core/", "experiments/"))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            docstring = ast.get_docstring(node) or ""
            if not docstring:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"public function '{node.name}' has no docstring; cite the "
                    "paper equation/lemma it implements",
                    context=node.name,
                )
            elif not _CITATION_RE.search(docstring):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"docstring of '{node.name}' cites no paper statement "
                    "(Eq./Lemma/Theorem/Fig./Section or DESIGN.md)",
                    context=node.name,
                )
