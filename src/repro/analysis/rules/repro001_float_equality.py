"""REPRO001 — float equality on utilities/compensations.

Compensations, utilities, slopes and bounds are chained float
arithmetic; exact ``==``/``!=`` on them silently breaks under rounding
(the classic failure mode: a candidate slope computed two ways compares
unequal by one ulp and the designer rejects a valid contract).  Such
comparisons must go through the :mod:`repro.numerics` tolerance helpers
(``close``, ``is_zero``, ``leq``, ``geq``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..engine import Diagnostic, LintContext, Rule

__all__ = ["FloatEqualityRule"]

# Identifier tokens that mark a value as a paper quantity (compensation,
# utility, bound, ...) whose equality comparison is numerically fragile.
_DOMAIN_TOKENS = frozenset(
    {
        "compensation", "compensations", "pay", "payment", "payments",
        "utility", "utilities", "slope", "slopes", "bound", "bounds",
        "effort", "efforts", "feedback", "omega", "beta", "mu", "delta",
        "weight", "weights", "cost", "costs", "epsilon", "benefit",
        "gap", "budget", "price", "ceiling", "floor", "threshold",
    }
)

_TOKEN_RE = re.compile(r"[a-z]+")


class FloatEqualityRule(Rule):
    code = "REPRO001"
    name = "float-equality"
    summary = (
        "exact ==/!= on a float quantity (utility, compensation, slope, "
        "bound); use the repro.numerics tolerance helpers"
    )
    rationale = (
        "Compensations and utilities are built by long chains of float\n"
        "arithmetic — the Eq. (39) slope recursion, the Eq. (6) piecewise\n"
        "contract, the Theorem 4.1 bound sandwich.  Two mathematically\n"
        "equal quantities routinely differ by an ulp, so exact equality\n"
        "flips answers nondeterministically (a sign flip in core/cases.py\n"
        "only surfaces as a subtly wrong Fig. 8 curve).  Compare with\n"
        "repro.numerics.close / is_zero / leq / geq, which apply the\n"
        "same slack Contract grants the Eq. (6) monotonicity constraint."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_exempt(left) or _is_exempt(right):
                    continue
                if _is_float_constant(left) or _is_float_constant(right):
                    yield self._diag(ctx, node)
                    break
                if _is_domain_value(left) or _is_domain_value(right):
                    yield self._diag(ctx, node)
                    break

    def _diag(self, ctx: LintContext, node: ast.Compare) -> Diagnostic:
        return self.diagnostic(
            ctx,
            node,
            "exact float equality on a utility/compensation quantity; "
            "use repro.numerics.close/is_zero instead",
        )


def _is_float_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_constant(node.operand)
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_exempt(node: ast.AST) -> bool:
    """Constants whose equality is exact: str, bytes, bool, None, int."""
    if isinstance(node, ast.Constant):
        return not isinstance(node.value, float)
    # Comparisons against enum members (WorkerType.HONEST, PieceCase.X)
    # are identity-like and exact.
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.attr.isupper() or node.value.id[:1].isupper():
            return True
    return False


def _is_domain_value(node: ast.AST) -> bool:
    name = _identifier_of(node)
    if name is None:
        return False
    return bool(_DOMAIN_TOKENS.intersection(_TOKEN_RE.findall(name.lower())))


def _identifier_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _identifier_of(node.func)
    if isinstance(node, ast.Subscript):
        return _identifier_of(node.value)
    return None
