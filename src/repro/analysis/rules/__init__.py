"""Rule registry for the theory-lint analyzer.

Each rule lives in its own module and encodes one invariant the paper
(or basic numerical hygiene) imposes on this codebase.  Codes are
stable; never renumber a released rule.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..engine import Rule
from .repro001_float_equality import FloatEqualityRule
from .repro002_paper_citation import PaperCitationRule
from .repro003_mutable_default import MutableDefaultRule
from .repro004_module_all import ModuleAllRule
from .repro005_bare_except import BareExceptRule
from .repro006_dataclass_validation import DataclassValidationRule
from .repro007_rng_determinism import RngDeterminismRule
from .repro008_annotations import AnnotationsRule
from .repro009_obs_discipline import ObsDisciplineRule

__all__ = ["ALL_RULES", "RULES_BY_CODE", "get_rule"]

ALL_RULES: Tuple[Rule, ...] = (
    FloatEqualityRule(),
    PaperCitationRule(),
    MutableDefaultRule(),
    ModuleAllRule(),
    BareExceptRule(),
    DataclassValidationRule(),
    RngDeterminismRule(),
    AnnotationsRule(),
    ObsDisciplineRule(),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}


def get_rule(code: str) -> Optional[Rule]:
    """Look up a rule by its (case-insensitive) code."""
    return RULES_BY_CODE.get(code.upper())
