"""``python -m repro.analysis`` runs the theory-lint analyzer."""

import sys

from .cli import main

sys.exit(main())
