"""Runtime enforcement of the paper's compensation invariants.

Complementing the static rules, this module re-checks — on every
candidate-contract construction — the three properties the correctness
of the designer rests on:

* **Eq. (6)/(9) monotonicity** — compensations never decrease in
  feedback.
* **Lemma 4.2 ceiling** — the pay accumulated up to the target
  breakpoint never exceeds the certified per-piece window sum.
* **Lemma 4.3 floor** — the pay at the designed effort covers the
  participation floor (skipped for clamped candidates, whose
  preconditions the lemma does not cover).

The checks cost a handful of bound evaluations per construction, so they
are **off by default** and enabled via the environment variable
``REPRO_CHECK_INVARIANTS=1`` (any of ``1/true/yes/on``); the test suite
turns them on, benchmarks leave them off.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, TypeVar, cast

from ..errors import ReproError
from ..numerics import geq, leq, monotone_non_decreasing

__all__ = [
    "InvariantViolation",
    "invariants_enabled",
    "check_bounds",
    "check_candidate_invariants",
    "check_contract_monotone",
    "ENV_VAR",
]

ENV_VAR = "REPRO_CHECK_INVARIANTS"
_TRUTHY = frozenset({"1", "true", "yes", "on"})

# Bound comparisons tolerate a slightly looser relative slack than plain
# float equality: the Lemma 4.2 window sum accumulates one rounding per
# piece.
_REL_SLACK = 1e-7

_F = TypeVar("_F", bound=Callable[..., Any])


class InvariantViolation(ReproError):
    """A constructed contract violates a paper invariant at runtime.

    Raised only when ``REPRO_CHECK_INVARIANTS`` is enabled; carries the
    lemma/equation that failed in its message.
    """


def invariants_enabled() -> bool:
    """Whether the runtime invariant layer is switched on via env var."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def check_bounds(func: _F) -> _F:
    """Decorator: validate a returned candidate against Lemmas 4.2/4.3.

    Wraps a function returning a
    :class:`~repro.core.candidate.CandidateContract` (e.g.
    ``build_candidate``) and, when :func:`invariants_enabled`, asserts
    the Eq. (6) monotonicity plus the Lemma 4.2/4.3 compensation bounds
    on the result before handing it to the caller.  Disabled, the
    overhead is a single environment lookup.
    """

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        result = func(*args, **kwargs)
        if invariants_enabled():
            check_candidate_invariants(result)
        return result

    return cast(_F, wrapper)


def check_contract_monotone(contract: Any) -> None:
    """Assert the Eq. (6)/(9) constraint ``x_(l-1) <= x_l``.

    ``Contract.__post_init__`` enforces this at construction; the
    re-check here guards against later mutation through
    ``object.__setattr__`` or numerically degenerate breakpoints.
    """
    if not monotone_non_decreasing(contract.compensations):
        raise InvariantViolation(
            "Eq. (6) violated: compensations decrease in feedback: "
            f"{contract.compensations!r}"
        )


def check_candidate_invariants(candidate: Any) -> None:
    """Assert Lemma 4.2/4.3 and Eq. (6) on a constructed candidate.

    * Eq. (6): the posted compensations are monotone non-decreasing.
    * Lemma 4.2: the maximum net pay the contract can ever disburse,
      ``max_l x_l - x_0``, stays below the certified window sum
      ``sum_l max(beta/psi'(l delta) - omega, 0) * (d_l - d_{l-1})``.
      The max (not ``x_k``) is what the lemma bounds: pieces beyond the
      target are flat, so any pay above ``x_k`` in the tail would be
      reachable by the worker at zero marginal cost to the designer's
      certificate.
    * Lemma 4.3: the net pay at the designed effort covers the
      participation floor ``beta (k-1) delta - omega (psi(k delta) -
      psi(0))`` (checked only for unclamped candidates — clamping exits
      the Case III window Lemma 4.3 reasons about).
    """
    from ..core.bounds import compensation_lower_bound, compensation_upper_bound

    contract = candidate.contract
    check_contract_monotone(contract)

    grid = contract.grid
    psi = contract.effort_function
    beta = candidate.params.beta
    omega = candidate.params.omega
    k = candidate.target_piece
    base_pay = contract.compensations[0]

    ceiling = compensation_upper_bound(psi, grid, beta, k, omega=omega)
    max_pay = max(contract.compensations) - base_pay
    if not leq(max_pay, ceiling, rel_tol=_REL_SLACK):
        raise InvariantViolation(
            f"Lemma 4.2 violated for target piece {k}: maximum net pay "
            f"{max_pay!r} exceeds certified ceiling {ceiling!r}"
        )

    if not candidate.clamped_pieces:
        floor = compensation_lower_bound(
            grid, beta, k, effort_function=psi, omega=omega
        )
        pay_at_designed = (
            contract.pay_for_effort(candidate.designed_effort) - base_pay
        )
        if not geq(pay_at_designed, floor, rel_tol=_REL_SLACK):
            raise InvariantViolation(
                f"Lemma 4.3 violated for target piece {k}: net pay "
                f"{pay_at_designed!r} at the designed effort falls below "
                f"participation floor {floor!r}"
            )
