"""Command-line front end for the theory-lint analyzer.

Reused by both entry points::

    python -m repro.analysis src/repro
    python -m repro lint src/repro          # via the main repro CLI

Per-file rules (REPRO001–REPRO009) always run; ``--flow`` adds the
cross-module passes (REPRO010–REPRO013) over a whole-tree index.
``--format json|sarif`` renders machine-readable reports, and repeated
runs are served from a per-file findings cache under
``.theory-lint-cache/`` (``--no-cache`` bypasses it).

Exit status: 0 when no new findings, 1 when findings remain, 2 on
usage/IO errors.
"""

from __future__ import annotations

import argparse
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .cache import CACHE_DIR_NAME, FindingsCache, ruleset_fingerprint
from .engine import (
    Diagnostic,
    LintEngine,
    dedupe_diagnostics,
    filter_baseline,
    format_baseline,
    load_baseline,
)
from .flow import FLOW_PASSES, ProjectIndex, get_flow_pass, run_flow
from .formats import LINT_FORMATS, render_json, render_sarif, render_text
from .rules import ALL_RULES, get_rule

__all__ = ["add_lint_arguments", "run_lint", "main", "BASELINE_FILENAME"]

BASELINE_FILENAME = ".theory-lint-baseline"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared lint flags to an (sub)parser (CLI contract)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to lint (default: src/repro, else .)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of grandfathered findings (default: discover "
            f"{BASELINE_FILENAME} upward from the first path)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="CODE",
        help="print a rule's rationale and paper reference, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list all rule codes with one-line summaries",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the cross-module flow passes (REPRO010-REPRO013)",
    )
    parser.add_argument(
        "--format",
        dest="format",
        choices=LINT_FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the rendered report to PATH",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"bypass the per-file findings cache under {CACHE_DIR_NAME}/",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.explain is not None:
        return _explain(args.explain)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        for flow_pass in FLOW_PASSES:
            print(f"{flow_pass.code}  {flow_pass.name}: {flow_pass.summary} [--flow]")
        return 0

    rules = list(ALL_RULES)
    passes = list(FLOW_PASSES)
    selected_codes = sorted(
        [r.code for r in rules] + ([p.code for p in passes] if args.flow else [])
    )
    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",")}
        known = {rule.code for rule in ALL_RULES} | {p.code for p in FLOW_PASSES}
        unknown = wanted - known
        if unknown:
            print(f"error: unknown rule code(s): {', '.join(sorted(unknown))}")
            return 2
        rules = [rule for rule in ALL_RULES if rule.code in wanted]
        passes = [p for p in FLOW_PASSES if p.code in wanted]
        selected_codes = sorted(
            [r.code for r in rules] + ([p.code for p in passes] if args.flow else [])
        )

    paths, missing = _resolve_paths(args.paths)
    if missing:
        for name in missing:
            print(f"error: path does not exist: {name}")
        return 2
    if not paths:
        print("error: no existing paths to lint")
        return 2

    cache: Optional[FindingsCache] = None
    if not args.no_cache:
        cache_root = _repo_root(paths[0])
        if cache_root is not None:
            cache = FindingsCache(
                cache_root / CACHE_DIR_NAME,
                ruleset_fingerprint(selected_codes),
            )

    engine = LintEngine(rules)
    diagnostics = engine.lint_paths(paths, cache=cache)
    if args.flow and passes:
        index = ProjectIndex.build(paths)
        diagnostics = diagnostics + run_flow(index=index, passes=passes)
        diagnostics.sort(key=lambda d: (d.relpath, d.line, d.column, d.code))
    diagnostics = dedupe_diagnostics(diagnostics)
    if cache is not None:
        cache.save()

    baseline_path = _baseline_path(args, paths)
    if args.write_baseline:
        baseline_path.write_text(format_baseline(diagnostics))
        print(f"wrote {len(diagnostics)} finding(s) to {baseline_path}")
        return 0

    baseline: Counter = Counter()
    if not args.no_baseline and baseline_path.is_file():
        baseline = load_baseline(baseline_path)

    new, stale = filter_baseline(diagnostics, baseline)
    suppressed = len(diagnostics) - len(new)
    report = _render(args.format, new, stale, suppressed, baseline_path, rules, passes)
    if report:
        print(report)
    if args.output is not None:
        try:
            Path(args.output).write_text(report + "\n", encoding="utf-8")
        except OSError as exc:
            print(f"error: could not write report to {args.output}: {exc}")
            return 2
    return 1 if new else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.analysis`` (CLI)."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "theory-lint: static analysis enforcing the ICDCS'17 paper's "
            "invariants (tolerant float comparison, paper citations, "
            "seeded RNG, validated dataclasses, fast-path kernel "
            "discipline, ...)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


def _render(
    fmt: str,
    new: Sequence[Diagnostic],
    stale: Counter,
    suppressed: int,
    baseline_path: Path,
    rules: Sequence,
    passes: Sequence,
) -> str:
    if fmt == "json":
        return render_json(new, stale, suppressed)
    if fmt == "sarif":
        return render_sarif(new, [*rules, *passes])
    return render_text(new, stale, suppressed, baseline_path)


def _explain(code: str) -> int:
    rule = get_rule(code) or get_flow_pass(code)
    if rule is None:
        known = ", ".join(
            [r.code for r in ALL_RULES] + [p.code for p in FLOW_PASSES]
        )
        print(f"error: unknown rule code {code!r} (known: {known})")
        return 2
    print(f"{rule.code} ({rule.name})")
    print(f"  {rule.summary}")
    print()
    for line in rule.rationale.splitlines():
        print(f"  {line}")
    return 0


def _resolve_paths(raw: List[str]) -> Tuple[List[Path], List[str]]:
    """Split explicit path arguments into (existing, missing).

    Explicitly named paths that do not exist are *errors* (exit 2), not
    silently dropped — a typo in CI must not turn the gate green.
    """
    if raw:
        paths: List[Path] = []
        missing: List[str] = []
        for name in raw:
            path = Path(name)
            if path.exists():
                paths.append(path)
            else:
                missing.append(name)
        return paths, missing
    default = Path("src/repro")
    if default.is_dir():
        return [default], []
    here = Path(".")
    return ([here] if here.is_dir() else []), []


def _repo_root(start: Path) -> Optional[Path]:
    """Nearest ancestor with a repo marker, for the cache directory."""
    try:
        resolved = start.resolve()
    except OSError:  # pragma: no cover - filesystem race
        return None
    if resolved.is_file():
        resolved = resolved.parent
    for directory in [resolved, *resolved.parents]:
        if (directory / "pyproject.toml").is_file() or (directory / ".git").exists():
            return directory
    return None


def _baseline_path(args: argparse.Namespace, paths: List[Path]) -> Path:
    if args.baseline:
        return Path(args.baseline)
    # Discover the checked-in baseline by walking up from the first
    # target, so `python -m repro.analysis src/repro` works from the
    # repo root and from inside src/.
    start = paths[0].resolve()
    if start.is_file():
        start = start.parent
    for directory in [start, *start.parents]:
        candidate = directory / BASELINE_FILENAME
        if candidate.is_file():
            return candidate
    return Path(BASELINE_FILENAME)
