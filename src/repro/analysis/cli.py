"""Command-line front end for the theory-lint analyzer.

Reused by both entry points::

    python -m repro.analysis src/repro
    python -m repro lint src/repro          # via the main repro CLI

Exit status: 0 when no new findings, 1 when findings remain, 2 on
usage/IO errors.
"""

from __future__ import annotations

import argparse
from collections import Counter
from pathlib import Path
from typing import List, Optional

from .engine import LintEngine, filter_baseline, format_baseline, load_baseline
from .rules import ALL_RULES, get_rule

__all__ = ["add_lint_arguments", "run_lint", "main", "BASELINE_FILENAME"]

BASELINE_FILENAME = ".theory-lint-baseline"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared lint flags to an (sub)parser (CLI contract)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to lint (default: src/repro, else .)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of grandfathered findings (default: discover "
            f"{BASELINE_FILENAME} upward from the first path)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="CODE",
        help="print a rule's rationale and paper reference, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list all rule codes with one-line summaries",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.explain is not None:
        return _explain(args.explain)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0

    rules = list(ALL_RULES)
    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",")}
        unknown = wanted - {rule.code for rule in ALL_RULES}
        if unknown:
            print(f"error: unknown rule code(s): {', '.join(sorted(unknown))}")
            return 2
        rules = [rule for rule in ALL_RULES if rule.code in wanted]

    paths = _resolve_paths(args.paths)
    if not paths:
        print("error: no existing paths to lint")
        return 2

    engine = LintEngine(rules)
    diagnostics = engine.lint_paths(paths)

    baseline_path = _baseline_path(args, paths)
    if args.write_baseline:
        baseline_path.write_text(format_baseline(diagnostics))
        print(f"wrote {len(diagnostics)} finding(s) to {baseline_path}")
        return 0

    baseline: Counter = Counter()
    if not args.no_baseline and baseline_path.is_file():
        baseline = load_baseline(baseline_path)

    new, stale = filter_baseline(diagnostics, baseline)
    for diag in new:
        print(diag.format())
    suppressed = len(diagnostics) - len(new)
    if suppressed:
        print(f"({suppressed} grandfathered finding(s) suppressed by {baseline_path})")
    for fingerprint in sorted(stale):
        print(f"stale baseline entry (no longer found): {fingerprint}")
    if new:
        print(f"{len(new)} new finding(s)")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.analysis`` (CLI)."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "theory-lint: static analysis enforcing the ICDCS'17 paper's "
            "invariants (tolerant float comparison, paper citations, "
            "seeded RNG, validated dataclasses, ...)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


def _explain(code: str) -> int:
    rule = get_rule(code)
    if rule is None:
        known = ", ".join(r.code for r in ALL_RULES)
        print(f"error: unknown rule code {code!r} (known: {known})")
        return 2
    print(f"{rule.code} ({rule.name})")
    print(f"  {rule.summary}")
    print()
    for line in rule.rationale.splitlines():
        print(f"  {line}")
    return 0


def _resolve_paths(raw: List[str]) -> List[Path]:
    if raw:
        return [Path(p) for p in raw if Path(p).exists()]
    default = Path("src/repro")
    if default.is_dir():
        return [default]
    here = Path(".")
    return [here] if here.is_dir() else []


def _baseline_path(args: argparse.Namespace, paths: List[Path]) -> Path:
    if args.baseline:
        return Path(args.baseline)
    # Discover the checked-in baseline by walking up from the first
    # target, so `python -m repro.analysis src/repro` works from the
    # repo root and from inside src/.
    start = paths[0].resolve()
    if start.is_file():
        start = start.parent
    for directory in [start, *start.parents]:
        candidate = directory / BASELINE_FILENAME
        if candidate.is_file():
            return candidate
    return Path(BASELINE_FILENAME)
