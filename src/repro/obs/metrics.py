"""Counters, gauges and bounded histograms on one shared registry.

Every subsystem (the serving layer's :class:`~repro.serving.stats.ServingStats`,
the solver pool, the simulation engine) books its numbers into a
:class:`MetricsRegistry` so that one exporter pass sees everything.
Histograms summarize through the same
:func:`repro.metrics.percentiles.summarize` helper the Fig. 8
experiments use — "p95 request latency" in an obs dump and "p95
compensation" in a paper table mean the same estimator.

Histograms are bounded two ways: a *sample reservoir* (most recent
``max_samples`` observations, for percentile summaries) and exact
running aggregates (``count``/``total``/``min``/``max``) that never
saturate.  :func:`merge_histograms` combines any number of histograms
in one shot over the multiset union of their samples, so the merged
result is independent of input order — a property the test suite pins
down with hypothesis.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from ..errors import ObservabilityError
from ..metrics.percentiles import DistributionSummary, summarize

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_histograms",
    "get_registry",
    "set_registry",
]


def _require_name(name: str) -> str:
    if not name or any(ch.isspace() for ch in name):
        raise ObservabilityError(
            f"metric names must be non-empty and whitespace-free, got {name!r}"
        )
    return name


class Counter:
    """A monotonically increasing count (requests, hits, evictions)."""

    __slots__ = ("name", "help", "_lock", "_value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _require_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter (negative increments are rejected)."""
        if amount < 0.0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount!r})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (queue depth, cache size, hit rate)."""

    __slots__ = ("name", "help", "_lock", "_value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _require_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        if not math.isfinite(value):
            raise ObservabilityError(
                f"gauge {self.name!r} must be finite, got {value!r}"
            )
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        """Adjust the gauge by ``amount`` (either sign)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value


class Histogram:
    """A bounded sample distribution with exact running aggregates.

    Args:
        name: metric name (dotted; exporters mangle as needed).
        help: one-line description for exporters.
        max_samples: reservoir bound — percentile summaries reflect the
            most recent ``max_samples`` observations, while ``count``,
            ``total``, ``min`` and ``max`` stay exact forever.
    """

    __slots__ = (
        "name",
        "help",
        "max_samples",
        "_lock",
        "_samples",
        "count",
        "total",
        "min",
        "max",
    )

    kind = "histogram"

    def __init__(self, name: str, help: str = "", max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ObservabilityError(
                f"max_samples must be >= 1, got {max_samples!r}"
            )
        self.name = _require_name(name)
        self.help = help
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._samples: Deque[float] = deque(maxlen=max_samples)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not math.isfinite(value):
            raise ObservabilityError(
                f"histogram {self.name!r} observations must be finite, "
                f"got {value!r}"
            )
        with self._lock:
            self._samples.append(value)
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations."""
        for value in values:
            self.observe(value)

    @property
    def samples(self) -> Tuple[float, ...]:
        """The retained (most recent) samples, oldest first."""
        with self._lock:
            return tuple(self._samples)

    @property
    def mean(self) -> float:
        """Exact mean over *all* observations ever made (0.0 when idle)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile of the retained (bounded-buffer) samples.

        Computed over the sorted reservoir with linear interpolation
        between closest ranks (the same convention as
        ``numpy.quantile``'s default), so ``quantile(0.5)`` of
        ``[1, 2, 3, 4]`` is ``2.5``.  Benchmarks assert p50/p99 latency
        through this instead of eyeballing exported summaries.

        Args:
            q: the quantile in ``[0, 1]``.

        Raises:
            ObservabilityError: when ``q`` is out of range or nothing
                has been observed (an all-zero stand-in would be a lie).
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile must lie in [0, 1], got {q!r}"
            )
        ordered = sorted(self.samples)
        if not ordered:
            raise ObservabilityError(
                f"histogram {self.name!r} has no samples to take a "
                "quantile of"
            )
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        lower = int(math.floor(position))
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        # lo + (hi - lo) * f (not the two-product form) so the result
        # can never round past either endpoint.
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def summary(self) -> Optional[DistributionSummary]:
        """The Fig. 8-style summary of the retained samples.

        ``None`` when nothing has been observed (``summarize`` rejects
        empty samples, and an all-zero stand-in would be a lie).
        """
        samples = self.samples
        if not samples:
            return None
        return summarize(samples)

    def snapshot(self) -> Dict[str, float]:
        """Aggregates plus percentile summary as a flat dict."""
        out: Dict[str, float] = {
            "count": float(self.count),
            "total": self.total,
            "mean": self.mean,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        summary = self.summary()
        if summary is not None:
            out["p5"] = summary.p5
            out["p95"] = summary.p95
        return out


def merge_histograms(
    histograms: Iterable[Histogram],
    name: str = "merged",
    max_samples: Optional[int] = None,
) -> Histogram:
    """Merge histograms order-independently.

    The merged reservoir is the multiset union of the inputs' retained
    samples, sorted, then (if over the bound) thinned to an evenly
    strided subsample — every step is a function of the union as a
    *multiset*, so any permutation of ``histograms`` yields an
    identical result.  Running aggregates add exactly.

    Args:
        histograms: the histograms to merge (zero or more).
        name: name of the merged histogram.
        max_samples: reservoir bound of the result (default: the largest
            input bound, or 4096 when merging nothing).
    """
    inputs = list(histograms)
    if max_samples is None:
        max_samples = max((h.max_samples for h in inputs), default=4096)
    merged = Histogram(name, max_samples=max_samples)
    pooled: List[float] = []
    for histogram in inputs:
        pooled.extend(histogram.samples)
        merged.count += histogram.count
        merged.total += histogram.total
        if histogram.count:
            merged.min = min(merged.min, histogram.min)
            merged.max = max(merged.max, histogram.max)
    pooled.sort()
    if len(pooled) > max_samples:
        # Evenly strided thinning over the sorted union keeps the
        # empirical distribution's shape and is permutation-invariant.
        stride = len(pooled) / max_samples
        pooled = [pooled[int(i * stride)] for i in range(max_samples)]
    merged._samples.extend(pooled)
    return merged


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: two call
    sites naming the same metric share one instrument (registering the
    same name as two different kinds is an error).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, Any]" = {}

    def _get_or_create(
        self, name: str, factory: Callable[[], Any], kind: str
    ) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ObservabilityError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self, name: str, help: str = "", max_samples: int = 4096
    ) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get_or_create(
            name, lambda: Histogram(name, help, max_samples=max_samples), "histogram"
        )

    def adopt(self, metric: Any) -> Any:
        """Register an already-built instrument under its own name.

        The federation path (:mod:`repro.obs.aggregate`) builds merged
        histograms with :func:`merge_histograms` and adopts them into a
        result registry; ``histogram()`` cannot express that because it
        always constructs empty instruments.  Adopting a name that is
        already registered (to a different object) is an error.
        """
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if existing is metric:
                    return metric
                raise ObservabilityError(
                    f"metric {metric.name!r} already registered; cannot "
                    "adopt a second instrument under the same name"
                )
            self._metrics[metric.name] = metric
            return metric

    def get(self, name: str) -> Optional[Any]:
        """The metric called ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> Tuple[Any, ...]:
        """Every registered metric, sorted by name."""
        with self._lock:
            return tuple(
                self._metrics[name] for name in sorted(self._metrics)
            )

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """All metrics as ``{name: {field: value}}`` (export payload)."""
        out: Dict[str, Dict[str, float]] = {}
        for metric in self.metrics():
            if metric.kind == "histogram":
                out[metric.name] = metric.snapshot()
            else:
                out[metric.name] = {"value": metric.value}
        return out

    def clear(self) -> None:
        """Drop every registered metric."""
        with self._lock:
            self._metrics.clear()


# -- global registry --------------------------------------------------

_global_registry = MetricsRegistry()
_global_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry instrumented modules default to."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry; returns the previous one."""
    global _global_registry
    with _global_lock:
        previous = _global_registry
        _global_registry = registry
    return previous
