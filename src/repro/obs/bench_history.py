"""Benchmark-trajectory tracker: append-only gate history + regression check.

Every benchmark gate (``benchmarks/test_bench_*.py``) measures a
headline number — sweep speedup, cluster throughput, obs overhead —
that until now evaporated with the CI run.  This module gives those
numbers a memory: each gate appends one schema-validated record to a
``BENCH_history.jsonl`` file (opt-in via the ``REPRO_BENCH_HISTORY``
environment variable), and ``repro obs bench`` reads the accumulated
file back to report per-gate trajectories and flag regressions against
the trailing median.

Records never carry implicit wall-clock reads: callers pass
``recorded_unix`` in (the benchmark conftest stamps it), which keeps
this module clock-free per the REPRO009 obs-discipline rule and makes
every function a pure data transform.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ObservabilityError
from ..numerics import is_zero

__all__ = [
    "HISTORY_ENV",
    "HISTORY_SCHEMA",
    "BenchRecord",
    "Regression",
    "validate_history_record",
    "append_history",
    "load_history",
    "detect_regressions",
    "render_trajectory",
]

#: Environment variable naming the history file benchmark gates append to.
HISTORY_ENV = "REPRO_BENCH_HISTORY"

#: Directions a tracked metric can improve in.
_DIRECTIONS = ("higher", "lower")

#: JSON Schema (draft-07 subset) every history record obeys.
HISTORY_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.obs benchmark-history record",
    "type": "object",
    "required": ["kind", "gate", "metrics", "recorded_unix"],
    "properties": {
        "kind": {"type": "string", "enum": ["bench"]},
        "gate": {"type": "string", "minLength": 1},
        "metrics": {"type": "object"},
        "directions": {"type": "object"},
        "recorded_unix": {"type": "number", "minimum": 0},
        "meta": {"type": "object"},
    },
}


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark gate's measured numbers at one point in time.

    Attributes:
        gate: stable gate name (``"sweep"``, ``"cluster"``, ...).
        metrics: measured numbers, ``{metric: value}``.
        recorded_unix: wall-clock timestamp (seconds since the epoch),
            supplied by the caller.
        directions: which way each tracked metric improves
            (``{metric: "higher" | "lower"}``); metrics without a
            direction are recorded but never flagged.
        meta: free-form string annotations (git sha, runner name...).
    """

    gate: str
    metrics: Dict[str, float]
    recorded_unix: float
    directions: Dict[str, str] = field(default_factory=dict)
    meta: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.gate:
            raise ObservabilityError("gate name must be non-empty")
        if not self.metrics:
            raise ObservabilityError(
                f"gate {self.gate!r} must record at least one metric"
            )
        for metric, direction in self.directions.items():
            if direction not in _DIRECTIONS:
                raise ObservabilityError(
                    f"gate {self.gate!r} metric {metric!r}: direction must "
                    f"be one of {_DIRECTIONS}, got {direction!r}"
                )
            if metric not in self.metrics:
                raise ObservabilityError(
                    f"gate {self.gate!r} directs unknown metric {metric!r}"
                )

    def to_record(self) -> Dict[str, Any]:
        """The JSON-serializable history record."""
        record: Dict[str, Any] = {
            "kind": "bench",
            "gate": self.gate,
            "metrics": {k: float(v) for k, v in self.metrics.items()},
            "recorded_unix": float(self.recorded_unix),
        }
        if self.directions:
            record["directions"] = dict(self.directions)
        if self.meta:
            record["meta"] = dict(self.meta)
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "BenchRecord":
        """Parse (and validate) one history record."""
        problems = validate_history_record(record)
        if problems:
            raise ObservabilityError(
                "invalid bench-history record: " + "; ".join(problems)
            )
        return cls(
            gate=record["gate"],
            metrics={k: float(v) for k, v in record["metrics"].items()},
            recorded_unix=float(record["recorded_unix"]),
            directions=dict(record.get("directions", {})),
            meta={k: str(v) for k, v in record.get("meta", {}).items()},
        )


def validate_history_record(record: Mapping[str, Any]) -> List[str]:
    """Problems with one record against :data:`HISTORY_SCHEMA` (empty: clean)."""
    problems: List[str] = []
    for key in HISTORY_SCHEMA["required"]:
        if key not in record:
            problems.append(f"missing required field {key!r}")
    if problems:
        return problems
    if record["kind"] != "bench":
        problems.append(f"kind must be 'bench', got {record['kind']!r}")
    if not isinstance(record["gate"], str) or not record["gate"]:
        problems.append(f"gate must be a non-empty string, got {record['gate']!r}")
    metrics = record["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        problems.append("metrics must be a non-empty object")
    else:
        for key, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"metric {key!r} value must be a number")
    recorded = record["recorded_unix"]
    if (
        not isinstance(recorded, (int, float))
        or isinstance(recorded, bool)
        or recorded < 0
    ):
        problems.append("recorded_unix must be a non-negative number")
    directions = record.get("directions", {})
    if not isinstance(directions, dict):
        problems.append("directions must be an object")
    else:
        for key, value in directions.items():
            if value not in _DIRECTIONS:
                problems.append(
                    f"direction for {key!r} must be one of {_DIRECTIONS}"
                )
            elif isinstance(metrics, dict) and key not in metrics:
                problems.append(f"direction for unknown metric {key!r}")
    return problems


def append_history(path: Union[str, Path], record: BenchRecord) -> None:
    """Append one record to the history file (creating parents as needed)."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="ascii") as handle:
        handle.write(json.dumps(record.to_record(), sort_keys=True))
        handle.write("\n")


def load_history(path: Union[str, Path]) -> List[BenchRecord]:
    """Read a history file back, in append order.

    Raises:
        ObservabilityError: on unparseable lines or schema-invalid
            records (an append-only file that went bad should fail
            loudly, not half-load).
    """
    records: List[BenchRecord] = []
    target = Path(path)
    if not target.exists():
        return records
    for number, line in enumerate(target.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{target}:{number}: invalid JSON record: {exc}"
            ) from exc
        if not isinstance(raw, dict):
            raise ObservabilityError(
                f"{target}:{number}: expected a JSON object"
            )
        try:
            records.append(BenchRecord.from_record(raw))
        except ObservabilityError as exc:
            raise ObservabilityError(f"{target}:{number}: {exc}") from exc
    return records


@dataclass(frozen=True)
class Regression:
    """One metric moving the wrong way past tolerance.

    Attributes:
        gate: the gate the metric belongs to.
        metric: the regressing metric name.
        value: the latest measured value.
        baseline: the trailing median it was compared against.
        ratio: ``value / baseline`` (``inf`` when the baseline is 0).
        direction: which way the metric is supposed to move.
    """

    gate: str
    metric: str
    value: float
    baseline: float
    ratio: float
    direction: str

    def describe(self) -> str:
        """One human line, e.g. for CI logs."""
        return (
            f"{self.gate}.{self.metric}: {self.value:.6g} vs trailing "
            f"median {self.baseline:.6g} ({self.direction} is better)"
        )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _grouped(
    records: Sequence[BenchRecord],
) -> Dict[str, List[BenchRecord]]:
    by_gate: Dict[str, List[BenchRecord]] = {}
    for record in records:
        by_gate.setdefault(record.gate, []).append(record)
    for runs in by_gate.values():
        runs.sort(key=lambda r: r.recorded_unix)
    return by_gate


def detect_regressions(
    records: Sequence[BenchRecord],
    tolerance: float = 0.10,
    window: int = 5,
) -> List[Regression]:
    """Latest run of each gate vs the trailing median of earlier runs.

    For each direction-tagged metric with at least two runs, the latest
    value is compared against the median of the up-to-``window``
    preceding runs; moving the wrong way by more than ``tolerance``
    (fractional) flags a :class:`Regression`.  The median baseline
    tolerates single-run noise that a latest-vs-previous diff would
    flag constantly.
    """
    if tolerance < 0.0:
        raise ObservabilityError(f"tolerance must be >= 0, got {tolerance!r}")
    if window < 1:
        raise ObservabilityError(f"window must be >= 1, got {window!r}")
    regressions: List[Regression] = []
    for gate, runs in sorted(_grouped(records).items()):
        if len(runs) < 2:
            continue
        latest = runs[-1]
        history = runs[:-1][-window:]
        for metric, direction in sorted(latest.directions.items()):
            value = latest.metrics[metric]
            past = [
                run.metrics[metric]
                for run in history
                if metric in run.metrics
            ]
            if not past:
                continue
            baseline = _median(past)
            if is_zero(baseline):
                worse = (direction == "lower" and value > 0.0) or (
                    direction == "higher" and value < 0.0
                )
                ratio = float("inf") if value else 1.0
            elif direction == "higher":
                worse = value < baseline * (1.0 - tolerance)
                ratio = value / baseline
            else:
                worse = value > baseline * (1.0 + tolerance)
                ratio = value / baseline
            if worse:
                regressions.append(
                    Regression(
                        gate=gate,
                        metric=metric,
                        value=value,
                        baseline=baseline,
                        ratio=ratio,
                        direction=direction,
                    )
                )
    return regressions


def render_trajectory(
    records: Sequence[BenchRecord],
    tolerance: float = 0.10,
    window: int = 5,
    gate: Optional[str] = None,
) -> Tuple[str, List[Regression]]:
    """Per-gate trajectory table plus the detected regressions.

    Returns the rendered report and the regression list so the CLI can
    pick its exit code without re-deriving anything.
    """
    by_gate = _grouped(records)
    if gate is not None:
        by_gate = {name: runs for name, runs in by_gate.items() if name == gate}
    lines: List[str] = ["-- benchmark trajectory --"]
    if not by_gate:
        lines.append("no bench-history records" + (f" for gate {gate!r}" if gate else ""))
        return "\n".join(lines) + "\n", []
    header = (
        f"{'gate':<22} {'metric':<26} {'runs':>4} {'first':>12} "
        f"{'median':>12} {'latest':>12} {'delta':>8}"
    )
    lines.append(header)
    for gate_name, runs in sorted(by_gate.items()):
        metric_names = sorted({m for run in runs for m in run.metrics})
        for metric in metric_names:
            values = [run.metrics[metric] for run in runs if metric in run.metrics]
            if not values:
                continue
            baseline = _median(values[:-1][-window:]) if len(values) > 1 else values[-1]
            delta = (
                (values[-1] - baseline) / baseline if baseline else float("nan")
            )
            direction = runs[-1].directions.get(metric, "")
            tag = f" ({direction})" if direction else ""
            lines.append(
                f"{gate_name:<22} {metric + tag:<26} {len(values):>4} "
                f"{values[0]:>12.6g} {baseline:>12.6g} {values[-1]:>12.6g} "
                f"{delta:>+7.1%}"
            )
    flagged = detect_regressions(
        [run for runs in by_gate.values() for run in runs],
        tolerance=tolerance,
        window=window,
    )
    lines.append("")
    if flagged:
        lines.append(f"-- regressions (tolerance {tolerance:.0%}) --")
        for regression in flagged:
            lines.append("  " + regression.describe())
    else:
        lines.append(f"no regressions (tolerance {tolerance:.0%})")
    return "\n".join(lines) + "\n", flagged
