"""Command-line front end for the observability layer.

Reused by the main ``repro`` CLI::

    repro obs report /tmp/spans.jsonl       # span tree + hottest spans
    repro obs report a.jsonl b.jsonl        # merged cross-process tree
    repro obs validate /tmp/spans.jsonl     # JSON-schema check (CI gate)
    repro obs schema                        # print the span schema
    repro obs top http://127.0.0.1:8787     # live cluster dashboard
    repro obs bench BENCH_history.jsonl     # gate trajectory + regressions
    repro run fig7 --obs-out /tmp/spans.jsonl
    repro solve --obs-out /tmp/spans.jsonl
    repro serve --rounds 2 --obs-out /tmp/spans.jsonl

``obs_session`` is the ``--obs-out`` implementation: it enables the
global tracer for the duration of a command and dumps spans plus the
global metrics registry to the requested path on the way out.

Exit status: 0 on success, 1 when ``validate`` finds schema problems,
2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from ..errors import ObservabilityError
from .bench_history import load_history, render_trajectory
from .dashboard import ClusterTop
from .export import (
    SPAN_SCHEMA,
    prometheus_text,
    read_jsonl,
    render_report,
    validate_records,
    write_jsonl,
)
from .metrics import get_registry
from .trace import get_tracer

__all__ = ["add_obs_arguments", "add_obs_out_argument", "run_obs", "obs_session"]


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro obs`` sub-subcommands to a (sub)parser."""
    actions = parser.add_subparsers(dest="obs_command", required=True)

    report = actions.add_parser(
        "report", help="render a span dump as a tree + hottest-spans table"
    )
    report.add_argument(
        "paths",
        nargs="+",
        metavar="path",
        help=(
            "spans JSONL file(s) (from --obs-out); several files merge "
            "into one cross-process tree via shared trace/span ids"
        ),
    )
    report.add_argument(
        "--top", type=int, default=10, help="hottest-span rows (default: 10)"
    )

    validate = actions.add_parser(
        "validate", help="validate a span dump against the span schema"
    )
    validate.add_argument("path", help="spans JSONL file (from --obs-out)")
    validate.add_argument(
        "--min-spans",
        type=int,
        default=1,
        help="fail unless at least this many span records exist (default: 1)",
    )

    actions.add_parser("schema", help="print the span JSON schema")

    metrics = actions.add_parser(
        "metrics", help="render a dump's metric records in Prometheus text format"
    )
    metrics.add_argument("path", help="obs JSONL file (from --obs-out)")

    top = actions.add_parser(
        "top", help="live terminal dashboard over a cluster /stats endpoint"
    )
    top.add_argument(
        "url",
        help="cluster base URL (e.g. http://127.0.0.1:8787); /stats is appended",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between polls (default: 1.0)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="frames to render before exiting; 0 = until interrupted",
    )

    bench = actions.add_parser(
        "bench", help="benchmark-gate trajectory + regression check"
    )
    bench.add_argument(
        "path", help="BENCH_history.jsonl file (see REPRO_BENCH_HISTORY)"
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="fractional worsening vs trailing median to flag (default: 0.10)",
    )
    bench.add_argument(
        "--window",
        type=int,
        default=5,
        help="trailing runs the median baseline covers (default: 5)",
    )
    bench.add_argument(
        "--gate", default=None, help="restrict the report to one gate"
    )


def add_obs_out_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--obs-out PATH`` flag to a command parser."""
    parser.add_argument(
        "--obs-out",
        default=None,
        metavar="PATH",
        help=(
            "enable tracing for this command and write spans + metrics "
            "as JSON lines to PATH (see docs/OBSERVABILITY.md)"
        ),
    )


def run_obs(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro obs`` invocation; returns the exit code."""
    if args.obs_command == "schema":
        print(json.dumps(SPAN_SCHEMA, indent=2, sort_keys=True))
        return 0

    if args.obs_command == "top":
        return _run_top(args)

    if args.obs_command == "bench":
        return _run_bench(args)

    if args.obs_command == "report":
        records: List[Dict[str, Any]] = []
        try:
            for path in args.paths:
                records.extend(read_jsonl(path))
        except (OSError, ObservabilityError) as exc:
            print(f"error: {exc}")
            return 2
        print(render_report(records, top=args.top), end="")
        return 0

    try:
        records = read_jsonl(args.path)
    except (OSError, ObservabilityError) as exc:
        print(f"error: {exc}")
        return 2

    if args.obs_command == "metrics":
        print(_metrics_from_records(records), end="")
        return 0

    # validate
    n_spans, problems = validate_records(records)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} schema problem(s) in {args.path}")
        return 1
    if n_spans < args.min_spans:
        print(
            f"error: {args.path} holds {n_spans} span record(s), "
            f"expected >= {args.min_spans}"
        )
        return 1
    print(f"{n_spans} span record(s) valid against the span schema")
    return 0


def _http_stats_poll(url: str, timeout: float = 5.0) -> Callable[[], Dict[str, Any]]:
    """A poll callable GETting ``<url>/stats`` as JSON."""
    endpoint = url.rstrip("/") + "/stats"

    def poll() -> Dict[str, Any]:
        with urllib.request.urlopen(endpoint, timeout=timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
        if not isinstance(payload, dict):
            raise ObservabilityError(f"{endpoint} did not return a JSON object")
        return payload

    return poll


def _run_top(args: argparse.Namespace) -> int:
    """``repro obs top URL`` — poll /stats and render the dashboard."""
    try:
        top = ClusterTop(
            poll=_http_stats_poll(args.url),
            out=sys.stdout,
            interval_s=args.interval,
        )
    except ObservabilityError as exc:
        print(f"error: {exc}")
        return 2
    try:
        successes = top.run(iterations=args.iterations)
    except KeyboardInterrupt:
        return 0
    except urllib.error.URLError as exc:
        print(f"error: {exc}")
        return 2
    return 0 if successes else 2


def _run_bench(args: argparse.Namespace) -> int:
    """``repro obs bench PATH`` — trajectory report, exit 1 on regression."""
    try:
        history = load_history(args.path)
    except (OSError, ObservabilityError) as exc:
        print(f"error: {exc}")
        return 2
    try:
        report, regressions = render_trajectory(
            history,
            tolerance=args.tolerance,
            window=args.window,
            gate=args.gate,
        )
    except ObservabilityError as exc:
        print(f"error: {exc}")
        return 2
    print(report, end="")
    return 1 if regressions else 0


def _metrics_from_records(records: list) -> str:
    """Re-render dumped metric records as Prometheus text.

    Rebuilds a throwaway registry from the dump so the exposition goes
    through the one true formatter (:func:`prometheus_text`).
    """
    from .metrics import MetricsRegistry

    registry = MetricsRegistry()
    for record in records:
        if record.get("kind") != "metric":
            continue
        name = record.get("name", "")
        metric_kind = record.get("metric_kind")
        if metric_kind == "counter":
            registry.counter(name).inc(float(record.get("value", 0.0)))
        elif metric_kind == "gauge":
            registry.gauge(name).set(float(record.get("value", 0.0)))
        elif metric_kind == "histogram":
            histogram = registry.histogram(name)
            # Dumps carry aggregates, not raw samples; restore the exact
            # count/sum so _count/_sum lines round-trip.
            histogram.count = int(record.get("count", 0))
            histogram.total = float(record.get("total", 0.0))
    return prometheus_text(registry)


@contextlib.contextmanager
def obs_session(
    path: Optional[str],
    extra_records: Optional[Callable[[], Iterable[Dict[str, Any]]]] = None,
) -> Iterator[None]:
    """Enable tracing for one CLI command and dump on exit.

    A ``None`` path is a no-op (the command runs untraced), so call
    sites can wrap unconditionally::

        with obs_session(args.obs_out):
            run_command(args)

    Args:
        path: the JSONL dump target (``--obs-out``), or ``None``.
        extra_records: called at dump time for additional records to
            merge into the file — the cluster CLI hands over shard-side
            span/metric records scraped over the pipes, producing one
            merged cross-process dump.
    """
    if path is None:
        yield
        return
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = True
    try:
        yield
    finally:
        tracer.enabled = was_enabled
        merged = list(extra_records()) if extra_records is not None else None
        n_records = write_jsonl(
            Path(path),
            tracer=tracer,
            registry=get_registry(),
            extra_records=merged,
        )
        print(f"wrote {n_records} obs record(s) to {path}")
