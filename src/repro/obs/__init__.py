"""``repro.obs`` — unified tracing, metrics and profiling.

One dependency-free observability layer across the whole pipeline:

* :mod:`repro.obs.trace` — span tracer with monotonic timing, nested
  parent/child ids and per-span attributes (worker archetype, candidate
  count ``K``, chosen interval ``k*``, cache-hit flag, bound slack...).
* :mod:`repro.obs.metrics` — counters / gauges / bounded histograms on
  a shared registry, summarized through the same
  :func:`repro.metrics.percentiles.summarize` the experiments use.
* :mod:`repro.obs.export` — JSON-lines dumps, Prometheus text format
  and the ``repro obs report`` tree view.
* :mod:`repro.obs.profile` — opt-in per-span wall/CPU sampling gated by
  ``REPRO_OBS=1``, near-zero overhead when disabled.
* :mod:`repro.obs.aggregate` — cluster-wide metrics federation: shard
  exports merged into one registry, live ``/metrics`` exposition.
* :mod:`repro.obs.bench_history` — benchmark-gate trajectory records
  (``BENCH_history.jsonl``) with regression detection.
* :mod:`repro.obs.dashboard` — the ``repro obs top`` terminal view.

Everything is **off by default**; turn it on with :func:`enable`, the
``--obs-out`` CLI flags, or ``REPRO_OBS=1``.  Span taxonomy and metric
names are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Optional

from .aggregate import (
    ClusterScrape,
    ScrapeLoop,
    ShardExport,
    federate,
    local_export,
    metric_samples,
    validate_prometheus_text,
)
from .bench_history import (
    BenchRecord,
    Regression,
    append_history,
    detect_regressions,
    load_history,
    render_trajectory,
)
from .dashboard import ClusterTop, TopFrame, render_frame, snapshot_frame
from .export import (
    SPAN_SCHEMA,
    prometheus_text,
    read_jsonl,
    render_report,
    validate_records,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_histograms,
    set_registry,
)
from .profile import SpanProfile, hottest, profile_spans, profiling_enabled
from .trace import (
    ENV_VAR,
    NULL_SPAN,
    TRACEPARENT_HEADER,
    NullSpan,
    Span,
    SpanContext,
    Tracer,
    env_enabled,
    format_traceparent,
    get_tracer,
    parse_traceparent,
    set_tracer,
)

__all__ = [
    "ENV_VAR",
    "TRACEPARENT_HEADER",
    "Span",
    "SpanContext",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "env_enabled",
    "format_traceparent",
    "parse_traceparent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_histograms",
    "get_registry",
    "set_registry",
    "SPAN_SCHEMA",
    "write_jsonl",
    "read_jsonl",
    "validate_records",
    "prometheus_text",
    "render_report",
    "SpanProfile",
    "profile_spans",
    "profiling_enabled",
    "hottest",
    "ClusterScrape",
    "ScrapeLoop",
    "ShardExport",
    "federate",
    "local_export",
    "metric_samples",
    "validate_prometheus_text",
    "BenchRecord",
    "Regression",
    "append_history",
    "detect_regressions",
    "load_history",
    "render_trajectory",
    "ClusterTop",
    "TopFrame",
    "render_frame",
    "snapshot_frame",
    "enable",
    "disable",
]


def enable(cpu: Optional[bool] = None) -> Tracer:
    """Switch the global tracer on (idempotent); returns it.

    Args:
        cpu: additionally sample per-span CPU time; ``None`` keeps the
            tracer's current setting (the ``REPRO_OBS`` default).
    """
    tracer = get_tracer()
    tracer.enabled = True
    if cpu is not None:
        tracer.profile_cpu = cpu
    return tracer


def disable() -> Tracer:
    """Switch the global tracer off (spans already recorded are kept)."""
    tracer = get_tracer()
    tracer.enabled = False
    return tracer
