"""Span-based tracer for the contract-design pipeline.

A *span* is one timed unit of work — a clustering pass, one decomposed
subproblem, one candidate-contract construction, one served batch —
with a monotonic start/end, a parent link and a small bag of
attributes (worker archetype, candidate count ``K``, chosen interval
``k*``, cache-hit flag, Lemma 4.2/4.3 bound slack...).  Spans nest via
a :mod:`contextvars` variable, so parentage is correct across threads
and asyncio tasks alike.

The tracer is **off by default** and the disabled path is engineered to
be branch-cheap: ``Tracer.span`` returns a shared no-op context manager
whose ``__enter__`` hands back a singleton :data:`NULL_SPAN` that
swallows attribute writes.  Hot call sites additionally guard on
``tracer.enabled`` so they skip attribute computation entirely (the
``benchmarks/test_bench_obs.py`` gate holds the disabled overhead under
3% of the design work it wraps).

Enable explicitly (:func:`repro.obs.enable`, or ``--obs-out`` on the
CLI) or ambiently via ``REPRO_OBS=1``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from contextvars import ContextVar

from ..errors import ObservabilityError

__all__ = [
    "ENV_VAR",
    "TRACEPARENT_HEADER",
    "Span",
    "SpanContext",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "env_enabled",
    "format_traceparent",
    "parse_traceparent",
]

#: Environment variable that switches the observability layer on
#: ambiently (tracing plus the :mod:`repro.obs.profile` CPU sampling).
ENV_VAR = "REPRO_OBS"
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def env_enabled() -> bool:
    """Whether ``REPRO_OBS`` requests the observability layer."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


#: HTTP header (and pipe-envelope key) the trace context travels in.
TRACEPARENT_HEADER = "traceparent"

#: W3C traceparent version this layer emits.
_TRACEPARENT_VERSION = "00"


@dataclass(frozen=True)
class SpanContext:
    """The cross-process identity of one span.

    A W3C-traceparent-style context: every span belongs to a *trace*
    (one end-to-end request, shared across the HTTP front end, the
    router and the shard processes) and carries its own ``span_id`` so
    a child opened in another process can point back at it.

    Attributes:
        trace_id: 32-hex-char trace identifier shared by every span of
            one request, across process boundaries.
        span_id: the span's own identifier (process-local format).
        flags: W3C trace flags; bit 0 = sampled (this layer always
            propagates ``0x01`` — an unsampled context is not sent).
    """

    trace_id: str
    span_id: str
    flags: int = 1


def format_traceparent(context: SpanContext) -> str:
    """Encode a context in the W3C-traceparent wire format.

    ``00-<trace_id>-<span_id>-<flags>`` — the version, a 32-hex trace
    id, this layer's span id, and two hex flag digits.
    """
    return (
        f"{_TRACEPARENT_VERSION}-{context.trace_id}-"
        f"{context.span_id}-{context.flags:02x}"
    )


def parse_traceparent(value: Optional[str]) -> Optional[SpanContext]:
    """Decode a traceparent header; ``None`` on anything malformed.

    Tolerant by design (a bad header must never fail a request): the
    version must be two hex digits, the trace id 32 hex chars, the
    flags two hex digits.  Span ids may contain ``-`` (this tracer's
    ids do), so the span-id field is everything between the trace id
    and the trailing flags.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id = parts[0], parts[1]
    flags_text = parts[-1]
    span_id = "-".join(parts[2:-1])
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id) or set(trace_id) == {"0"}:
        return None
    if not span_id:
        return None
    if len(flags_text) != 2 or not _is_hex(flags_text):
        return None
    return SpanContext(
        trace_id=trace_id, span_id=span_id, flags=int(flags_text, 16)
    )


def _is_hex(text: str) -> bool:
    try:
        int(text, 16)
    except ValueError:
        return False
    return True


class Span:
    """One recorded unit of work.

    Attributes:
        name: dotted span name from the taxonomy in
            ``docs/OBSERVABILITY.md`` (e.g. ``"core.design"``).
        span_id: unique (per tracer) hex identifier.
        trace_id: 32-hex trace identifier shared by every span of one
            request, including spans recorded in other processes.
        parent_id: the enclosing span's id, or ``None`` for a root.
            A parent may live in another process (trace propagation);
            exporters render such spans under their remote parent once
            the per-process dumps are merged.
        start_s: monotonic-clock start time in seconds.
        end_s: monotonic-clock end time (``None`` while open).
        cpu_start_s / cpu_end_s: process CPU clock samples, present only
            when profiling is active (:mod:`repro.obs.profile`).
        attributes: the span's key/value annotations.
        error: the exception type name when the spanned work raised.
    """

    __slots__ = (
        "name",
        "span_id",
        "trace_id",
        "parent_id",
        "start_s",
        "end_s",
        "cpu_start_s",
        "cpu_end_s",
        "attributes",
        "error",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        start_s: float,
        attributes: Optional[Dict[str, Any]] = None,
        trace_id: str = "",
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.cpu_start_s: Optional[float] = None
        self.cpu_end_s: Optional[float] = None
        self.attributes: Dict[str, Any] = attributes if attributes else {}
        self.error: Optional[str] = None

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def update(self, **attributes: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    @property
    def duration_ms(self) -> Optional[float]:
        """Wall-clock duration in milliseconds (``None`` while open)."""
        if self.end_s is None:
            return None
        return (self.end_s - self.start_s) * 1e3

    @property
    def cpu_ms(self) -> Optional[float]:
        """CPU time in milliseconds when profiling sampled this span."""
        if self.cpu_start_s is None or self.cpu_end_s is None:
            return None
        return (self.cpu_end_s - self.cpu_start_s) * 1e3

    @property
    def context(self) -> SpanContext:
        """This span's propagatable :class:`SpanContext`."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_record(self) -> Dict[str, Any]:
        """The span as a JSON-serializable export record."""
        record: Dict[str, Any] = {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
        }
        if self.cpu_ms is not None:
            record["cpu_ms"] = self.cpu_ms
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span(name={self.name!r}, id={self.span_id!r}, "
            f"parent={self.parent_id!r}, duration_ms={self.duration_ms!r})"
        )


class NullSpan:
    """The span handed out by a disabled tracer: swallows everything."""

    __slots__ = ()

    name = "<null>"
    span_id = ""
    trace_id = ""
    parent_id = None
    duration_ms = None
    cpu_ms = None
    error = None

    #: Shared empty attribute view; never written to (``set`` ignores).
    attributes: Dict[str, Any] = {}

    def set(self, key: str, value: Any) -> None:
        """No-op attribute write."""

    def update(self, **attributes: Any) -> None:
        """No-op attribute write."""


#: Singleton no-op span used on every disabled code path.
NULL_SPAN = NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager (the disabled ``span()`` result)."""

    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class _RemoteSpan:
    """A never-recorded stand-in for a span open in another process.

    Installed by :meth:`Tracer.attach` so that the next span opened in
    this thread/task parents under the remote span's ids — the local
    side of cross-process trace propagation.  It is never finished and
    never exported; only its identity matters.
    """

    __slots__ = ("span_id", "trace_id")

    name = "<remote>"

    def __init__(self, context: SpanContext) -> None:
        self.span_id = context.span_id
        self.trace_id = context.trace_id


class _AttachContext:
    """Context manager installing a remote parent (``None``: no-op)."""

    __slots__ = ("_remote", "_token")

    def __init__(self, remote: Optional["_RemoteSpan"]) -> None:
        self._remote = remote
        self._token: Any = None

    def __enter__(self) -> None:
        if self._remote is not None:
            self._token = _current.set(self._remote)

    def __exit__(self, *exc_info: object) -> bool:
        if self._token is not None:
            _current.reset(self._token)
        return False


#: Current span of this thread / asyncio task (parent for new spans).
#: Holds a live local :class:`Span` or a :class:`_RemoteSpan` shim.
_current: "ContextVar[Optional[Any]]" = ContextVar("repro_obs_span", default=None)


class _SpanContext:
    """Context manager that opens a live span and closes it on exit."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token: Any = None

    def __enter__(self) -> Span:
        self._token = _current.set(self._span)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _current.reset(self._token)
        self._tracer._finish(self._span, exc_type)
        return False


class Tracer:
    """Collects spans with monotonic timing and parent/child links.

    Args:
        enabled: start collecting immediately (default: the ``REPRO_OBS``
            environment toggle).
        clock: monotonic time source in seconds (injectable for tests
            and for the golden-file exporter test).
        cpu_clock: process CPU time source sampled when profiling is on.
        id_prefix: prefix of generated span ids; defaults to a short
            per-tracer random tag so ids from different runs never
            collide in merged dumps.  Pass ``""`` for deterministic ids.
        max_spans: bound on retained finished spans; the oldest are
            dropped first so long-running servers cannot grow without
            bound (a drop is counted, never silent).
    """

    def __init__(
        self,
        enabled: Optional[bool] = None,
        clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
        id_prefix: Optional[str] = None,
        max_spans: int = 100_000,
    ) -> None:
        if max_spans < 1:
            raise ObservabilityError(f"max_spans must be >= 1, got {max_spans!r}")
        self.enabled = env_enabled() if enabled is None else enabled
        self.clock = clock
        self.cpu_clock = cpu_clock
        self.profile_cpu = env_enabled()
        self.max_spans = max_spans
        self.dropped = 0
        if id_prefix is None:
            id_prefix = os.urandom(3).hex() + "-"
        self._id_prefix = id_prefix
        self._id_counter = 0
        self._lock = threading.Lock()
        self._finished: List[Span] = []

    # -- span lifecycle ----------------------------------------------

    def span(self, name: str, **attributes: Any) -> Any:
        """Open a span as a context manager.

        Disabled, returns a shared no-op context manager; enabled, the
        ``with`` body receives the live :class:`Span` for further
        attribute writes::

            with tracer.span("core.design", archetype="honest") as sp:
                ...
                sp.set("k_opt", result.k_opt)
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, self.start_span(name, **attributes))

    def start_span(self, name: str, **attributes: Any) -> Span:
        """Open a span explicitly (callers must pass it to ``finish``).

        Prefer :meth:`span`; this exists for call sites whose open/close
        points cannot share one lexical scope.
        """
        with self._lock:
            self._id_counter += 1
            counter = self._id_counter
            span_id = f"{self._id_prefix}{counter:012x}"
        parent = _current.get()
        if parent is not None:
            parent_id: Optional[str] = parent.span_id
            trace_id = parent.trace_id
        else:
            parent_id = None
            trace_id = self._new_trace_id(counter)
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start_s=self.clock(),
            attributes=attributes if attributes else None,
            trace_id=trace_id,
        )
        if self.profile_cpu:
            span.cpu_start_s = self.cpu_clock()
        return span

    def _new_trace_id(self, counter: int) -> str:
        """A fresh 32-hex trace id for a root span.

        Random by default so traces from different runs never collide
        in merged dumps; deterministic (the span counter, zero-padded)
        when the tracer was built with ``id_prefix=""`` so golden-file
        tests stay reproducible.
        """
        if self._id_prefix:
            return os.urandom(16).hex()
        return f"{counter:032x}"

    def finish(self, span: Span) -> None:
        """Close an explicitly started span and record it."""
        self._finish(span, None)

    # -- cross-process propagation ------------------------------------

    def attach(self, context: Optional[SpanContext]) -> _AttachContext:
        """Adopt a remote parent for spans opened inside the ``with``.

        The propagation receive side: a process handed a traceparent
        (HTTP header, shard pipe envelope) attaches it so its next span
        parents under the remote caller's span and shares its trace id::

            with tracer.attach(parse_traceparent(header)):
                with tracer.span("serving.solve_batch") as sp:
                    ...  # sp.trace_id == remote trace, parent == caller

        ``attach(None)`` is a no-op, so call sites can attach
        unconditionally.  Attaching never records anything by itself.
        """
        if context is None:
            return _AttachContext(None)
        return _AttachContext(_RemoteSpan(context))

    def _finish(self, span: Span, exc_type: Any) -> None:
        if self.profile_cpu:
            span.cpu_end_s = self.cpu_clock()
        span.end_s = self.clock()
        if exc_type is not None:
            span.error = getattr(exc_type, "__name__", str(exc_type))
        with self._lock:
            self._finished.append(span)
            if len(self._finished) > self.max_spans:
                overflow = len(self._finished) - self.max_spans
                del self._finished[:overflow]
                self.dropped += overflow

    # -- wrapping helpers --------------------------------------------

    def wrap(self, name: str, **attributes: Any) -> Callable[..., Any]:
        """Decorator form: trace every call of the wrapped function."""

        def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
            import functools

            @functools.wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return func(*args, **kwargs)
                with self.span(name, **attributes):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    # -- introspection ------------------------------------------------

    @staticmethod
    def current_span() -> Optional[Span]:
        """The innermost open span of this thread/task, if any."""
        current = _current.get()
        if isinstance(current, _RemoteSpan):
            return None
        return current

    @staticmethod
    def current_context() -> Optional[SpanContext]:
        """The propagatable context of the innermost open span.

        Unlike :meth:`current_span` this also answers under a remote
        attachment (:meth:`attach`), so a relay hop that opens no span
        of its own still forwards its caller's context.
        """
        current = _current.get()
        if current is None:
            return None
        return SpanContext(
            trace_id=current.trace_id, span_id=current.span_id
        )

    def spans(self) -> Tuple[Span, ...]:
        """All finished spans, in completion order."""
        with self._lock:
            return tuple(self._finished)

    def records(self) -> List[Dict[str, Any]]:
        """Finished spans as JSON-serializable export records."""
        return [span.to_record() for span in self.spans()]

    def iter_named(self, name: str) -> Iterator[Span]:
        """Finished spans with the given name."""
        for span in self.spans():
            if span.name == name:
                yield span

    def clear(self) -> None:
        """Drop every finished span (the drop counter is preserved)."""
        with self._lock:
            self._finished.clear()


# -- global tracer ----------------------------------------------------

_global_tracer = Tracer()
_global_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-global tracer every instrumented module consults."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the global tracer (tests, CLI sessions); returns the old one."""
    global _global_tracer
    with _global_lock:
        previous = _global_tracer
        _global_tracer = tracer
    return previous
