"""Exporters: JSON-lines dumps, Prometheus text format, tree reports.

Three consumers, three formats:

* **JSON lines** — one record per line, ``kind`` discriminated
  (``span`` / ``metric``); the ``--obs-out`` flag writes this, replay
  tooling and the CI smoke job read it back.
* **Prometheus text exposition** — counters and gauges verbatim,
  histograms as summaries with ``quantile`` labels derived from the
  same :func:`repro.metrics.percentiles.summarize` estimator used
  everywhere else.
* **Human report** — the ``repro obs report`` tree view: the span
  forest with durations and attributes, followed by the hottest span
  names.

The span-record schema ships as a plain JSON-Schema dict
(:data:`SPAN_SCHEMA`) together with a dependency-free interpreter
(:func:`validate_records`) so the CI gate needs nothing beyond the
library itself.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import ObservabilityError
from ..metrics.percentiles import summarize
from .metrics import MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "SPAN_SCHEMA",
    "span_records",
    "metric_records",
    "write_jsonl",
    "read_jsonl",
    "validate_records",
    "prometheus_text",
    "render_report",
]

#: JSON Schema (draft-07 subset) every ``kind == "span"`` record obeys.
SPAN_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.obs span record",
    "type": "object",
    "required": ["kind", "name", "span_id", "start_s", "end_s", "duration_ms"],
    "properties": {
        "kind": {"type": "string", "enum": ["span"]},
        "name": {"type": "string", "minLength": 1},
        "span_id": {"type": "string", "minLength": 1},
        "trace_id": {"type": "string"},
        "parent_id": {"type": ["string", "null"]},
        "start_s": {"type": "number"},
        "end_s": {"type": ["number", "null"]},
        "duration_ms": {"type": ["number", "null"], "minimum": 0},
        "cpu_ms": {"type": "number", "minimum": 0},
        "error": {"type": "string"},
        "attributes": {"type": "object"},
    },
}

_METRIC_REQUIRED = ("kind", "name", "metric_kind")


def span_records(source: Union[Tracer, Sequence[Span]]) -> List[Dict[str, Any]]:
    """Span export records from a tracer or a span sequence."""
    spans = source.spans() if isinstance(source, Tracer) else source
    return [span.to_record() for span in spans]


def metric_records(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """Metric export records (``kind == "metric"``) from a registry."""
    records: List[Dict[str, Any]] = []
    for metric in registry.metrics():
        record: Dict[str, Any] = {
            "kind": "metric",
            "name": metric.name,
            "metric_kind": metric.kind,
        }
        if metric.kind == "histogram":
            record.update(metric.snapshot())
        else:
            record["value"] = metric.value
        records.append(record)
    return records


def write_jsonl(
    path: Union[str, Path],
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    extra_records: Optional[Iterable[Dict[str, Any]]] = None,
) -> int:
    """Write spans (and optionally metrics) as JSON lines.

    Returns the number of records written.
    """
    records: List[Dict[str, Any]] = []
    if tracer is not None:
        records.extend(span_records(tracer))
    if registry is not None:
        records.extend(metric_records(registry))
    if extra_records is not None:
        records.extend(extra_records)
    target = Path(path)
    with target.open("w", encoding="ascii") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read an obs JSONL dump back into records.

    Raises:
        ObservabilityError: on unparseable lines.
    """
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path}:{number}: invalid JSON record: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ObservabilityError(
                f"{path}:{number}: expected a JSON object, got {type(record).__name__}"
            )
        records.append(record)
    return records


# -- schema validation (dependency-free JSON-Schema subset) -----------


def _check_type(value: Any, expected: Union[str, List[str]]) -> bool:
    kinds = [expected] if isinstance(expected, str) else list(expected)
    for kind in kinds:
        if kind == "null" and value is None:
            return True
        if kind == "string" and isinstance(value, str):
            return True
        if kind == "number" and isinstance(value, (int, float)) and not isinstance(value, bool):
            return True
        if kind == "object" and isinstance(value, dict):
            return True
    return False


def _validate_span(record: Dict[str, Any], where: str) -> List[str]:
    problems: List[str] = []
    for key in SPAN_SCHEMA["required"]:
        if key not in record:
            problems.append(f"{where}: missing required field {key!r}")
    for key, rule in SPAN_SCHEMA["properties"].items():
        if key not in record:
            continue
        value = record[key]
        if not _check_type(value, rule["type"]):
            problems.append(
                f"{where}: field {key!r} has type {type(value).__name__}, "
                f"schema requires {rule['type']}"
            )
            continue
        if "enum" in rule and value not in rule["enum"]:
            problems.append(f"{where}: field {key!r} not in {rule['enum']}")
        if "minLength" in rule and isinstance(value, str) and len(value) < rule["minLength"]:
            problems.append(f"{where}: field {key!r} shorter than {rule['minLength']}")
        if "minimum" in rule and isinstance(value, (int, float)) and value < rule["minimum"]:
            problems.append(f"{where}: field {key!r} below minimum {rule['minimum']}")
    return problems


def validate_records(records: Sequence[Dict[str, Any]]) -> Tuple[int, List[str]]:
    """Validate span records against :data:`SPAN_SCHEMA`.

    Metric records are counted but only shallowly checked (required
    discriminator fields); unknown kinds are rejected.

    Returns:
        ``(n_spans_validated, problems)`` — an empty problem list means
        the dump is schema-clean.
    """
    problems: List[str] = []
    n_spans = 0
    for index, record in enumerate(records):
        where = f"record {index}"
        kind = record.get("kind")
        if kind == "span":
            n_spans += 1
            problems.extend(_validate_span(record, where))
        elif kind == "metric":
            for key in _METRIC_REQUIRED:
                if key not in record:
                    problems.append(f"{where}: missing required field {key!r}")
        else:
            problems.append(f"{where}: unknown record kind {kind!r}")
    return n_spans, problems


# -- Prometheus text format -------------------------------------------


def _prom_name(name: str) -> str:
    sanitized = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    if not sanitized or sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return f"repro_{sanitized}" if not sanitized.startswith("repro_") else sanitized


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges map directly; histograms are exposed as
    summaries (``_count`` / ``_sum`` plus ``quantile`` samples for the
    5th, 50th and 95th percentiles of the retained reservoir).
    """
    lines: List[str] = []
    for metric in registry.metrics():
        name = _prom_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        if metric.kind in ("counter", "gauge"):
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.append(f"{name} {_prom_value(metric.value)}")
            continue
        lines.append(f"# TYPE {name} summary")
        samples = metric.samples
        if samples:
            summary = summarize(samples)
            median = float(sorted(samples)[len(samples) // 2])
            lines.append(f'{name}{{quantile="0.05"}} {_prom_value(summary.p5)}')
            lines.append(f'{name}{{quantile="0.5"}} {_prom_value(median)}')
            lines.append(f'{name}{{quantile="0.95"}} {_prom_value(summary.p95)}')
        lines.append(f"{name}_count {_prom_value(float(metric.count))}")
        lines.append(f"{name}_sum {_prom_value(metric.total)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_value(value: float) -> str:
    return repr(float(value))


# -- human report ------------------------------------------------------


def render_report(
    records: Sequence[Dict[str, Any]],
    max_depth: int = 12,
    max_children: int = 40,
    top: int = 10,
) -> str:
    """Render span records as a tree plus a hottest-spans table.

    Args:
        records: JSONL records (span records are used, metric records
            and unknown kinds are skipped).
        max_depth: deepest tree level rendered.
        max_children: most children rendered under one parent; the rest
            collapse into a ``... (+n more)`` line, never silently.
        top: rows in the hottest-spans table.
    """
    spans = [r for r in records if r.get("kind") == "span"]
    if not spans:
        return "no spans recorded\n"
    by_id: Dict[str, Dict[str, Any]] = {}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for record in spans:
        by_id[record["span_id"]] = record
    # Spans whose parent never reached the dump (bounded-buffer drop,
    # or a cross-process parent whose dump was not merged in) gather
    # under a synthetic <detached> root rather than being lost or
    # silently promoted to look like real roots.
    detached: List[Dict[str, Any]] = []
    for record in spans:
        parent = record.get("parent_id")
        if parent is None:
            children.setdefault(None, []).append(record)
        elif parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            detached.append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r.get("start_s") or 0.0, r["span_id"]))
    detached.sort(key=lambda r: (r.get("start_s") or 0.0, r["span_id"]))

    lines: List[str] = ["-- span tree --"]

    def emit(record: Dict[str, Any], depth: int) -> None:
        if depth > max_depth:
            return
        indent = "  " * depth
        duration = record.get("duration_ms")
        shown = f"{duration:.3f}ms" if isinstance(duration, (int, float)) else "open"
        attrs = record.get("attributes") or {}
        attr_text = ""
        if attrs:
            parts = [f"{k}={_fmt_attr(v)}" for k, v in sorted(attrs.items())]
            attr_text = "  [" + ", ".join(parts) + "]"
        error = record.get("error")
        error_text = f"  !{error}" if error else ""
        lines.append(f"{indent}{record['name']}  {shown}{attr_text}{error_text}")
        kids = children.get(record["span_id"], [])
        for child in kids[:max_children]:
            emit(child, depth + 1)
        if len(kids) > max_children:
            lines.append(f"{indent}  ... (+{len(kids) - max_children} more)")

    roots = children.get(None, [])
    for root in roots[:max_children]:
        emit(root, 0)
    if len(roots) > max_children:
        lines.append(f"... (+{len(roots) - max_children} more roots)")
    if detached:
        lines.append(
            f"<detached>  ({len(detached)} span(s) whose parent is not "
            "in this dump)"
        )
        for orphan in detached[:max_children]:
            emit(orphan, 1)
        if len(detached) > max_children:
            lines.append(
                f"  ... (+{len(detached) - max_children} more)"
            )

    lines.append("")
    lines.append("-- hottest spans --")
    durations: Dict[str, List[float]] = {}
    cpu: Dict[str, float] = {}
    for record in spans:
        duration = record.get("duration_ms")
        if isinstance(duration, (int, float)):
            durations.setdefault(record["name"], []).append(float(duration))
        if isinstance(record.get("cpu_ms"), (int, float)):
            cpu[record["name"]] = cpu.get(record["name"], 0.0) + float(record["cpu_ms"])
    header = f"{'name':<28} {'count':>7} {'total_ms':>10} {'mean_ms':>9} {'p95_ms':>9}"
    lines.append(header)
    ranked = sorted(
        durations.items(), key=lambda item: -sum(item[1])
    )[:top]
    for name, values in ranked:
        summary = summarize(values)
        row = (
            f"{name:<28} {len(values):>7} {sum(values):>10.3f} "
            f"{summary.mean:>9.3f} {summary.p95:>9.3f}"
        )
        if name in cpu:
            row += f"  cpu={cpu[name]:.3f}ms"
        lines.append(row)
    return "\n".join(lines) + "\n"


def _fmt_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
