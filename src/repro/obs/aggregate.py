"""Cluster-wide metrics federation and trace collection.

PR 7 split the serving tier across OS processes, which left each
shard's :class:`~repro.obs.metrics.MetricsRegistry` and tracer as a
per-process island.  This module is the router-side half of the
``obs_export`` pipe op: every shard serializes its instruments
(histograms *with* their retained reservoirs, not just summaries) and
the router federates them into one registry it can render as
Prometheus text or fold into ``/stats``.

Merge semantics are explicit per instrument kind:

* **counter** — always summed across sources.
* **gauge** — summed by default (cache sizes, queue depths add up); a
  source may tag a record with ``"agg": "max"`` or ``"agg": "last"``
  for gauges where a sum is meaningless (e.g. a schema version).
  ``last`` takes the value from the lexicographically last source name
  so the merge stays order-independent.
* **histogram** — :func:`~repro.obs.metrics.merge_histograms` over the
  shipped reservoirs; exact ``count``/``total``/``min``/``max``
  aggregates add exactly.

Nothing here touches wall-clock time or stdout: the scrape loop runs
on a monotonic clock and all rendering returns strings (REPRO009
obs-discipline applies to this module).
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..errors import ObservabilityError
from ..metrics.percentiles import summarize
from .export import _prom_name, _prom_value
from .metrics import Histogram, MetricsRegistry, merge_histograms
from .trace import Tracer

__all__ = [
    "AGG_SUM",
    "AGG_MAX",
    "AGG_LAST",
    "metric_samples",
    "histogram_from_record",
    "ShardExport",
    "local_export",
    "ClusterScrape",
    "federate",
    "validate_prometheus_text",
    "ScrapeLoop",
]

AGG_SUM = "sum"
AGG_MAX = "max"
AGG_LAST = "last"
_AGGREGATIONS = (AGG_SUM, AGG_MAX, AGG_LAST)


def metric_samples(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """Federation records for every instrument in ``registry``.

    Unlike :func:`repro.obs.export.metric_records` (snapshot summaries
    for human dumps), these carry histogram reservoirs verbatim so the
    receiving side can rebuild the instruments and merge them
    order-independently with :func:`merge_histograms`.
    """
    records: List[Dict[str, Any]] = []
    for metric in registry.metrics():
        record: Dict[str, Any] = {
            "kind": "metric",
            "name": metric.name,
            "metric_kind": metric.kind,
        }
        if metric.kind == "histogram":
            record["count"] = float(metric.count)
            record["total"] = metric.total
            record["max_samples"] = metric.max_samples
            record["samples"] = [float(v) for v in metric.samples]
            if metric.count:
                record["min"] = metric.min
                record["max"] = metric.max
        else:
            record["value"] = metric.value
        records.append(record)
    return records


def histogram_from_record(record: Mapping[str, Any]) -> Histogram:
    """Rebuild a :class:`Histogram` from a :func:`metric_samples` record."""
    name = record.get("name")
    if not isinstance(name, str) or not name:
        raise ObservabilityError(f"histogram record needs a name, got {record!r}")
    histogram = Histogram(name, max_samples=int(record.get("max_samples", 4096)))
    histogram._samples.extend(float(v) for v in record.get("samples", ()))
    histogram.count = int(record.get("count", len(histogram._samples)))
    histogram.total = float(record.get("total", 0.0))
    if histogram.count:
        histogram.min = float(record["min"])
        histogram.max = float(record["max"])
    return histogram


@dataclass
class ShardExport:
    """One source's contribution to a cluster scrape.

    Args:
        source: label for per-source Prometheus samples (a shard id, or
            ``"router"`` for the parent process's own registry).
        pid: OS pid of the source process, when known.
        spans: drained span records (``Span.to_record()`` dicts).
        metrics: :func:`metric_samples` records.
    """

    source: str
    pid: Optional[int] = None
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ShardExport":
        """Build from an ``obs_export`` pipe-op reply dict."""
        source = payload.get("shard_id") or payload.get("source")
        if not isinstance(source, str) or not source:
            raise ObservabilityError(
                f"obs_export payload needs a shard_id/source, got {payload!r}"
            )
        pid = payload.get("pid")
        return cls(
            source=source,
            pid=int(pid) if pid is not None else None,
            spans=list(payload.get("spans", ())),
            metrics=list(payload.get("metrics", ())),
        )


def local_export(
    source: str,
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    pid: Optional[int] = None,
) -> ShardExport:
    """An in-process export (the router contributes its own registry)."""
    spans: List[Dict[str, Any]] = []
    if tracer is not None:
        spans = [span.to_record() for span in tracer.spans()]
    return ShardExport(
        source=source, pid=pid, spans=spans, metrics=metric_samples(registry)
    )


@dataclass
class ClusterScrape:
    """A federated view over one round of shard exports.

    ``merged`` holds the aggregated instruments (counters summed,
    gauges per their ``agg`` tag, histograms reservoir-merged);
    ``per_source`` maps ``metric name -> {source: value}`` for the
    scalar kinds so exporters can emit per-shard labeled samples.
    """

    exports: Tuple[ShardExport, ...]
    merged: MetricsRegistry
    per_source: Dict[str, Dict[str, float]]
    kinds: Dict[str, str]
    #: histogram name -> {source: (count, total)} for labeled _count/_sum.
    hist_sources: Dict[str, Dict[str, Tuple[float, float]]] = field(
        default_factory=dict
    )

    def sources(self) -> Tuple[str, ...]:
        """Source labels, sorted."""
        return tuple(sorted(export.source for export in self.exports))

    def span_records(self) -> List[Dict[str, Any]]:
        """All shipped span records, tagged with their ``source``."""
        records: List[Dict[str, Any]] = []
        for export in self.exports:
            for record in export.spans:
                tagged = dict(record)
                tagged.setdefault("source", export.source)
                records.append(tagged)
        return records

    def value(self, name: str) -> float:
        """The aggregated value of a counter/gauge called ``name``."""
        metric = self.merged.get(name)
        if metric is None or metric.kind == "histogram":
            raise ObservabilityError(
                f"no aggregated scalar metric called {name!r}"
            )
        return float(metric.value)

    def shard_values(self, name: str) -> Dict[str, float]:
        """Per-source values of a scalar metric (empty when unknown)."""
        return dict(self.per_source.get(name, {}))

    def prometheus_text(self) -> str:
        """Prometheus text exposition with per-source labeled samples.

        Scalar kinds render one ``{shard="..."}`` sample per source
        plus the unlabeled aggregate; histograms render as summaries:
        labeled ``_count``/``_sum`` per source plus merged quantiles.
        """
        lines: List[str] = []
        for metric in self.merged.metrics():
            name = _prom_name(metric.name)
            shards = self.per_source.get(metric.name, {})
            if metric.kind in ("counter", "gauge"):
                lines.append(f"# TYPE {name} {metric.kind}")
                for source in sorted(shards):
                    lines.append(
                        f'{name}{{shard="{source}"}} {_prom_value(shards[source])}'
                    )
                lines.append(f"{name} {_prom_value(metric.value)}")
                continue
            lines.append(f"# TYPE {name} summary")
            stats = self.hist_sources.get(metric.name, {})
            for source in sorted(stats):
                count, total = stats[source]
                lines.append(f'{name}_count{{shard="{source}"}} {_prom_value(count)}')
                lines.append(f'{name}_sum{{shard="{source}"}} {_prom_value(total)}')
            samples = metric.samples
            if samples:
                summary = summarize(samples)
                median = float(sorted(samples)[len(samples) // 2])
                lines.append(f'{name}{{quantile="0.05"}} {_prom_value(summary.p5)}')
                lines.append(f'{name}{{quantile="0.5"}} {_prom_value(median)}')
                lines.append(f'{name}{{quantile="0.95"}} {_prom_value(summary.p95)}')
            lines.append(f"{name}_count {_prom_value(float(metric.count))}")
            lines.append(f"{name}_sum {_prom_value(metric.total)}")
        return "\n".join(lines) + ("\n" if lines else "")


def federate(exports: Sequence[ShardExport]) -> ClusterScrape:
    """Merge shard exports into one :class:`ClusterScrape`.

    Sources are processed in sorted-label order so the result is
    independent of scrape arrival order; a metric reported with two
    different kinds by two sources is an error (all shards run the
    same code, so a mismatch means corrupted exports).
    """
    ordered = sorted(exports, key=lambda export: export.source)
    seen = set()
    for export in ordered:
        if export.source in seen:
            raise ObservabilityError(
                f"duplicate scrape source {export.source!r}"
            )
        seen.add(export.source)

    kinds: Dict[str, str] = {}
    aggs: Dict[str, str] = {}
    scalar_by_name: Dict[str, Dict[str, float]] = {}
    hists_by_name: Dict[str, List[Histogram]] = {}
    hist_source_stats: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for export in ordered:
        for record in export.metrics:
            name = record.get("name")
            metric_kind = record.get("metric_kind")
            if not isinstance(name, str) or metric_kind not in (
                "counter",
                "gauge",
                "histogram",
            ):
                raise ObservabilityError(
                    f"malformed metric record from {export.source!r}: {record!r}"
                )
            known = kinds.setdefault(name, metric_kind)
            if known != metric_kind:
                raise ObservabilityError(
                    f"metric {name!r} is a {known} on one source and a "
                    f"{metric_kind} on {export.source!r}"
                )
            if metric_kind == "histogram":
                hists_by_name.setdefault(name, []).append(
                    histogram_from_record(record)
                )
                hist_source_stats.setdefault(name, {})[export.source] = (
                    float(record.get("count", 0.0)),
                    float(record.get("total", 0.0)),
                )
                continue
            agg = record.get("agg", AGG_SUM)
            if agg not in _AGGREGATIONS:
                raise ObservabilityError(
                    f"metric {name!r} has unknown agg {agg!r}"
                )
            previous = aggs.setdefault(name, agg)
            if previous != agg:
                raise ObservabilityError(
                    f"metric {name!r} mixes agg modes {previous!r}/{agg!r}"
                )
            scalar_by_name.setdefault(name, {})[export.source] = float(
                record.get("value", 0.0)
            )

    merged = MetricsRegistry()
    per_source: Dict[str, Dict[str, float]] = {}
    for name, values in scalar_by_name.items():
        per_source[name] = dict(values)
        agg = aggs[name]
        ordered_values = [values[source] for source in sorted(values)]
        if agg == AGG_SUM:
            resolved = float(sum(ordered_values))
        elif agg == AGG_MAX:
            resolved = max(ordered_values)
        else:  # AGG_LAST: lexicographically last source wins.
            resolved = ordered_values[-1]
        if kinds[name] == "counter":
            merged.counter(name).inc(resolved)
        else:
            merged.gauge(name).set(resolved)
    for name, histograms in hists_by_name.items():
        merged.adopt(merge_histograms(histograms, name=name))

    return ClusterScrape(
        exports=tuple(ordered),
        merged=merged,
        per_source=per_source,
        kinds=kinds,
        hist_sources=hist_source_stats,
    )


_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})?\s+[^\s]+$"
)


def validate_prometheus_text(text: str) -> List[str]:
    """Shallow validation of Prometheus text exposition output.

    Checks that every sample line parses (``name{labels} value`` with a
    float value), that every sample family has a preceding ``# TYPE``,
    and that ``# TYPE`` lines name a known kind.  Returns a problem
    list; empty means clean.  Dependency-free on purpose: the CI smoke
    job curls ``/metrics`` and runs this instead of needing a real
    Prometheus binary.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "summary",
                "histogram",
            ):
                problems.append(f"line {number}: malformed TYPE comment: {line!r}")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        if not _PROM_SAMPLE.match(line):
            problems.append(f"line {number}: unparseable sample: {line!r}")
            continue
        name = re.split(r"[{\s]", line, maxsplit=1)[0]
        value = line.rsplit(None, 1)[-1]
        try:
            float(value)
        except ValueError:
            problems.append(f"line {number}: non-numeric value {value!r}")
        family = name
        for suffix in ("_count", "_sum"):
            if family.endswith(suffix) and family[: -len(suffix)] in typed:
                family = family[: -len(suffix)]
                break
        if family not in typed:
            problems.append(
                f"line {number}: sample {name!r} has no preceding # TYPE"
            )
    return problems


T = TypeVar("T")


class ScrapeLoop(Generic[T]):
    """Periodically run a scrape callable on a daemon thread.

    The dashboard (`repro obs top`) and any long-running exporter sit
    on one of these: ``latest()`` returns the most recent
    ``(monotonic_timestamp, result)`` pair and scrape failures are
    counted instead of killing the thread.

    Args:
        scrape: zero-arg callable producing one scrape result.
        interval_s: seconds between scrapes (monotonic clock).
        clock: injectable monotonic clock (tests).
    """

    def __init__(
        self,
        scrape: Callable[[], T],
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ObservabilityError(
                f"scrape interval must be positive, got {interval_s!r}"
            )
        self._scrape = scrape
        self._interval_s = interval_s
        self._clock = clock
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._latest: Optional[Tuple[float, T]] = None
        self._errors = 0
        self._thread: Optional[threading.Thread] = None

    def scrape_once(self) -> Optional[T]:
        """Run one scrape synchronously; ``None`` (and count) on failure."""
        try:
            result = self._scrape()
        except Exception:
            with self._lock:
                self._errors += 1
            return None
        with self._lock:
            self._latest = (self._clock(), result)
        return result

    def start(self) -> "ScrapeLoop[T]":
        """Start the background thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="obs-scrape", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout_s: float = 2.0) -> None:
        """Stop and join the background thread."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout_s)
        self._thread = None

    def latest(self) -> Optional[Tuple[float, T]]:
        """Most recent ``(monotonic_timestamp, result)``, or ``None``."""
        with self._lock:
            return self._latest

    @property
    def errors(self) -> int:
        """Number of scrapes that raised."""
        with self._lock:
            return self._errors

    def _run(self) -> None:
        while not self._stop.is_set():
            self.scrape_once()
            self._stop.wait(self._interval_s)
