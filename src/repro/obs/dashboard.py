"""`repro obs top` — a stdlib-only live terminal view of a serving cluster.

Polls a cluster's ``/stats`` endpoint (the JSON the
:class:`~repro.serving.cluster.http.ClusterHTTPServer` serves) on a
:class:`~repro.obs.aggregate.ScrapeLoop` cadence and renders one
refreshing frame per poll: per-shard qps / p50 / p99 / cache hit-rate
/ restarts, plus the router's failover and fallback counters in the
header.  qps is derived from request-count deltas between consecutive
polls, so it reflects *current* traffic, not the lifetime average.

Everything here is injectable and pure-ish for testability: the poll
callable, the output sink, and the clock are constructor arguments,
and :func:`render_frame` is a pure ``dict -> str`` transform.  No
``print``, no ``time.time`` (REPRO009 applies to this module).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, TextIO, Tuple

from ..errors import ObservabilityError

__all__ = ["ShardRow", "TopFrame", "snapshot_frame", "render_frame", "ClusterTop"]

#: ANSI: clear screen + home the cursor (used only on TTY sinks).
_ANSI_CLEAR = "\x1b[2J\x1b[H"


@dataclass(frozen=True)
class ShardRow:
    """One shard's line in the dashboard.

    Attributes:
        shard_id: the shard's ring identity.
        pid: shard process id (``None`` when the snapshot lacks it).
        requests: lifetime requests served.
        qps: requests/second over the last poll interval.
        hit_rate: cache hit rate (fraction).
        p50_ms / p99_ms: request-latency quantiles in milliseconds
            (``None`` before any latency was recorded).
        cache_entries: designs resident in the shard's cache.
        restarts: supervisor revivals of this shard.
    """

    shard_id: str
    pid: Optional[int]
    requests: float
    qps: float
    hit_rate: float
    p50_ms: Optional[float]
    p99_ms: Optional[float]
    cache_entries: float
    restarts: float


@dataclass(frozen=True)
class TopFrame:
    """Everything one dashboard refresh displays."""

    rows: Tuple[ShardRow, ...]
    total_requests: float
    total_qps: float
    total_hit_rate: float
    routed: float
    failovers: float
    local_fallbacks: float
    restarts: float
    elapsed_s: float
    poll_errors: int = 0


def _router_counter(stats: Mapping[str, Any], name: str) -> float:
    entry = stats.get("router", {}).get(name, {})
    if isinstance(entry, Mapping):
        return float(entry.get("value", 0.0))
    return float(entry or 0.0)


def snapshot_frame(
    current: Mapping[str, Any],
    previous: Optional[Mapping[str, Any]] = None,
    elapsed_s: float = 0.0,
    poll_errors: int = 0,
) -> TopFrame:
    """Build one frame from a ``/stats`` payload (and the previous one).

    ``previous``/``elapsed_s`` drive the qps deltas; with no previous
    poll every qps is 0 (a dashboard that guessed would be lying).
    """
    shards = current.get("shards", {})
    prev_shards = (previous or {}).get("shards", {})
    rows: List[ShardRow] = []
    total_requests = 0.0
    total_qps = 0.0
    for shard_id in sorted(shards):
        snapshot = shards[shard_id]
        requests = float(snapshot.get("requests", 0.0))
        before = float(prev_shards.get(shard_id, {}).get("requests", requests))
        qps = (requests - before) / elapsed_s if elapsed_s > 0.0 else 0.0
        qps = max(qps, 0.0)  # a restarted shard's counters reset
        pid_value = snapshot.get("pid")
        p50 = snapshot.get("request_latency_p50_s")
        p99 = snapshot.get("request_latency_p99_s")
        rows.append(
            ShardRow(
                shard_id=shard_id,
                pid=int(pid_value) if pid_value is not None else None,
                requests=requests,
                qps=qps,
                hit_rate=float(snapshot.get("cache_hit_rate", 0.0)),
                p50_ms=float(p50) * 1e3 if p50 is not None else None,
                p99_ms=float(p99) * 1e3 if p99 is not None else None,
                cache_entries=float(snapshot.get("cache_entries", 0.0)),
                restarts=float(snapshot.get("restarts", 0.0)),
            )
        )
        total_requests += requests
        total_qps += qps
    totals = current.get("totals", {})
    return TopFrame(
        rows=tuple(rows),
        total_requests=total_requests,
        total_qps=total_qps,
        total_hit_rate=float(totals.get("cache_hit_rate", 0.0)),
        routed=_router_counter(current, "cluster.routed"),
        failovers=_router_counter(current, "cluster.failovers"),
        local_fallbacks=_router_counter(current, "cluster.local_fallbacks"),
        restarts=_router_counter(current, "cluster.restarts"),
        elapsed_s=elapsed_s,
        poll_errors=poll_errors,
    )


def render_frame(frame: TopFrame) -> str:
    """One dashboard frame as plain text (no ANSI)."""
    lines = [
        "repro cluster top"
        f"  |  shards {len(frame.rows)}  qps {frame.total_qps:,.1f}"
        f"  requests {frame.total_requests:,.0f}"
        f"  hit-rate {frame.total_hit_rate:.1%}",
        f"routed {frame.routed:,.0f}  failovers {frame.failovers:,.0f}"
        f"  local-fallbacks {frame.local_fallbacks:,.0f}"
        f"  restarts {frame.restarts:,.0f}"
        + (f"  poll-errors {frame.poll_errors}" if frame.poll_errors else ""),
        "",
        f"{'shard':<12} {'pid':>8} {'requests':>10} {'qps':>8} "
        f"{'hit%':>6} {'p50ms':>8} {'p99ms':>8} {'cached':>7} {'restarts':>8}",
    ]
    for row in frame.rows:
        p50 = f"{row.p50_ms:.2f}" if row.p50_ms is not None else "-"
        p99 = f"{row.p99_ms:.2f}" if row.p99_ms is not None else "-"
        pid = str(row.pid) if row.pid is not None else "-"
        lines.append(
            f"{row.shard_id:<12} {pid:>8} {row.requests:>10,.0f} "
            f"{row.qps:>8,.1f} {row.hit_rate:>6.1%} {p50:>8} {p99:>8} "
            f"{row.cache_entries:>7,.0f} {row.restarts:>8,.0f}"
        )
    if not frame.rows:
        lines.append("(no live shards)")
    return "\n".join(lines) + "\n"


class ClusterTop:
    """The refresh loop behind ``repro obs top``.

    Args:
        poll: zero-arg callable returning one ``/stats`` payload dict
            (the CLI wires an HTTP GET; tests inject a stub).
        out: text sink frames are written to.
        interval_s: seconds between polls.
        clock: monotonic clock (injectable for tests).
        use_ansi: clear the screen between frames; default: only when
            ``out`` is a TTY.
    """

    def __init__(
        self,
        poll: Callable[[], Dict[str, Any]],
        out: TextIO,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        use_ansi: Optional[bool] = None,
    ) -> None:
        if interval_s <= 0.0:
            raise ObservabilityError(
                f"interval_s must be positive, got {interval_s!r}"
            )
        self._poll = poll
        self._out = out
        self._interval_s = interval_s
        self._clock = clock
        if use_ansi is None:
            use_ansi = bool(getattr(out, "isatty", lambda: False)())
        self._use_ansi = use_ansi
        self._sleep: Callable[[float], None] = time.sleep

    def run(self, iterations: int = 0) -> int:
        """Poll-render until interrupted (or for ``iterations`` frames).

        Args:
            iterations: frames to render; ``0`` means run until
                ``KeyboardInterrupt``.

        Returns:
            The number of successful polls (so the CLI can exit
            non-zero when the endpoint never answered).
        """
        previous: Optional[Dict[str, Any]] = None
        previous_at = self._clock()
        successes = 0
        errors = 0
        frames = 0
        while True:
            try:
                current = self._poll()
            except Exception:  # noqa: BLE001 - keep polling through blips
                current = None
                errors += 1
            now = self._clock()
            if current is not None:
                frame = snapshot_frame(
                    current,
                    previous=previous,
                    elapsed_s=now - previous_at if previous is not None else 0.0,
                    poll_errors=errors,
                )
                previous, previous_at = current, now
                successes += 1
                text = render_frame(frame)
            else:
                text = f"(poll failed; {errors} error(s) so far)\n"
            if self._use_ansi:
                self._out.write(_ANSI_CLEAR)
            self._out.write(text)
            self._out.flush()
            frames += 1
            if iterations and frames >= iterations:
                return successes
            try:
                self._sleep(self._interval_s)
            except KeyboardInterrupt:
                return successes
