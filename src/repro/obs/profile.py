"""Opt-in per-span wall/CPU profiling, gated by ``REPRO_OBS=1``.

Tracing records *where wall-clock time went*; profiling additionally
samples the process CPU clock at span boundaries, so a span's
``cpu_ms`` vs ``duration_ms`` gap separates compute-bound work (the
candidate recursion) from waiting (process-pool fan-out, the asyncio
batch window).  Sampling costs two ``time.process_time()`` calls per
span, so it rides the same enablement as the tracer: **off unless**
``REPRO_OBS=1`` (or :func:`repro.obs.enable` with ``cpu=True``), and
with tracing disabled entirely the cost is the tracer's single
``enabled`` branch — the ``benchmarks/test_bench_obs.py`` gate holds
that disabled path under 3% of the wrapped design work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ObservabilityError
from ..metrics.percentiles import summarize
from .trace import Span, Tracer

__all__ = ["SpanProfile", "profiling_enabled", "profile_spans", "hottest"]


def profiling_enabled(tracer: Tracer) -> bool:
    """Whether spans from ``tracer`` carry CPU samples."""
    return tracer.enabled and tracer.profile_cpu


@dataclass(frozen=True)
class SpanProfile:
    """Aggregate wall/CPU profile of one span name.

    Attributes:
        name: the span name profiled.
        count: spans aggregated.
        total_ms: summed wall-clock duration.
        mean_ms: mean wall-clock duration.
        p95_ms: 95th-percentile wall-clock duration (same estimator as
            every other p95 in this codebase).
        cpu_ms: summed CPU time (0.0 when CPU sampling was off).
    """

    name: str
    count: int
    total_ms: float
    mean_ms: float
    p95_ms: float
    cpu_ms: float

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ObservabilityError(
                f"a SpanProfile aggregates >= 1 span, got {self.count!r}"
            )

    @property
    def wait_ms(self) -> float:
        """Wall time not accounted for by CPU (blocking/waiting)."""
        return max(self.total_ms - self.cpu_ms, 0.0)


def profile_spans(spans: Sequence[Span]) -> Dict[str, SpanProfile]:
    """Aggregate finished spans into per-name profiles."""
    wall: Dict[str, List[float]] = {}
    cpu: Dict[str, float] = {}
    for span in spans:
        duration = span.duration_ms
        if duration is None:
            continue
        wall.setdefault(span.name, []).append(duration)
        if span.cpu_ms is not None:
            cpu[span.name] = cpu.get(span.name, 0.0) + span.cpu_ms
    profiles: Dict[str, SpanProfile] = {}
    for name, durations in wall.items():
        summary = summarize(durations)
        profiles[name] = SpanProfile(
            name=name,
            count=len(durations),
            total_ms=float(sum(durations)),
            mean_ms=summary.mean,
            p95_ms=summary.p95,
            cpu_ms=cpu.get(name, 0.0),
        )
    return profiles


def hottest(
    spans: Sequence[Span], top: int = 10
) -> Tuple[SpanProfile, ...]:
    """The ``top`` span names by total wall time, hottest first."""
    if top < 1:
        raise ObservabilityError(f"top must be >= 1, got {top!r}")
    profiles = sorted(
        profile_spans(spans).values(), key=lambda p: -p.total_ms
    )
    return tuple(profiles[:top])
