"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  Subclasses
are organized by subsystem (model validation, contract design, fitting,
data generation, simulation) so that tests and downstream tooling can
assert on the precise failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "EffortFunctionError",
    "ContractError",
    "DesignError",
    "InfeasibleDesignError",
    "FitError",
    "DataError",
    "TraceCalibrationError",
    "EstimationError",
    "SimulationError",
    "ServingError",
    "ObservabilityError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A model object (worker, utility, parameter set) is invalid."""


class EffortFunctionError(ModelError):
    """An effort function violates the paper's assumptions.

    The contract-design algorithm of Section IV-C requires the effort
    function ``psi`` to be concave, twice differentiable and strictly
    increasing over the effort region under consideration.
    """


class ContractError(ReproError):
    """A contract function is malformed (non-monotone, bad breakpoints)."""


class DesignError(ReproError):
    """The contract designer could not produce a valid contract."""


class InfeasibleDesignError(DesignError):
    """No candidate contract satisfies the design constraints."""


class FitError(ReproError):
    """Least-squares fitting failed or produced an unusable model."""


class DataError(ReproError):
    """A trace, review record or dataset is malformed."""


class TraceCalibrationError(DataError):
    """The synthetic trace generator cannot satisfy a calibration target."""


class EstimationError(ReproError):
    """Requester-side estimation (expertise, malice probability) failed."""


class SimulationError(ReproError):
    """The marketplace simulation entered an invalid state."""


class ServingError(ReproError):
    """The contract-serving layer (cache, pool, server) failed.

    Raised for malformed serving configuration, solver-pool timeouts,
    fingerprint/replay mismatches and cache-verification failures.
    """


class ObservabilityError(ReproError):
    """The observability layer (tracer, metrics, exporters) failed.

    Raised for malformed spans/metrics, invalid exporter input and
    span-record schema violations — never from the disabled hot path,
    which must stay free of failure modes.
    """


class ExperimentError(ReproError):
    """An experiment driver was misconfigured or produced no result."""
