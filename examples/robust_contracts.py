"""Robustness: what effort-function misfit does to a live contract.

Run with::

    python examples/robust_contracts.py

The designer optimizes against a *fitted* effort curve; real workers
respond to the contract with their *true* one.  This example quantifies
the exposure — the paper's minimal-slope construction is knife-edge, so
slightly weaker true marginals collapse participation — and shows the
robust variant that designs against the pessimistic member of the
uncertainty set.
"""

from __future__ import annotations

from repro.core import (
    QuadraticEffort,
    misfit_sweep,
    perturbed_effort_function,
    robust_design,
    solve_best_response,
)
from repro.core.utility import per_worker_utility
from repro.types import WorkerParameters


def main() -> None:
    fitted = QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)
    params = WorkerParameters.honest(beta=1.0)
    curvature_factors = (0.8, 0.9, 1.0, 1.1, 1.2)
    slope_factors = (0.9, 1.0, 1.1)

    print("=== nominal (paper) design under misfit ===")
    report = misfit_sweep(
        fitted,
        params,
        curvature_factors=curvature_factors,
        slope_factors=slope_factors,
    )
    print(f"nominal utility (perfect fit): {report.nominal_utility:8.3f}")
    print(f"{'curv x':>7} {'slope x':>8} {'effort':>8} {'utility':>9}")
    for point in report.points:
        if point.slope_factor in (0.9, 1.0) and point.curvature_factor in (
            0.9,
            1.0,
            1.1,
        ):
            print(
                f"{point.curvature_factor:>7.2f} {point.slope_factor:>8.2f} "
                f"{point.effort:>8.3f} {point.requester_utility:>9.3f}"
            )
    worst = report.worst_case()
    print(
        f"worst case: utility {worst.requester_utility:.3f} at "
        f"(curv x{worst.curvature_factor}, slope x{worst.slope_factor}) — "
        f"{100 * report.max_degradation():.0f}% degradation"
    )
    print(
        "\nwhy: the Eq. (39) slopes give the worker *barely* positive "
        "marginal utility; any true curve with weaker marginals makes the "
        "worker quit to zero effort."
    )

    print("\n=== robust design (pessimistic-curve) ===")
    result, guaranteed = robust_design(
        fitted,
        params,
        curvature_factors=curvature_factors,
        slope_factors=slope_factors,
    )
    response_under_truth = solve_best_response(
        result.contract, params, effort_function=fitted
    )
    utility_under_truth = per_worker_utility(
        1.0, response_under_truth.feedback, response_under_truth.compensation, 1.0
    )
    print(f"guaranteed worst-case utility: {guaranteed:8.3f}")
    print(f"utility if the fit was exact:  {utility_under_truth:8.3f}")
    print(
        f"robustness premium: {report.nominal_utility - utility_under_truth:.3f} "
        f"utility given up to avoid the {report.nominal_utility - report.worst_case().requester_utility:.1f}-point crash"
    )


if __name__ == "__main__":
    main()
