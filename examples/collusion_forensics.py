"""Collusion forensics: detecting and profiling review rings.

Run with::

    python examples/collusion_forensics.py

Uses the library's clustering and estimation substrates as a forensic
toolkit: recover collusive communities from co-reviewing structure,
verify the recovery against the generator's planted ground truth,
profile the largest ring, and measure how well the deviation-based
malice estimator separates the classes.
"""

from __future__ import annotations

import numpy as np

from repro.collusion import cluster_collusive_workers, community_summary
from repro.data import AmazonTraceGenerator, TraceConfig
from repro.estimation import DeviationMaliceEstimator
from repro.types import WorkerType


def main() -> None:
    trace = AmazonTraceGenerator(TraceConfig.small(), seed=99).generate()

    print("=== ring detection ===")
    clusters = cluster_collusive_workers(trace.malicious_targets())
    summary = community_summary(clusters)
    print(
        f"found {int(summary['n_communities'])} rings, "
        f"{int(summary['n_collusive_workers'])} members, "
        f"largest ring: {int(summary['max_size'])} workers"
    )

    planted = {frozenset(m) for m in trace.planted_communities().values()}
    recovered = set(clusters.communities)
    print(
        f"ground-truth check: {len(recovered & planted)}/{len(planted)} "
        "planted rings recovered exactly"
    )

    print("\n=== profiling the largest ring ===")
    ring = clusters.communities[0]
    members = sorted(ring)
    ring_feedback, honest_feedback = [], []
    for worker_id in members:
        series = trace.series_of(worker_id)
        ring_feedback.append(series.mean_feedback)
    honest_ids = trace.worker_ids(WorkerType.HONEST)[:500]
    for worker_id in honest_ids:
        series = trace.series_of(worker_id)
        if series.n_reviews:
            honest_feedback.append(series.mean_feedback)
    print(f"members: {', '.join(members[:8])}{'...' if len(members) > 8 else ''}")
    print(
        f"mean upvotes per review: ring {np.mean(ring_feedback):.2f} vs "
        f"honest {np.mean(honest_feedback):.2f} "
        "(mutual upvoting inflates ring feedback — the Fig. 7 signature)"
    )
    shared_products = set.intersection(
        *({r.product_id for r in trace.reviews_of(m)} for m in members[:3])
    )
    print(f"products shared by the first 3 members: {sorted(shared_products)}")

    print("\n=== malice estimation quality ===")
    estimates = DeviationMaliceEstimator().estimate(trace)
    by_class = {worker_type: [] for worker_type in WorkerType}
    for worker_id, reviewer in trace.reviewers.items():
        by_class[reviewer.worker_type].append(estimates[worker_id])
    for worker_type, values in by_class.items():
        print(
            f"  {worker_type.short_label:<8} mean e_mal = {np.mean(values):.3f} "
            f"(n={len(values)})"
        )
    threshold = 0.5
    labels = [
        (estimates[w] > threshold, trace.reviewers[w].is_malicious)
        for w in trace.reviewers
    ]
    true_positive = sum(1 for flagged, truth in labels if flagged and truth)
    false_positive = sum(1 for flagged, truth in labels if flagged and not truth)
    positives = sum(1 for _, truth in labels if truth)
    print(
        f"  at e_mal > {threshold}: recall "
        f"{true_positive / positives:.2%}, false flags {false_positive}"
    )


if __name__ == "__main__":
    main()
