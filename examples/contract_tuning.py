"""Contract tuning: grid resolution and generosity sweeps.

Run with::

    python examples/contract_tuning.py

Shows how the two knobs a requester actually controls affect the
designed contract:

* the grid resolution ``m`` — the Fig. 6 story: the utility approaches
  the Theorem 4.1 upper bound (and the continuum optimum) as the effort
  region is partitioned more finely, at quadratic design cost;
* the compensation weight ``mu`` — the Fig. 8b story: a smaller ``mu``
  (a more generous requester) buys more effort with higher pay.
"""

from __future__ import annotations

import time

from repro import ContractDesigner, DesignerConfig, QuadraticEffort, WorkerParameters
from repro.baselines import continuum_optimal_utility


def resolution_sweep(psi, params) -> None:
    print("=== grid-resolution sweep (mu = 1) ===")
    optimal, optimal_effort = continuum_optimal_utility(
        psi, params, mu=1.0, feedback_weight=1.0,
        max_effort=0.95 * psi.max_increasing_effort,
    )
    print(
        f"continuum optimum: utility={optimal:.4f} at effort={optimal_effort:.3f}"
    )
    print(f"{'m':>4} {'utility':>10} {'gap to opt':>11} {'LB':>9} {'UB':>9} {'ms':>7}")
    for m in (2, 5, 10, 20, 40, 80):
        designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=m))
        start = time.perf_counter()
        result = designer.design(psi, params, feedback_weight=1.0)
        elapsed_ms = 1000 * (time.perf_counter() - start)
        print(
            f"{m:>4} {result.requester_utility:>10.4f} "
            f"{optimal - result.requester_utility:>11.4f} "
            f"{result.bounds.lower:>9.3f} {result.bounds.upper:>9.3f} "
            f"{elapsed_ms:>7.1f}"
        )
    print()


def generosity_sweep(psi, params) -> None:
    print("=== generosity sweep (m = 20) ===")
    print(f"{'mu':>5} {'effort':>8} {'pay':>8} {'feedback':>9} {'utility':>9}")
    for mu in (2.0, 1.5, 1.0, 0.9, 0.8, 0.5):
        designer = ContractDesigner(mu=mu, config=DesignerConfig(n_intervals=20))
        result = designer.design(psi, params, feedback_weight=1.0)
        print(
            f"{mu:>5.2f} {result.effort:>8.3f} {result.compensation:>8.3f} "
            f"{result.response.feedback:>9.3f} {result.requester_utility:>9.3f}"
        )
    print("(a lower mu buys more effort with higher pay — observation 1 of Fig. 8b)")
    print()


def omega_sweep(psi) -> None:
    print("=== influence-motive sweep (what omega does to pay) ===")
    print(f"{'omega':>6} {'effort':>8} {'pay':>8} {'worker utility':>15}")
    designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=20))
    for omega in (0.0, 0.1, 0.3, 0.6, 1.0):
        params = (
            WorkerParameters.honest(beta=1.0)
            if omega == 0.0
            else WorkerParameters.malicious(beta=1.0, omega=omega)
        )
        result = designer.design(psi, params, feedback_weight=1.0)
        print(
            f"{omega:>6.2f} {result.effort:>8.3f} {result.compensation:>8.3f} "
            f"{result.response.utility:>15.3f}"
        )
    print(
        "(the more a worker values influence, the less the requester has "
        "to pay for the same effort)"
    )


def main() -> None:
    psi = QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)
    params = WorkerParameters.honest(beta=1.0)
    resolution_sweep(psi, params)
    generosity_sweep(psi, params)
    omega_sweep(psi)


if __name__ == "__main__":
    main()
