"""Budget planning: how much workforce a pay budget buys.

Run with::

    python examples/budget_frontier.py

Solves the decomposed contract design once, then sweeps a hard total-pay
budget through the multiple-choice-knapsack selector
(:mod:`repro.core.budget`) and prints the utility-vs-budget frontier —
the question a requester with a fixed campaign budget actually asks.
"""

from __future__ import annotations

from repro.collusion import cluster_collusive_workers
from repro.core import budgeted_selection, solve_subproblems
from repro.core.utility import RequesterObjective
from repro.data import AmazonTraceGenerator, TraceConfig
from repro.estimation import DeviationMaliceEstimator, EffortProxy
from repro.types import RequesterParameters, WorkerType
from repro.workers import build_population


def main() -> None:
    trace = AmazonTraceGenerator(TraceConfig.small(), seed=21).generate()
    clusters = cluster_collusive_workers(trace.malicious_targets())
    proxy = EffortProxy.from_trace(trace)
    malice = DeviationMaliceEstimator().estimate(trace)
    objective = RequesterObjective(RequesterParameters(mu=1.0))
    population = build_population(
        trace=trace,
        clusters=clusters,
        proxy=proxy,
        malice_estimates=malice,
        objective=objective,
        honest_subset=trace.worker_ids(WorkerType.HONEST)[:250],
    )

    print(f"solving {len(population.subproblems)} subproblems once...")
    solutions = solve_subproblems(population.subproblems, mu=1.0)
    unconstrained_pay = sum(
        s.result.response.compensation for s in solutions.values()
    )
    print(f"unconstrained total pay would be {unconstrained_pay:.1f}\n")

    print(f"{'budget':>8} {'spent':>8} {'hired':>6} {'utility':>9} {'util/$':>8}")
    for fraction in (0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5):
        budget = fraction * unconstrained_pay
        design = budgeted_selection(solutions, budget=budget)
        efficiency = design.total_utility / max(design.total_cost, 1e-9)
        print(
            f"{budget:>8.1f} {design.total_cost:>8.1f} {design.n_hired:>6} "
            f"{design.total_utility:>9.1f} {efficiency:>8.2f}"
        )
    print(
        "\nreading the frontier: early dollars buy the cheap high-value "
        "workers (huge utility per unit pay); the tail buys marginal "
        "effort from workers already close to their ceiling."
    )


if __name__ == "__main__":
    main()
