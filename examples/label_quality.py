"""Classification tasks under dynamic contracts (Section VII extension).

Run with::

    python examples/label_quality.py

Moves the contract machinery from review tasks to binary classification:
workers label task batches, feedback is agreement with the weighted
consensus, and pay follows the paper's quality-contingent contract.
Compares consensus accuracy and requester utility against a fixed
per-task payment.
"""

from __future__ import annotations

import numpy as np

from repro.core.designer import DesignerConfig
from repro.labeling import (
    AccuracyModel,
    LabelingMarket,
    LabelingWorker,
    TaskGenerator,
    quadratic_feedback_approximation,
)

BATCH_SIZE = 50
N_ROUNDS = 8
MAX_EFFORT = 8.0


def build_market(seed: int = 0) -> LabelingMarket:
    model = AccuracyModel(p_max=0.95, effort_scale=2.0)
    feedback_function = quadratic_feedback_approximation(
        model, BATCH_SIZE, mean_difficulty=0.3, max_effort=MAX_EFFORT
    )
    workers = []
    weights = {}
    for index in range(10):
        worker_id = f"labeler{index:02d}"
        workers.append(
            LabelingWorker(worker_id, model, feedback_function, beta=1.0)
        )
        weights[worker_id] = 1.0
    for index in range(3):
        worker_id = f"shill{index:02d}"
        workers.append(
            LabelingWorker(
                worker_id,
                model,
                feedback_function,
                beta=1.0,
                omega=0.3,
                target_label=True,
                flip_rate=0.7,
            )
        )
        weights[worker_id] = 0.15
    return LabelingMarket(
        workers=workers,
        weights=weights,
        mu=1.0,
        value_per_correct=2.0,
        designer_config=DesignerConfig(n_intervals=16),
        max_effort=MAX_EFFORT,
        seed=seed,
    )


def main() -> None:
    print(
        f"labeling market: 10 honest + 3 shills, {BATCH_SIZE}-task batches, "
        f"{N_ROUNDS} rounds"
    )
    market = build_market()
    dynamic = market.run(
        TaskGenerator(mean_difficulty=0.3, seed=1),
        batch_size=BATCH_SIZE,
        n_rounds=N_ROUNDS,
    )
    market_fixed = build_market()
    fixed = market_fixed.run(
        TaskGenerator(mean_difficulty=0.3, seed=1),
        batch_size=BATCH_SIZE,
        n_rounds=N_ROUNDS,
        contracts=market_fixed.flat_contracts(pay=2.0),
    )

    print(f"\n{'policy':<14} {'accuracy':>9} {'utility/round':>14} {'pay/round':>10}")
    for name, rounds in (("dynamic", dynamic), ("fixed pay", fixed)):
        accuracy = float(np.mean([r.consensus_accuracy for r in rounds]))
        utility = float(np.mean([r.requester_utility for r in rounds]))
        pay = float(np.mean([r.total_pay for r in rounds]))
        print(f"{name:<14} {accuracy:>9.3f} {utility:>14.2f} {pay:>10.2f}")

    honest_effort = np.mean(
        [
            effort
            for r in dynamic
            for worker_id, effort in r.worker_efforts.items()
            if worker_id.startswith("labeler")
        ]
    )
    print(
        f"\nunder the dynamic contract honest labellers exert effort "
        f"{honest_effort:.2f}; under flat pay they exert none — accuracy is "
        "bought with incentives, not with budget."
    )


if __name__ == "__main__":
    main()
