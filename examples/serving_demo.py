"""Contract serving: batching, caching and streaming contract requests.

Run with::

    python examples/serving_demo.py

Builds a synthetic marketplace population whose workers cluster into a
handful of archetypes (the Section IV-B class-level fits), then serves
contract requests three ways:

1. directly through a :class:`repro.serving.SolverPool` — fingerprint
   dedup collapses the population onto one solve per archetype;
2. across repeated rounds — the contract cache turns steady-state
   rounds into dictionary lookups;
3. through the asyncio :class:`repro.serving.ContractServer` — requests
   are batched, solved off the event loop and streamed back in
   completion order, with backpressure bounding the request queue;
4. once more with tracing on — ``repro.obs`` records the span tree
   (batch -> designs) and renders the hottest-spans report;
5. over HTTP against a 2-shard cluster — a plain ``http.client``
   consumer posts JSON to the :class:`repro.serving.ShardRouter`'s
   front end and reads back the same contracts the pool produced;
6. the cluster round again with tracing on — the span context crosses
   the HTTP hop and the shard pipes, the shards' spans are scraped
   back over ``obs_export``, and the merged report shows one trace
   tree spanning three processes next to the federated shard counters.
"""

from __future__ import annotations

import asyncio
import http.client
import json

from repro.serving import ContractCache, ContractServer, ServingStats, SolverPool
from repro.serving.workload import synthetic_subproblems

N_SUBJECTS = 120
N_ARCHETYPES = 12
N_ROUNDS = 3


def pooled_rounds() -> None:
    """Serve repeated marketplace rounds through the solver pool."""
    subproblems = synthetic_subproblems(
        n_subjects=N_SUBJECTS, n_archetypes=N_ARCHETYPES, seed=42
    )
    stats = ServingStats()
    with SolverPool(n_workers=0, cache=ContractCache(), stats=stats) as pool:
        for round_index in range(N_ROUNDS):
            solutions, diagnostics = pool.solve_with_diagnostics(subproblems)
            hits = sum(1 for d in diagnostics.values() if d.cache_hit)
            hired = sum(1 for s in solutions.values() if s.result.hired)
            print(
                f"round {round_index}: {hired}/{len(solutions)} hired, "
                f"{hits} contracts served from cache"
            )
    print(stats.format())
    print()


async def streamed_round() -> None:
    """Serve one round through the asyncio marketplace front-end."""
    subproblems = synthetic_subproblems(
        n_subjects=24, n_archetypes=6, seed=42
    )
    async with ContractServer(max_batch=8, batch_window=0.005) as server:
        print("streaming designs in completion order:")
        count = 0
        async for subject_id, design in server.stream(subproblems):
            count += 1
            if count <= 5:
                print(
                    f"  {subject_id}: k_opt={design.k_opt}, "
                    f"pay={design.response.compensation:.3f}"
                )
        print(f"  ... {count} designs streamed")
        print(server.stats.format())


def traced_round() -> None:
    """Trace one pooled round and render the repro.obs span report."""
    from repro.obs.export import render_report, span_records
    from repro.obs.trace import Tracer, set_tracer

    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        subproblems = synthetic_subproblems(
            n_subjects=24, n_archetypes=6, seed=42
        )
        with SolverPool(n_workers=0) as pool:
            pool.solve(subproblems)
    finally:
        set_tracer(previous)
    print("the same round, traced (repro.obs):")
    print(render_report(span_records(tracer), top=5), end="")


def clustered_round() -> None:
    """Serve one round over HTTP against a sharded cluster.

    This is the full network path: a stdlib ``http.client`` consumer,
    JSON on the wire, a shard router hashing each design fingerprint to
    its owning worker process.  The contracts that come back are
    byte-identical to the pooled path above.
    """
    from repro.serving import HTTPServerThread, ShardRouter
    from repro.serving.cluster.codec import subproblem_to_json

    subproblems = synthetic_subproblems(
        n_subjects=24, n_archetypes=6, seed=42
    )
    with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
        with HTTPServerThread(router) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=30.0)
            try:
                body = json.dumps(
                    {"subproblems": [subproblem_to_json(s) for s in subproblems]}
                )
                conn.request("POST", "/solve_batch", body=body)
                designs = json.loads(conn.getresponse().read())["designs"]
                hired = sum(1 for d in designs if d["hired"])
                print(
                    f"HTTP /solve_batch on {len(router.shard_ids)} shards: "
                    f"{hired}/{len(designs)} hired"
                )
                conn.request("GET", "/healthz")
                health = json.loads(conn.getresponse().read())
                print(
                    f"/healthz: {health['status']} "
                    f"({health['n_healthy']}/{health['n_shards']} shards)"
                )
            finally:
                conn.close()


def traced_cluster_round() -> None:
    """Trace one HTTP cluster round end to end across processes.

    The ``traceparent`` header carries the trace across the HTTP hop,
    the pipe protocol carries it into the shard processes, and
    ``obs_scrape`` brings the shards' spans back — so the report below
    renders ONE tree: ``cluster.http_request`` parenting the router's
    dispatch spans parenting each shard's ``serving.solve_batch``.
    """
    from repro.obs.export import render_report, span_records
    from repro.obs.trace import Tracer, set_tracer
    from repro.serving import HTTPServerThread, ShardRouter
    from repro.serving.cluster.codec import subproblem_to_json

    subproblems = synthetic_subproblems(
        n_subjects=24, n_archetypes=6, seed=42
    )
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
            with HTTPServerThread(router) as server:
                host, port = server.address
                conn = http.client.HTTPConnection(host, port, timeout=30.0)
                try:
                    body = json.dumps(
                        {
                            "subproblems": [
                                subproblem_to_json(s) for s in subproblems
                            ]
                        }
                    )
                    conn.request("POST", "/solve_batch", body=body)
                    conn.getresponse().read()
                finally:
                    conn.close()
            scrape = router.obs_scrape(include_spans=True)
    finally:
        set_tracer(previous)

    print("the cluster round, traced across processes (repro.obs):")
    records = list(span_records(tracer)) + list(scrape.span_records())
    print(render_report(records, top=5), end="")
    print("federated shard counters (obs_scrape):")
    for source, value in scrape.shard_values("serving.requests").items():
        print(f"  {source}: serving.requests = {value:.0f}")
    print(f"  cluster total: {scrape.value('serving.requests'):.0f}")


def main() -> None:
    pooled_rounds()
    asyncio.run(streamed_round())
    print()
    traced_round()
    print()
    clustered_round()
    print()
    traced_cluster_round()


if __name__ == "__main__":
    main()
