"""End-to-end marketplace: trace -> clustering -> contracts -> simulation.

Run with::

    python examples/review_marketplace.py

Builds a synthetic Amazon-style review trace (the paper's evaluation
substrate), runs the full Fig. 4 pipeline — collusive clustering, effort
function fitting, Eq. (5) weighting, decomposed contract design — then
simulates repeated task rounds under three payment policies and compares
the requester's utility:

* ``dynamic``   — the paper's contract design for everyone;
* ``exclusion`` — the Fig. 8c baseline (ban all malicious workers);
* ``fixed``     — a flat per-task price (the classic scheme the paper's
  introduction argues against).
"""

from __future__ import annotations

from repro.baselines import compare_policies
from repro.collusion import cluster_collusive_workers, community_size_table
from repro.core.utility import RequesterObjective
from repro.data import AmazonTraceGenerator, TraceConfig
from repro.estimation import DeviationMaliceEstimator, EffortProxy
from repro.simulation import (
    DynamicContractPolicy,
    ExclusionPolicy,
    FixedPaymentPolicy,
)
from repro.types import RequesterParameters, WorkerType
from repro.workers import build_population


def main() -> None:
    print("generating synthetic review trace (small scale)...")
    trace = AmazonTraceGenerator(TraceConfig.small(), seed=42).generate()
    stats = trace.stats()
    print(
        f"  {stats['n_reviews']} reviews, {stats['n_reviewers']} reviewers "
        f"({stats['n_malicious']} malicious), {stats['n_products']} products"
    )

    print("\nclustering collusive workers (Section IV-A)...")
    clusters = cluster_collusive_workers(trace.malicious_targets())
    print(
        f"  {clusters.n_communities} communities covering "
        f"{clusters.n_collusive_workers} workers; "
        f"{len(clusters.noncollusive)} non-collusive malicious"
    )
    print(community_size_table(clusters).format())

    print("\nfitting effort functions and assembling the population...")
    proxy = EffortProxy.from_trace(trace)
    malice = DeviationMaliceEstimator().estimate(trace)
    objective = RequesterObjective(RequesterParameters(mu=1.0))
    population = build_population(
        trace=trace,
        clusters=clusters,
        proxy=proxy,
        malice_estimates=malice,
        objective=objective,
        honest_subset=trace.worker_ids(WorkerType.HONEST)[:200],
    )
    functions = population.class_functions
    print(f"  honest psi:        {functions.honest.coefficients()}")
    print(f"  non-collusive psi: {functions.noncollusive.coefficients()}")
    print(f"  collusive psi:     {functions.collusive_member.coefficients()}")

    print("\nsimulating 10 task rounds under three payment policies...")
    comparison = compare_policies(
        population,
        objective,
        {
            "dynamic": DynamicContractPolicy(mu=1.0),
            "exclusion": ExclusionPolicy(inner=DynamicContractPolicy(mu=1.0)),
            "fixed": FixedPaymentPolicy(pay_per_member=1.0),
        },
        n_rounds=10,
        seed=7,
    )
    print(f"{'policy':<12} {'total utility':>14} {'mean/round':>12}")
    for name, series in comparison.utility_series.items():
        print(f"{name:<12} {series.sum():>14.1f} {series.mean():>12.1f}")
    print(f"\nwinner: {comparison.winner()}")
    print(
        "margin of dynamic over exclusion: "
        f"{comparison.margin('dynamic', 'exclusion'):.1f} "
        "(the harvest from accurate-but-biased malicious workers)"
    )


if __name__ == "__main__":
    main()
