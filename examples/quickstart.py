"""Quickstart: design a dynamic contract for one worker.

Run with::

    python examples/quickstart.py

Designs the paper's quality-contingent contract for an honest worker
and for an influence-motivated malicious worker sharing the same effort
curve, then shows the posted pay schedule, each worker's best response,
and the Theorem 4.1 optimality certificate.
"""

from __future__ import annotations

from repro import (
    ContractDesigner,
    DesignerConfig,
    QuadraticEffort,
    WorkerParameters,
)


def describe(result, title: str) -> None:
    """Pretty-print one design result."""
    print(f"--- {title} ---")
    contract = result.contract
    print("posted pay schedule (feedback -> pay):")
    breakpoints = contract.feedback_breakpoints
    for index in range(0, len(breakpoints), max(1, len(breakpoints) // 6)):
        print(
            f"  feedback >= {breakpoints[index]:7.2f}  ->  "
            f"pay {contract.compensations[index]:7.3f}"
        )
    response = result.response
    print(
        f"worker best response: effort={response.effort:.3f} "
        f"feedback={response.feedback:.3f} pay={response.compensation:.3f}"
    )
    print(
        f"requester utility: {result.requester_utility:.3f} "
        f"(selected effort interval k_opt={result.k_opt})"
    )
    if result.bounds is not None:
        bounds = result.bounds
        print(
            f"Theorem 4.1 certificate: LB={bounds.lower:.3f} <= "
            f"achieved={bounds.achieved:.3f} <= UB={bounds.upper:.3f} "
            f"(optimality gap <= {bounds.gap:.4f})"
        )
    print()


def main() -> None:
    # The worker's effort function psi(y) = r2*y^2 + r1*y + r0 — in the
    # paper this is fitted from review data (Section IV-B); here we use
    # a representative concave curve.
    psi = QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)
    designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=20))

    honest = designer.design(
        psi, WorkerParameters.honest(beta=1.0), feedback_weight=1.0
    )
    describe(honest, "honest worker (omega = 0)")

    malicious = designer.design(
        psi,
        WorkerParameters.malicious(beta=1.0, omega=0.3),
        feedback_weight=0.5,  # penalized by Eq. (5)
    )
    describe(malicious, "malicious worker (omega = 0.3, penalized weight)")

    print(
        "note: the malicious worker accepts less pay — the influence of "
        "its reviews is itself a reward, and the requester exploits that."
    )
    assert honest.compensation > malicious.compensation


if __name__ == "__main__":
    main()
